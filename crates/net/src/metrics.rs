//! The gateway's telemetry hub: one [`eilid_obs::MetricsRegistry`] +
//! [`eilid_obs::TraceRing`] per gateway, with every hot-path handle
//! resolved once at construction — the instrumented paths (reactor
//! passes, verify batches, campaign waves) touch only lock-free atomic
//! cells.
//!
//! The pre-registry reactor counters ([`GatewayCounters`]) and the
//! trust core's [`AttestationService::stats`] keep their atomics; a
//! [`NetMetrics::snapshot`] injects them at scrape time so one
//! `OpMetrics` reply carries the gateway's whole self-knowledge.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use eilid_fleet::WorkerPool;
use eilid_obs::{Counter, Gauge, Histogram, MetricsRegistry, RegistrySnapshot, TraceRing};

use crate::gateway::GatewayCounters;
use crate::service::AttestationService;
use crate::wire::ErrorCode;

/// Trace-event category: reactor-level events.
pub const TRACE_CAT_REACTOR: u8 = 1;
/// Trace-event category: campaign-engine events.
pub const TRACE_CAT_ENGINE: u8 = 2;
/// Trace-event category: cluster control-plane events (supervisor
/// restarts/drains, fan-out).
pub const TRACE_CAT_CLUSTER: u8 = 3;
/// Trace-event category: `fleet serve` operator-console events.
pub const TRACE_CAT_SERVE: u8 = 4;

/// Reactor trace code: one reactor pass (span; `a` = elapsed µs, `b` =
/// frames handled).
pub const TRACE_REACTOR_PASS: u16 = 1;
/// Engine trace code: one campaign wave phase finished (`a` = elapsed
/// µs, `b` = phase index: 0 snapshot, 1 update, 2 probe).
pub const TRACE_ENGINE_PHASE: u16 = 1;
/// Engine trace code: one streamed campaign wave finished (`a` =
/// elapsed µs, `b` = devices in the wave).
pub const TRACE_ENGINE_WAVE: u16 = 2;
/// Cluster trace code: a gateway process was restarted (`a` = gateway
/// index, `b` = total restarts for that slot).
pub const TRACE_CLUSTER_RESTART: u16 = 1;
/// Cluster trace code: a gateway was drained (`a` = gateway index,
/// `b` = paused-campaign records handed back).
pub const TRACE_CLUSTER_DRAIN: u16 = 2;
/// Serve trace code: explicit idle heartbeat — emitted when a log tick
/// sees no counter movement, so a wedged reactor still produces
/// evidence (`a` = heartbeat ordinal, `b` = live connections).
pub const TRACE_SERVE_IDLE: u16 = 1;

/// Default trace-ring capacity (events retained).
pub const TRACE_RING_CAPACITY: usize = 1024;

/// Every [`ErrorCode`], index-aligned with
/// [`NetMetrics::reject_counter`].
pub const ERROR_CODES: [ErrorCode; 9] = [
    ErrorCode::UnsupportedVersion,
    ErrorCode::Busy,
    ErrorCode::UnknownCohort,
    ErrorCode::NotNegotiated,
    ErrorCode::UnexpectedFrame,
    ErrorCode::Unsupported,
    ErrorCode::UnknownDevice,
    ErrorCode::NoCampaign,
    ErrorCode::CampaignActive,
];

fn error_code_index(code: ErrorCode) -> usize {
    match code {
        ErrorCode::UnsupportedVersion => 0,
        ErrorCode::Busy => 1,
        ErrorCode::UnknownCohort => 2,
        ErrorCode::NotNegotiated => 3,
        ErrorCode::UnexpectedFrame => 4,
        ErrorCode::Unsupported => 5,
        ErrorCode::UnknownDevice => 6,
        ErrorCode::NoCampaign => 7,
        ErrorCode::CampaignActive => 8,
    }
}

/// The metric-name suffix for an [`ErrorCode`]'s reject counter
/// (`eilid_gateway_reject_<suffix>_total`).
pub fn error_code_slug(code: ErrorCode) -> &'static str {
    match code {
        ErrorCode::UnsupportedVersion => "unsupported_version",
        ErrorCode::Busy => "busy",
        ErrorCode::UnknownCohort => "unknown_cohort",
        ErrorCode::NotNegotiated => "not_negotiated",
        ErrorCode::UnexpectedFrame => "unexpected_frame",
        ErrorCode::Unsupported => "unsupported",
        ErrorCode::UnknownDevice => "unknown_device",
        ErrorCode::NoCampaign => "no_campaign",
        ErrorCode::CampaignActive => "campaign_active",
    }
}

/// Per-gateway telemetry: the registry, the trace ring, and every
/// hot-path metric handle pre-resolved. Cheap to share (`Arc` it once
/// at [`crate::Gateway::bind`]); every recording method is lock-free.
#[derive(Debug)]
pub struct NetMetrics {
    registry: MetricsRegistry,
    trace: TraceRing,
    /// Reactor pass duration in microseconds (one sample per
    /// readiness wake or scan pass).
    pub pass_us: Histogram,
    /// Frames handled per readiness wake (the reactor's realized
    /// batching factor).
    pub frames_per_wake: Histogram,
    /// Outbox residency in bytes, sampled per serviced connection —
    /// how close peers run to the high-water mark.
    pub outbox_bytes: Histogram,
    /// Verification batch size (reports per pool job).
    pub verify_batch_size: Histogram,
    /// `AttestationService::verify_batch` latency in microseconds.
    pub verify_batch_us: Histogram,
    /// Worker-pool job latency (submit → completion) in microseconds.
    pub pool_job_us: Histogram,
    /// Pool-wide queued/running weight (sum over distinct workers) —
    /// the fleet-total load number.
    pub pool_queue_depth_sum: Gauge,
    /// Hottest single worker's queued/running weight — the actual
    /// backpressure signal on a shard-affine pool.
    pub pool_queue_depth_max: Gauge,
    /// Campaign-wave snapshot-phase duration (µs).
    pub phase_snapshot_us: Histogram,
    /// Campaign-wave update-phase duration (µs).
    pub phase_update_us: Histogram,
    /// Campaign-wave probe-phase duration (µs).
    pub phase_probe_us: Histogram,
    /// Device exchanges the campaign engine retried after a `Busy`.
    pub engine_busy_retries: Counter,
    /// Campaign smoke probes actually executed on a device (the
    /// reference device plus per-device fallbacks).
    pub probes_executed: Counter,
    /// Campaign smoke verdicts inherited from the cohort reference
    /// instead of re-running the 2M-cycle probe.
    pub probes_memoized: Counter,
    /// Update payload bytes a full-image push *would* have shipped
    /// for every applied campaign update (the delta denominator).
    pub update_bytes_full: Counter,
    /// Update bytes actually shipped on the wire (delta segments, or
    /// the full image when delta is disabled or falls back).
    pub update_bytes_wire: Counter,
    /// Aggregated (`OpAggSweep`) sweeps the engine has served.
    pub agg_sweeps: Counter,
    /// Shard aggregate roots the engine has signed and published.
    pub agg_roots_published: Counter,
    /// Devices reported in aggregated-sweep suspect lists.
    pub agg_suspects: Counter,
    /// Devices covered by all-clean shard aggregates — verdicts the
    /// operator accepts on the shard root alone, no per-device frame.
    pub agg_short_circuited: Counter,
    rejects: [Counter; ERROR_CODES.len()],
}

impl NetMetrics {
    /// A fresh hub with every gateway metric registered.
    pub fn new() -> Arc<Self> {
        let registry = MetricsRegistry::new();
        let rejects = ERROR_CODES.map(|code| {
            registry.counter(&format!(
                "eilid_gateway_reject_{}_total",
                error_code_slug(code)
            ))
        });
        Arc::new(NetMetrics {
            pass_us: registry.histogram("eilid_gateway_pass_us"),
            frames_per_wake: registry.histogram("eilid_gateway_frames_per_wake"),
            outbox_bytes: registry.histogram("eilid_gateway_outbox_bytes"),
            verify_batch_size: registry.histogram("eilid_verify_batch_size"),
            verify_batch_us: registry.histogram("eilid_verify_batch_us"),
            pool_job_us: registry.histogram("eilid_pool_job_us"),
            pool_queue_depth_sum: registry.gauge("eilid_pool_queue_depth_sum"),
            pool_queue_depth_max: registry.gauge("eilid_pool_queue_depth_max"),
            phase_snapshot_us: registry.histogram("eilid_ops_phase_snapshot_us"),
            phase_update_us: registry.histogram("eilid_ops_phase_update_us"),
            phase_probe_us: registry.histogram("eilid_ops_phase_probe_us"),
            engine_busy_retries: registry.counter("eilid_ops_busy_retries_total"),
            probes_executed: registry.counter("eilid_ops_probes_executed_total"),
            probes_memoized: registry.counter("eilid_ops_probes_memoized_total"),
            update_bytes_full: registry.counter("eilid_ops_update_bytes_full_total"),
            update_bytes_wire: registry.counter("eilid_ops_update_bytes_wire_total"),
            agg_sweeps: registry.counter("eilid_ops_agg_sweeps_total"),
            agg_roots_published: registry.counter("eilid_ops_agg_roots_published_total"),
            agg_suspects: registry.counter("eilid_ops_agg_suspects_total"),
            agg_short_circuited: registry.counter("eilid_ops_agg_short_circuited_total"),
            rejects,
            trace: TraceRing::new(TRACE_RING_CAPACITY),
            registry,
        })
    }

    /// The underlying registry (for layers registering their own
    /// metrics).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The gateway's event trace ring.
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// Counts one rejection frame sent with `code`.
    pub fn count_reject(&self, code: ErrorCode) {
        self.rejects[error_code_index(code)].inc();
    }

    /// Value of the reject counter for `code`.
    pub fn reject_counter(&self, code: ErrorCode) -> u64 {
        self.rejects[error_code_index(code)].get()
    }

    /// Refreshes the queue-depth gauges from the pool's per-worker
    /// in-flight weights; returns `(sum, max)`.
    pub fn sample_pool(&self, pool: &WorkerPool) -> (u64, u64) {
        let (sum, max) = pool_depths(pool);
        self.pool_queue_depth_sum.set(sum);
        self.pool_queue_depth_max.set(max);
        (sum, max)
    }

    /// A scrape-time snapshot: the registry plus the pre-registry
    /// atomics (reactor counters, trust-core stats, trace-ring
    /// accounting) injected under the same naming scheme.
    pub fn snapshot(
        &self,
        counters: &GatewayCounters,
        service: &AttestationService,
    ) -> RegistrySnapshot {
        let mut snap = self.registry.snapshot();
        let load = |cell: &std::sync::atomic::AtomicU64| cell.load(Ordering::Relaxed);
        snap.put_counter("eilid_gateway_accepted_total", load(&counters.accepted));
        snap.put_counter("eilid_gateway_refused_total", load(&counters.refused));
        snap.put_counter(
            "eilid_gateway_frames_received_total",
            load(&counters.frames_received),
        );
        snap.put_counter(
            "eilid_gateway_busy_rejections_total",
            load(&counters.busy_rejections),
        );
        snap.put_counter(
            "eilid_gateway_malformed_streams_total",
            load(&counters.malformed_streams),
        );
        snap.put_counter(
            "eilid_gateway_batches_submitted_total",
            load(&counters.batches_submitted),
        );
        snap.put_counter(
            "eilid_gateway_batched_reports_total",
            load(&counters.batched_reports),
        );
        snap.put_counter(
            "eilid_gateway_reactor_wakes_total",
            load(&counters.reactor_wakes),
        );
        snap.put_counter(
            "eilid_gateway_scan_passes_total",
            load(&counters.scan_passes),
        );
        snap.put_gauge(
            "eilid_gateway_live_connections",
            load(&counters.live_connections),
        );
        let stats = service.stats();
        snap.put_counter(
            "eilid_service_reports_verified_total",
            stats.reports_verified(),
        );
        snap.put_counter(
            "eilid_service_challenges_issued_total",
            stats.challenges_issued.load(Ordering::Relaxed),
        );
        snap.put_counter("eilid_trace_events_total", self.trace.appended());
        snap.put_counter("eilid_trace_dropped_total", self.trace.dropped());
        snap
    }
}

/// `(sum, max)` of queued/running weight over the pool's *distinct*
/// workers (shards sharing a worker share one in-flight cell, so
/// summing per shard would multi-count).
pub fn pool_depths(pool: &WorkerPool) -> (u64, u64) {
    let workers = pool.workers();
    let mut seen = vec![false; workers];
    let (mut sum, mut max) = (0u64, 0u64);
    for shard in 0..pool.shard_count() {
        let worker = pool.worker_of(shard);
        if !seen[worker] {
            seen[worker] = true;
            let load = pool.shard_load(shard) as u64;
            sum += load;
            max = max.max(load);
        }
    }
    (sum, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// Hot-shard regression: one saturated worker must be visible as
    /// the *max* depth — the old `OpHealth` sum conflated "one worker
    /// drowning" with "load spread evenly", hiding exactly the
    /// backpressure signal an operator needs. The sum lives on as the
    /// fleet-total gauge.
    #[test]
    fn pool_depths_separates_hot_worker_from_fleet_total() {
        // 2 workers over 4 shards: worker_of(shard) = shard % 2, so
        // shards 0 and 2 share worker 0, shards 1 and 3 share worker 1.
        let pool = WorkerPool::new(2, 4, 64);
        let (release0_tx, release0_rx) = mpsc::channel::<()>();
        let (release1_tx, release1_rx) = mpsc::channel::<()>();
        // Weight is reserved at submit and released at completion, so
        // blocked jobs pin the depths deterministically.
        pool.try_submit_weighted(0, 5, move || {
            let _ = release0_rx.recv();
        })
        .unwrap();
        pool.try_submit_weighted(1, 2, move || {
            let _ = release1_rx.recv();
        })
        .unwrap();
        // More queued weight on the hot worker, via its other shard.
        pool.try_submit_weighted(2, 4, || {}).unwrap();

        let (sum, max) = pool_depths(&pool);
        assert_eq!(sum, 11, "fleet total counts every distinct worker once");
        assert_eq!(max, 9, "the hot worker's depth is the backpressure signal");
        assert!(
            max < sum,
            "a sum can only hide the hot worker, never reveal it"
        );

        let metrics = NetMetrics::new();
        assert_eq!(metrics.sample_pool(&pool), (11, 9));
        assert_eq!(metrics.pool_queue_depth_sum.get(), 11);
        assert_eq!(metrics.pool_queue_depth_max.get(), 9);

        release0_tx.send(()).unwrap();
        release1_tx.send(()).unwrap();
    }

    /// Every [`ErrorCode`] has a distinct reject counter and slug.
    #[test]
    fn reject_counters_cover_every_error_code() {
        let metrics = NetMetrics::new();
        for (index, &code) in ERROR_CODES.iter().enumerate() {
            for _ in 0..=index {
                metrics.count_reject(code);
            }
        }
        for (index, &code) in ERROR_CODES.iter().enumerate() {
            assert_eq!(metrics.reject_counter(code), index as u64 + 1);
        }
        let slugs: std::collections::BTreeSet<&str> =
            ERROR_CODES.iter().map(|&c| error_code_slug(c)).collect();
        assert_eq!(slugs.len(), ERROR_CODES.len(), "slugs must be distinct");
    }
}
