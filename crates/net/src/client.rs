//! Device-side transport client and the networked sweep driver.
//!
//! [`DeviceClient`] speaks the device half of the protocol over any
//! [`Transport`]: version negotiation, challenge → attest → report, and
//! gateway-pushed authenticated updates. One client (one connection)
//! can multiplex any number of [`SimDevice`]s — the edge-aggregator
//! shape the 1000-device loopback sweep runs, with `device` ids in
//! every frame keeping the multiplexing honest.
//!
//! Two drive modes share the connection state machine:
//!
//! * [`DeviceClient::attest`] — lockstep, one exchange in flight. The
//!   simple mode, and the latency reference.
//! * [`DeviceClient::attest_batch`] — pipelined: up to `window`
//!   exchanges in flight per connection, requests and reports coalesced
//!   into batched sends ([`Transport::send_batch`], one syscall per
//!   burst over TCP). This is what closes most of the loopback-TCP
//!   throughput gap: a lockstep client pays two full round-trips of
//!   syscalls and scheduler hops *per device*; a pipelined client
//!   amortizes them over the window. Device-scoped gateway errors
//!   ([`Frame::DeviceError`]) keep `Busy` backpressure attributable —
//!   only the shed device is retried, with the same bounded backoff as
//!   lockstep mode.

use std::collections::{HashMap, VecDeque};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use eilid_fleet::{DeviceId, Fleet, HealthClass, SimDevice};

use crate::error::NetError;
use crate::service::health_from_wire;
use crate::transport::{TcpTransport, Transport};
use crate::wire::{ErrorCode, Frame, PROTOCOL_VERSION};

/// How many times an exchange shed with a `Busy` error is restarted
/// before the error surfaces to the caller.
pub const BUSY_RETRIES: usize = 8;

/// Default pipelining window of the sweep drivers: exchanges in flight
/// per connection.
pub const DEFAULT_PIPELINE_WINDOW: usize = 32;

/// The device half of the protocol, over any transport.
#[derive(Debug)]
pub struct DeviceClient<T: Transport> {
    transport: T,
    negotiated: u8,
}

impl<T: Transport> DeviceClient<T> {
    /// Performs version negotiation and returns the ready client.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] when the gateway refuses the version,
    /// transport errors otherwise.
    pub fn connect(mut transport: T) -> Result<Self, NetError> {
        transport.send(&Frame::Hello {
            min_version: PROTOCOL_VERSION,
            max_version: PROTOCOL_VERSION,
        })?;
        match transport.recv()? {
            Frame::HelloAck { version } => Ok(DeviceClient {
                transport,
                negotiated: version,
            }),
            Frame::Error { code } => Err(NetError::Protocol(code)),
            _ => Err(NetError::Unexpected("expected HelloAck")),
        }
    }

    /// The negotiated protocol version.
    pub fn version(&self) -> u8 {
        self.negotiated
    }

    /// Attests one device through the gateway: requests a challenge,
    /// answers it from the device's measurement engine, and returns the
    /// gateway's verdict. Gateway-pushed [`Frame::UpdateRequest`]s
    /// arriving mid-exchange are applied to the device and acknowledged
    /// transparently.
    ///
    /// `Error{Busy}` — the gateway's backpressure signal when its
    /// worker queues are full — is honoured, not fatal: the exchange
    /// backs off briefly and restarts (a fresh challenge is requested;
    /// the gateway dropped the old one when it shed the report), up to
    /// [`BUSY_RETRIES`] attempts. The client protocol is lockstep — one
    /// exchange in flight per connection — so a Busy frame is always
    /// attributable to this exchange.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] carries gateway-reported errors
    /// (including `Busy` once the retry budget is exhausted); transport
    /// errors pass through.
    pub fn attest(&mut self, device: &mut SimDevice) -> Result<HealthClass, NetError> {
        let mut backoff = Duration::from_micros(500);
        for _ in 0..BUSY_RETRIES {
            match self.attest_once(device) {
                Err(NetError::Protocol(ErrorCode::Busy)) => {
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(50));
                }
                other => return other,
            }
        }
        Err(NetError::Protocol(ErrorCode::Busy))
    }

    /// One challenge/report/verdict exchange, no retry.
    fn attest_once(&mut self, device: &mut SimDevice) -> Result<HealthClass, NetError> {
        let id = device.id();
        self.transport.send(&Frame::AttestRequest {
            device: id,
            cohort: device.cohort(),
        })?;
        loop {
            match self.transport.recv()? {
                Frame::Challenge {
                    device: for_device,
                    challenge,
                } => {
                    if for_device != id {
                        return Err(NetError::Unexpected("challenge for a different device"));
                    }
                    let report = device.attest(challenge);
                    self.transport.send(&Frame::Report { device: id, report })?;
                }
                Frame::AttestResult {
                    device: for_device,
                    class,
                } => {
                    if for_device != id {
                        return Err(NetError::Unexpected("result for a different device"));
                    }
                    return Ok(health_from_wire(class));
                }
                Frame::UpdateRequest {
                    device: for_device,
                    request,
                } => {
                    // Device-side update handling: apply through the
                    // authenticated engine and acknowledge. A request
                    // for a device this client doesn't hold is refused.
                    let status = if for_device == id {
                        match device.apply_update(&request) {
                            Ok(()) => 0,
                            Err(err) => update_error_code(&err),
                        }
                    } else {
                        0xFF
                    };
                    self.transport.send(&Frame::UpdateResult {
                        device: for_device,
                        status,
                    })?;
                }
                Frame::Error { code } => return Err(NetError::Protocol(code)),
                Frame::DeviceError { device, code } => {
                    if device != id {
                        return Err(NetError::Unexpected("error for a different device"));
                    }
                    return Err(NetError::Protocol(code));
                }
                _ => return Err(NetError::Unexpected("unexpected frame during attestation")),
            }
        }
    }

    /// Attests a batch of devices with up to `window` exchanges in
    /// flight on this connection, returning `(device, verdict)` pairs
    /// in device-id order.
    ///
    /// The pipeline keeps the window full: requests are issued as soon
    /// as slots free up, reports answer challenges as they arrive, and
    /// every burst of outgoing frames goes out as one batched send.
    /// Device-scoped `Busy` errors re-queue just that device (bounded
    /// by [`BUSY_RETRIES`] per device, with exponential backoff after
    /// any burst that shed work without delivering a verdict — the
    /// saturation signal); gateway-pushed updates are applied and
    /// acknowledged mid-pipeline exactly as in lockstep mode.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] for non-retryable gateway errors (or
    /// `Busy` past the retry budget); transport errors pass through.
    pub fn attest_batch(
        &mut self,
        devices: &mut [SimDevice],
        window: usize,
    ) -> Result<Vec<(DeviceId, HealthClass)>, NetError> {
        self.attest_batch_inner(devices, window, None)
    }

    /// [`DeviceClient::attest_batch`] with per-device exchange latency
    /// (request issued → verdict received, in microseconds) recorded
    /// into `latency`. The unobserved path carries no timing overhead —
    /// observation is strictly opt-in.
    ///
    /// # Errors
    ///
    /// As [`DeviceClient::attest_batch`].
    pub fn attest_batch_observed(
        &mut self,
        devices: &mut [SimDevice],
        window: usize,
        latency: &eilid_obs::Histogram,
    ) -> Result<Vec<(DeviceId, HealthClass)>, NetError> {
        self.attest_batch_inner(devices, window, Some(latency))
    }

    fn attest_batch_inner(
        &mut self,
        devices: &mut [SimDevice],
        window: usize,
        latency: Option<&eilid_obs::Histogram>,
    ) -> Result<Vec<(DeviceId, HealthClass)>, NetError> {
        let window = window.max(1);
        let index_of: HashMap<DeviceId, usize> = devices
            .iter()
            .enumerate()
            .map(|(index, device)| (device.id(), index))
            .collect();
        if index_of.len() != devices.len() {
            return Err(NetError::Unexpected("duplicate device id in batch"));
        }
        let mut to_request: VecDeque<usize> = (0..devices.len()).collect();
        let mut retries: HashMap<DeviceId, usize> = HashMap::new();
        // Request-issue stamps, kept only when a latency observer is
        // attached (the bare path allocates and stamps nothing).
        let mut issued: HashMap<DeviceId, Instant> = HashMap::new();
        let mut verdicts: Vec<(DeviceId, HealthClass)> = Vec::with_capacity(devices.len());
        let mut in_flight = 0usize;
        let mut out: Vec<Frame> = Vec::new();
        let mut inbox: Vec<Frame> = Vec::new();
        let mut backoff = Duration::from_micros(500);

        while verdicts.len() < devices.len() {
            // Fill the window with fresh requests.
            while in_flight < window {
                let Some(index) = to_request.pop_front() else {
                    break;
                };
                out.push(Frame::AttestRequest {
                    device: devices[index].id(),
                    cohort: devices[index].cohort(),
                });
                if latency.is_some() {
                    issued.insert(devices[index].id(), Instant::now());
                }
                in_flight += 1;
            }
            // One coalesced send per burst...
            self.transport.send_batch(&out)?;
            out.clear();
            // ...then block for the next frame and drain whatever burst
            // arrived with it, so a window's worth of challenges turns
            // into one read and one coalesced reply write.
            inbox.push(self.transport.recv()?);
            while let Some(frame) = self.transport.recv_now()? {
                inbox.push(frame);
            }
            let mut burst_verdicts = 0usize;
            let mut burst_busy = 0usize;
            for frame in inbox.drain(..) {
                match frame {
                    Frame::Challenge { device, challenge } => {
                        let index = *index_of
                            .get(&device)
                            .ok_or(NetError::Unexpected("challenge for a device not in batch"))?;
                        let report = devices[index].attest(challenge);
                        out.push(Frame::Report { device, report });
                    }
                    Frame::AttestResult { device, class } => {
                        if !index_of.contains_key(&device) {
                            return Err(NetError::Unexpected("result for a device not in batch"));
                        }
                        if let (Some(hist), Some(at)) = (latency, issued.remove(&device)) {
                            hist.record_duration_us(at.elapsed());
                        }
                        verdicts.push((device, health_from_wire(class)));
                        in_flight -= 1;
                        burst_verdicts += 1;
                    }
                    Frame::DeviceError {
                        device,
                        code: ErrorCode::Busy,
                    } => {
                        // Attributable backpressure: retry exactly this
                        // device (bounded per device; the burst-level
                        // backoff below decides whether to sleep first).
                        let index = *index_of
                            .get(&device)
                            .ok_or(NetError::Unexpected("error for a device not in batch"))?;
                        in_flight -= 1;
                        burst_busy += 1;
                        let attempts = retries.entry(device).or_insert(0);
                        *attempts += 1;
                        if *attempts > BUSY_RETRIES {
                            return Err(NetError::Protocol(ErrorCode::Busy));
                        }
                        to_request.push_back(index);
                    }
                    Frame::DeviceError { code, .. } => return Err(NetError::Protocol(code)),
                    Frame::UpdateRequest { device, request } => {
                        let status = match index_of.get(&device) {
                            Some(&index) => match devices[index].apply_update(&request) {
                                Ok(()) => 0,
                                Err(err) => update_error_code(&err),
                            },
                            None => 0xFF,
                        };
                        out.push(Frame::UpdateResult { device, status });
                    }
                    Frame::Error { code } => return Err(NetError::Protocol(code)),
                    _ => return Err(NetError::Unexpected("unexpected frame during attestation")),
                }
            }
            // Burst-level backoff: a burst that shed work and produced
            // no verdicts means the gateway is saturated — sleep with
            // exponential growth (matching the lockstep path's
            // resilience) before hammering it again. Any verdict in the
            // burst means capacity is flowing; keep streaming.
            if burst_busy > 0 && burst_verdicts == 0 {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(50));
            } else if burst_verdicts > 0 {
                backoff = Duration::from_micros(500);
            }
        }
        // The final burst can queue one last reply (e.g. the
        // UpdateResult ack for a gateway-pushed update arriving with
        // the last verdict) — flush it before returning.
        self.transport.send_batch(&out)?;
        verdicts.sort_by_key(|(device, _)| *device);
        Ok(verdicts)
    }

    /// Sends an orderly goodbye and returns the transport.
    ///
    /// # Errors
    ///
    /// Propagates the send failure (the connection is dropped either
    /// way).
    pub fn bye(mut self) -> Result<T, NetError> {
        self.transport.send(&Frame::Bye)?;
        Ok(self.transport)
    }
}

/// Stable wire codes for device-side update rejections.
pub(crate) fn update_error_code(error: &eilid_casu::UpdateError) -> u8 {
    match error {
        eilid_casu::UpdateError::BadMac => 1,
        eilid_casu::UpdateError::StaleNonce { .. } => 2,
        eilid_casu::UpdateError::TargetOutsidePmem { .. } => 3,
        eilid_casu::UpdateError::EmptyPayload => 4,
        eilid_casu::UpdateError::RollbackVersion { .. } => 5,
        eilid_casu::UpdateError::MalformedDelta => 6,
    }
}

/// Aggregated result of a networked attestation sweep.
#[derive(Debug, Clone)]
pub struct NetSweepReport {
    /// Devices attested.
    pub devices: usize,
    /// Devices per health class: `[attested, stale, tampered, unverified]`.
    pub counts: [usize; 4],
    /// Device ids that came back in a non-attested class, in id order.
    pub flagged: Vec<(DeviceId, HealthClass)>,
    /// Wall-clock time for the whole sweep (connect → last verdict).
    pub elapsed: Duration,
    /// Concurrent client connections used.
    pub clients: usize,
    /// Per-exchange latency distribution (request issued → verdict
    /// received, µs) across every client — present only on the
    /// `_observed` sweep variants; the bare sweeps stamp nothing.
    pub latency: Option<eilid_obs::HistogramSnapshot>,
}

impl NetSweepReport {
    /// Devices in `class`.
    pub fn count(&self, class: HealthClass) -> usize {
        self.counts[class_index(class)]
    }

    /// Sweep throughput in devices per second.
    pub fn devices_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return f64::INFINITY;
        }
        self.devices as f64 / secs
    }

    /// Median per-exchange latency in µs (observed sweeps only).
    pub fn p50_latency_us(&self) -> Option<u64> {
        self.latency.as_ref().map(|hist| hist.p50())
    }

    /// 99th-percentile per-exchange latency in µs (observed sweeps
    /// only).
    pub fn p99_latency_us(&self) -> Option<u64> {
        self.latency.as_ref().map(|hist| hist.p99())
    }
}

fn class_index(class: HealthClass) -> usize {
    match class {
        HealthClass::Attested => 0,
        HealthClass::Stale => 1,
        HealthClass::Tampered => 2,
        HealthClass::Unverified => 3,
    }
}

/// Drives a full-fleet attestation sweep over `clients` concurrent
/// transports (one [`DeviceClient`] each, devices partitioned evenly),
/// using `make_transport` to open each connection and the default
/// pipelining window ([`DEFAULT_PIPELINE_WINDOW`]).
///
/// # Errors
///
/// The first transport/protocol error aborts the sweep.
pub fn sweep_fleet_over<T, F>(
    fleet: &mut Fleet,
    clients: usize,
    make_transport: F,
) -> Result<NetSweepReport, NetError>
where
    T: Transport + Send,
    F: Fn() -> Result<T, NetError> + Sync,
{
    sweep_fleet_windowed(fleet, clients, DEFAULT_PIPELINE_WINDOW, make_transport)
}

/// [`sweep_fleet_over`] with an explicit pipelining window: exchanges
/// in flight per connection. `window == 1` degrades to lockstep
/// exchanges (through the same pipelined engine).
///
/// # Errors
///
/// The first transport/protocol error aborts the sweep.
pub fn sweep_fleet_windowed<T, F>(
    fleet: &mut Fleet,
    clients: usize,
    window: usize,
    make_transport: F,
) -> Result<NetSweepReport, NetError>
where
    T: Transport + Send,
    F: Fn() -> Result<T, NetError> + Sync,
{
    sweep_fleet_inner(fleet, clients, window, make_transport, false)
}

/// [`sweep_fleet_windowed`] with per-exchange latency observation: the
/// report's `latency` histogram aggregates request→verdict times across
/// every client connection (this is what stamps p50/p99 into the
/// transport benchmarks).
///
/// # Errors
///
/// The first transport/protocol error aborts the sweep.
pub fn sweep_fleet_windowed_observed<T, F>(
    fleet: &mut Fleet,
    clients: usize,
    window: usize,
    make_transport: F,
) -> Result<NetSweepReport, NetError>
where
    T: Transport + Send,
    F: Fn() -> Result<T, NetError> + Sync,
{
    sweep_fleet_inner(fleet, clients, window, make_transport, true)
}

fn sweep_fleet_inner<T, F>(
    fleet: &mut Fleet,
    clients: usize,
    window: usize,
    make_transport: F,
    observe: bool,
) -> Result<NetSweepReport, NetError>
where
    T: Transport + Send,
    F: Fn() -> Result<T, NetError> + Sync,
{
    // One histogram shared by every client thread (the cells are
    // atomic, so concurrent recording needs no locks).
    let latency = observe.then(eilid_obs::Histogram::default);
    let devices = fleet.devices_mut();
    let total = devices.len();
    let clients = clients.clamp(1, total.max(1));
    let chunk = total.div_ceil(clients);
    // `chunks_mut(chunk)` opens one connection per chunk, which can be
    // fewer than requested (9 devices / 4 clients → chunks of 3 → 3
    // connections); report what actually ran.
    let clients = total.div_ceil(chunk);
    let start = Instant::now();

    let results: Vec<Result<Vec<(DeviceId, HealthClass)>, NetError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = devices
                .chunks_mut(chunk)
                .map(|batch| {
                    let make_transport = &make_transport;
                    let latency = latency.as_ref();
                    scope.spawn(move || {
                        let mut client = DeviceClient::connect(make_transport()?)?;
                        let verdicts = client.attest_batch_inner(batch, window, latency)?;
                        let _ = client.bye();
                        Ok(verdicts)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("sweep client thread panicked"))
                .collect()
        });

    let mut counts = [0usize; 4];
    let mut flagged = Vec::new();
    for result in results {
        for (id, class) in result? {
            counts[class_index(class)] += 1;
            if class != HealthClass::Attested {
                flagged.push((id, class));
            }
        }
    }
    flagged.sort_by_key(|(id, _)| *id);
    Ok(NetSweepReport {
        devices: total,
        counts,
        flagged,
        elapsed: start.elapsed(),
        clients,
        latency: latency.map(|hist| hist.snapshot()),
    })
}

/// [`sweep_fleet_over`] specialised to loopback/remote TCP.
///
/// # Errors
///
/// The first connection or protocol error aborts the sweep.
pub fn sweep_fleet_tcp(
    fleet: &mut Fleet,
    clients: usize,
    addr: SocketAddr,
) -> Result<NetSweepReport, NetError> {
    sweep_fleet_over(fleet, clients, || TcpTransport::connect(addr))
}

/// [`sweep_fleet_windowed`] specialised to loopback/remote TCP.
///
/// # Errors
///
/// The first connection or protocol error aborts the sweep.
pub fn sweep_fleet_tcp_windowed(
    fleet: &mut Fleet,
    clients: usize,
    window: usize,
    addr: SocketAddr,
) -> Result<NetSweepReport, NetError> {
    sweep_fleet_windowed(fleet, clients, window, || TcpTransport::connect(addr))
}

/// [`sweep_fleet_windowed_observed`] specialised to loopback/remote
/// TCP.
///
/// # Errors
///
/// The first connection or protocol error aborts the sweep.
pub fn sweep_fleet_tcp_observed(
    fleet: &mut Fleet,
    clients: usize,
    window: usize,
    addr: SocketAddr,
) -> Result<NetSweepReport, NetError> {
    sweep_fleet_windowed_observed(fleet, clients, window, || TcpTransport::connect(addr))
}
