//! The wire backend of the unified operator plane, plus the device
//! agent that serves gateway-initiated campaign pushes.
//!
//! Three pieces complete the networked deployment shape:
//!
//! * [`RemoteOps`] — the operator console. It implements
//!   [`eilid_fleet::FleetOps`] by translating each call into operator
//!   frames (`OpBegin`/`OpStep`/`CampaignControl`/`OpSweep`/…) to an
//!   attestation gateway, whose campaign engine executes the waves. The
//!   trait is shared with the in-process `LocalOps`, so every scenario
//!   (CLI, examples, benches, the equivalence suite) runs identically
//!   against either backend.
//! * [`DeviceAgent`] — the device plane. One agent (one connection)
//!   attaches any number of [`SimDevice`]s and then serves
//!   gateway-initiated pushes: pre-update snapshots, authenticated
//!   updates, and attestation probes (attest-only sweeps, post-update
//!   probe+smoke runs, post-rollback verification).
//! * [`with_attached_fleet`] — scoped orchestration for tests, the CLI
//!   and benches: spawn N agent threads over a fleet's devices, wait
//!   until every attach is acknowledged, run the operator closure, then
//!   stop and join the agents.

use std::borrow::{Borrow, BorrowMut};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use eilid::RunOutcome;
use eilid_casu::agg::{fleet_root, shard_agg_key};
use eilid_casu::{CryptoProvider, MeasurementScheme, SoftwareProvider};
use eilid_fleet::{
    AggSweepSummary, CampaignConfig, CampaignPhase, CampaignReport, CampaignStatus, Fleet,
    FleetOps, OpsError, OpsHealth, SimDevice, SweepSummary, SHARD_COUNT,
};
use eilid_workloads::WorkloadId;

use crate::client::update_error_code;
use crate::error::NetError;
use crate::service::health_from_wire;
use crate::transport::{TcpTransport, Transport};
use crate::wire::{
    CampaignOp, ErrorCode, Frame, ProbeMode, CAMPAIGN_STATE_FINISHED, CAMPAIGN_STATE_PAUSED,
    CAMPAIGN_STATE_RUNNING, PROTOCOL_VERSION,
};

/// The wire [`FleetOps`] backend: an operator console connected to an
/// attestation gateway. Campaign state lives gateway-side; this client
/// is a thin, lockstep frame translator (one reply per command).
#[derive(Debug)]
pub struct RemoteOps<T: Transport> {
    transport: T,
    /// The cohort of the campaign this console is driving (set by
    /// begin/resume; `CampaignControl` frames are cohort-addressed).
    cohort: Option<WorkloadId>,
    /// Overall per-command reply deadline. One `OpStep` can span a
    /// whole wave of device exchanges and smoke runs on the gateway
    /// side, so individual transport receive timeouts are retried
    /// until this elapses — giving up early would leave the late reply
    /// in the stream and desynchronise every later command.
    op_timeout: Duration,
    /// Fleet root key bytes for aggregated sweeps: the operator
    /// re-derives each shard's aggregation key from these to verify the
    /// gateway's aggregate-root MACs. Unset consoles refuse
    /// [`FleetOps::sweep_aggregated`] — an unverifiable aggregate is
    /// worthless.
    agg_root: Option<Vec<u8>>,
    /// Crypto backend the console verifies aggregate proofs with.
    provider: Arc<dyn CryptoProvider>,
    /// Highest aggregated-sweep epoch accepted so far; replayed or
    /// stale aggregates (epoch not strictly increasing) are rejected.
    last_agg_epoch: Option<u64>,
}

/// Default overall reply deadline for one operator command (a full
/// wave of a large campaign fits comfortably).
pub const DEFAULT_OP_TIMEOUT: Duration = Duration::from_secs(300);

impl RemoteOps<TcpTransport> {
    /// Connects to a gateway over TCP and negotiates the protocol.
    ///
    /// # Errors
    ///
    /// Connection and negotiation failures as [`NetError`].
    pub fn connect(addr: SocketAddr) -> Result<Self, NetError> {
        Self::from_transport(TcpTransport::connect(addr)?)
    }
}

impl<T: Transport> RemoteOps<T> {
    /// Negotiates the protocol over an existing transport.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] when the gateway refuses the version;
    /// transport failures otherwise.
    pub fn from_transport(mut transport: T) -> Result<Self, NetError> {
        transport.send(&Frame::Hello {
            min_version: PROTOCOL_VERSION,
            max_version: PROTOCOL_VERSION,
        })?;
        match transport.recv()? {
            Frame::HelloAck { .. } => Ok(RemoteOps {
                transport,
                cohort: None,
                op_timeout: DEFAULT_OP_TIMEOUT,
                agg_root: None,
                provider: Arc::new(SoftwareProvider),
                last_agg_epoch: None,
            }),
            Frame::Error { code } => Err(NetError::Protocol(code)),
            _ => Err(NetError::Unexpected("expected HelloAck")),
        }
    }

    /// Overrides the overall per-command reply deadline (default
    /// [`DEFAULT_OP_TIMEOUT`]).
    pub fn set_op_timeout(&mut self, timeout: Duration) {
        self.op_timeout = timeout;
    }

    /// Provisions the fleet root key aggregated sweeps verify against.
    /// The console derives each shard's aggregation key from it
    /// ([`shard_agg_key`]) and checks every [`eilid_casu::AggProof`] the
    /// gateway publishes; without the key,
    /// [`FleetOps::sweep_aggregated`] is refused.
    pub fn set_agg_root_key(&mut self, key: &[u8]) {
        self.agg_root = Some(key.to_vec());
    }

    /// Overrides the crypto backend aggregate proofs are verified with
    /// (default [`SoftwareProvider`]).
    pub fn set_provider(&mut self, provider: Arc<dyn CryptoProvider>) {
        self.provider = provider;
    }

    /// Sends an orderly goodbye and returns the transport.
    ///
    /// # Errors
    ///
    /// Propagates the send failure (the connection is dropped either
    /// way).
    pub fn bye(mut self) -> Result<T, NetError> {
        self.transport.send(&Frame::Bye)?;
        Ok(self.transport)
    }

    /// Addresses this console at `cohort`'s gateway-side campaign slot
    /// without beginning or resuming one — the recovery path for an
    /// operator console that crashed mid-campaign: reconnect, adopt the
    /// cohort, then query status / pause / step the run the gateway
    /// kept alive.
    pub fn adopt(&mut self, cohort: WorkloadId) {
        self.cohort = Some(cohort);
    }

    /// Resumes the gateway-*retained* paused campaign for the adopted
    /// cohort ([`CampaignOp::Resume`]) — no bytes cross the wire; the
    /// bytes-based [`FleetOps::campaign_resume`] is the gateway-restart
    /// recovery path instead.
    ///
    /// # Errors
    ///
    /// [`OpsError::NoCampaign`] when the gateway retains nothing for
    /// the cohort; [`OpsError::CampaignActive`] when a run is already
    /// loaded.
    pub fn resume_retained(&mut self) -> Result<(), OpsError> {
        let cohort = self.active_cohort()?;
        match self.request(Frame::CampaignControl {
            cohort,
            op: CampaignOp::Resume,
        })? {
            Frame::CampaignStatus { .. } => Ok(()),
            _ => Err(unexpected("expected CampaignStatus")),
        }
    }

    /// Checkpoints the active campaign into the gateway's retained
    /// slot *without pausing it* — one round trip, and (with
    /// `fetch = false`) no `EPC2` byte shuttle at all. Returns the
    /// campaign state at checkpoint time plus the serialised record
    /// when `fetch` is true (consoles that must survive gateway
    /// *process* death re-seed a replacement from those bytes via
    /// [`eilid_fleet::ops::FleetOps::campaign_resume`]).
    ///
    /// # Errors
    ///
    /// [`OpsError::NoCampaign`] when nothing is loaded (or the run
    /// already finished); transport failures and gateway refusals as
    /// [`OpsError`].
    pub fn campaign_checkpoint(&mut self, fetch: bool) -> Result<(u8, Vec<u8>), OpsError> {
        let cohort = self.active_cohort()?;
        match self.request(Frame::OpCheckpoint {
            cohort,
            fetch: u8::from(fetch),
        })? {
            Frame::OpCheckpointAck { state, paused, .. } => Ok((state, paused)),
            _ => Err(unexpected("expected OpCheckpointAck")),
        }
    }

    /// Asks the gateway to drain for planned maintenance: stop
    /// accepting connections, pause every live campaign, and hand the
    /// paused records back (those too large for one frame stay
    /// gateway-retained, resumable via [`RemoteOps::resume_retained`]
    /// after restart). The supervising control plane calls this before
    /// taking a gateway down so no campaign progress is lost.
    ///
    /// # Errors
    ///
    /// Transport failures and gateway refusals as [`OpsError`].
    pub fn drain(&mut self) -> Result<Vec<(WorkloadId, Vec<u8>)>, OpsError> {
        match self.request(Frame::OpDrain)? {
            Frame::OpDrained { paused } => Ok(paused),
            _ => Err(unexpected("expected OpDrained")),
        }
    }

    /// Scrapes the gateway's telemetry registry: every counter, gauge
    /// and latency histogram as a mergeable
    /// [`eilid_obs::RegistrySnapshot`]. Cluster operators merge these
    /// across gateways — counter totals sum exactly.
    ///
    /// # Errors
    ///
    /// Transport failures, gateway refusals, and unparseable snapshot
    /// payloads as [`OpsError`].
    pub fn metrics(&mut self) -> Result<eilid_obs::RegistrySnapshot, OpsError> {
        match self.request(Frame::OpMetrics)? {
            Frame::OpMetricsResult { snapshot } => {
                let text = std::str::from_utf8(&snapshot)
                    .map_err(|_| OpsError::Backend("metrics snapshot not UTF-8".into()))?;
                eilid_obs::RegistrySnapshot::from_json(text)
                    .map_err(|err| OpsError::Backend(format!("bad metrics snapshot: {err}")))
            }
            _ => Err(unexpected("expected OpMetricsResult")),
        }
    }

    /// One lockstep command/reply exchange, with gateway error frames
    /// mapped to typed [`OpsError`]s. Transport-level receive timeouts
    /// are retried until [`RemoteOps::set_op_timeout`]'s deadline:
    /// gateway-side steps legitimately take a while, and abandoning
    /// the exchange early would desynchronise the lockstep stream.
    fn request(&mut self, frame: Frame) -> Result<Frame, OpsError> {
        self.transport.send(&frame).map_err(backend)?;
        let deadline = Instant::now() + self.op_timeout;
        let reply = loop {
            match self.transport.recv() {
                Ok(reply) => break reply,
                Err(NetError::Timeout) if Instant::now() < deadline => continue,
                Err(err) => return Err(backend(err)),
            }
        };
        match reply {
            Frame::Error {
                code: ErrorCode::NoCampaign,
            } => Err(OpsError::NoCampaign),
            Frame::Error {
                code: ErrorCode::CampaignActive,
            } => Err(OpsError::CampaignActive),
            Frame::Error { code } => Err(OpsError::Backend(format!("gateway refused: {code}"))),
            reply => Ok(reply),
        }
    }

    fn active_cohort(&self) -> Result<WorkloadId, OpsError> {
        self.cohort.ok_or(OpsError::NoCampaign)
    }
}

fn backend(err: NetError) -> OpsError {
    OpsError::Backend(err.to_string())
}

fn unexpected(what: &str) -> OpsError {
    OpsError::Backend(format!("unexpected gateway reply: {what}"))
}

/// Maps a `CampaignStatus` frame's `state` byte to the trait's phase.
fn phase_from_state(state: u8, wave_cursor: u32) -> CampaignPhase {
    match state {
        CAMPAIGN_STATE_RUNNING => CampaignPhase::InProgress {
            next_wave: wave_cursor as usize,
        },
        CAMPAIGN_STATE_PAUSED => CampaignPhase::Paused {
            next_wave: wave_cursor as usize,
        },
        CAMPAIGN_STATE_FINISHED => CampaignPhase::Finished,
        _ => CampaignPhase::Idle,
    }
}

impl<T: Transport> FleetOps for RemoteOps<T> {
    fn sweep(&mut self) -> Result<SweepSummary, OpsError> {
        match self.request(Frame::OpSweep)? {
            Frame::OpSweepResult {
                devices,
                counts,
                flagged,
            } => Ok(SweepSummary {
                devices: devices as usize,
                counts: [
                    counts[0] as usize,
                    counts[1] as usize,
                    counts[2] as usize,
                    counts[3] as usize,
                ],
                flagged: flagged
                    .into_iter()
                    .map(|(device, class)| (device, health_from_wire(class)))
                    .collect(),
            }),
            _ => Err(unexpected("expected OpSweepResult")),
        }
    }

    fn sweep_aggregated(&mut self) -> Result<AggSweepSummary, OpsError> {
        let Some(agg_root) = self.agg_root.clone() else {
            return Err(OpsError::Backend(
                "aggregated sweep requires the fleet root key (set_agg_root_key)".to_string(),
            ));
        };
        match self.request(Frame::OpAggSweep)? {
            Frame::OpAggSweepResult {
                epoch,
                devices,
                counts,
                bitmap_base,
                bitmap,
                proofs,
                suspects,
            } => {
                // Replay protection: epochs are challenge-nonce bases,
                // so an honest gateway's are strictly increasing. A
                // replayed result frame from an earlier sweep fails
                // here even though its MACs still verify.
                if devices > 0 {
                    if let Some(last) = self.last_agg_epoch {
                        if epoch <= last {
                            return Err(OpsError::Backend(format!(
                                "aggregated sweep epoch {epoch} not newer than {last} (replay?)"
                            )));
                        }
                    }
                    self.last_agg_epoch = Some(epoch);
                }

                // Structural cross-checks: the participant bitmap and
                // the per-shard proof counts must both add up to the
                // claimed device total, and every suspect must be a
                // participant — a tampered device cannot be dropped
                // from the aggregate without tripping one of these.
                let popcount: u64 = bitmap.iter().map(|byte| u64::from(byte.count_ones())).sum();
                if popcount != u64::from(devices) {
                    return Err(OpsError::Backend(format!(
                        "participant bitmap covers {popcount} devices, result claims {devices}"
                    )));
                }
                let proof_total: u64 = proofs.iter().map(|proof| u64::from(proof.count)).sum();
                if proof_total != u64::from(devices) {
                    return Err(OpsError::Backend(format!(
                        "shard proofs cover {proof_total} devices, result claims {devices}"
                    )));
                }
                let participant = |device: u64| -> bool {
                    device
                        .checked_sub(bitmap_base)
                        .and_then(|bit| bitmap.get((bit / 8) as usize).map(|byte| (byte, bit % 8)))
                        .is_some_and(|(byte, bit)| byte & (1 << bit) != 0)
                };
                if let Some((device, _)) = suspects.iter().find(|(device, _)| !participant(*device))
                {
                    return Err(OpsError::Backend(format!(
                        "suspect device {device} is not a sweep participant"
                    )));
                }

                // The sublinear step: at most SHARD_COUNT aggregate-MAC
                // verifications stand in for per-device verdict frames.
                let mut roots_verified = 0usize;
                let mut shard_roots = Vec::with_capacity(proofs.len());
                for proof in &proofs {
                    let key = shard_agg_key(&*self.provider, &agg_root, proof.shard);
                    if !proof.verify(&*self.provider, &key) {
                        return Err(OpsError::Backend(format!(
                            "shard {} aggregate root failed verification",
                            proof.shard
                        )));
                    }
                    roots_verified += 1;
                    shard_roots.push((proof.shard, proof.root));
                }

                // Memoized-probe rule, operator side: a shard whose
                // aggregate arrived with zero suspects yields all its
                // verdicts from the one verified root.
                let short_circuited = proofs
                    .iter()
                    .filter(|proof| {
                        !suspects
                            .iter()
                            .any(|(device, _)| (device % SHARD_COUNT as u64) as u16 == proof.shard)
                    })
                    .map(|proof| proof.count as usize)
                    .sum();

                Ok(AggSweepSummary {
                    summary: SweepSummary {
                        devices: devices as usize,
                        counts: [
                            counts[0] as usize,
                            counts[1] as usize,
                            counts[2] as usize,
                            counts[3] as usize,
                        ],
                        flagged: suspects
                            .into_iter()
                            .map(|(device, class)| (device, health_from_wire(class)))
                            .collect(),
                    },
                    epoch,
                    shards: proofs.len(),
                    roots_verified,
                    short_circuited,
                    shard_roots: shard_roots.clone(),
                    fleet_root: fleet_root(&*self.provider, &shard_roots),
                })
            }
            _ => Err(unexpected("expected OpAggSweepResult")),
        }
    }

    fn campaign_begin(&mut self, config: &CampaignConfig) -> Result<(), OpsError> {
        let cohort = config.cohort;
        match self.request(Frame::OpBegin {
            config: config.clone(),
        })? {
            Frame::CampaignStatus { .. } => {
                self.cohort = Some(cohort);
                Ok(())
            }
            _ => Err(unexpected("expected CampaignStatus")),
        }
    }

    fn campaign_step(&mut self) -> Result<CampaignStatus, OpsError> {
        let cohort = self.active_cohort()?;
        match self.request(Frame::OpStep { cohort })? {
            Frame::CampaignStatus {
                state, wave_cursor, ..
            } => match phase_from_state(state, wave_cursor) {
                CampaignPhase::Finished => Ok(CampaignStatus::Finished),
                CampaignPhase::InProgress { next_wave } => {
                    Ok(CampaignStatus::InProgress { next_wave })
                }
                _ => Err(unexpected(
                    "campaign neither running nor finished after step",
                )),
            },
            _ => Err(unexpected("expected CampaignStatus")),
        }
    }

    fn campaign_status(&mut self) -> Result<CampaignPhase, OpsError> {
        let Some(cohort) = self.cohort else {
            return Ok(CampaignPhase::Idle);
        };
        match self.request(Frame::CampaignControl {
            cohort,
            op: CampaignOp::Status,
        })? {
            Frame::CampaignStatus {
                state, wave_cursor, ..
            } => Ok(phase_from_state(state, wave_cursor)),
            _ => Err(unexpected("expected CampaignStatus")),
        }
    }

    fn campaign_pause(&mut self) -> Result<Vec<u8>, OpsError> {
        let cohort = self.active_cohort()?;
        match self.request(Frame::CampaignControl {
            cohort,
            op: CampaignOp::Pause,
        })? {
            Frame::OpPaused { paused, .. } => Ok(paused),
            _ => Err(unexpected("expected OpPaused")),
        }
    }

    fn campaign_resume(&mut self, paused: &[u8]) -> Result<(), OpsError> {
        if paused.len() > crate::wire::MAX_OP_PAYLOAD {
            return Err(OpsError::Backend(format!(
                "paused-campaign record of {} bytes exceeds the operator-plane frame ceiling {}",
                paused.len(),
                crate::wire::MAX_OP_PAYLOAD
            )));
        }
        match self.request(Frame::OpResume {
            paused: paused.to_vec(),
        })? {
            Frame::CampaignStatus { cohort, .. } => {
                self.cohort = Some(cohort);
                Ok(())
            }
            _ => Err(unexpected("expected CampaignStatus")),
        }
    }

    fn campaign_report(&mut self) -> Result<CampaignReport, OpsError> {
        let cohort = self.active_cohort()?;
        match self.request(Frame::CampaignControl {
            cohort,
            op: CampaignOp::Report,
        })? {
            Frame::OpReport { report, .. } => Ok(report),
            _ => Err(unexpected("expected OpReport")),
        }
    }

    fn health(&mut self) -> Result<OpsHealth, OpsError> {
        let (attached, ledger_events) = match self.request(Frame::OpHealth)? {
            Frame::OpHealthResult {
                attached,
                ledger_events,
                ..
            } => (attached as usize, ledger_events as usize),
            _ => return Err(unexpected("expected OpHealthResult")),
        };
        let campaign = self.campaign_status()?;
        Ok(OpsHealth {
            devices: attached,
            ledger_events,
            campaign,
        })
    }
}

/// How many replies a [`DeviceAgent`] buffers before forcing a flush
/// mid-burst. Bounds agent memory against a gateway that streams
/// requests faster than the agent answers them.
const AGENT_REPLY_BURST: usize = 256;

/// The device-plane agent: serves gateway-initiated pushes for the
/// devices it attached on this connection. This is what turns a fleet
/// of [`SimDevice`]s into live campaign targets — the networked
/// equivalent of the in-process executor touching devices directly.
#[derive(Debug)]
pub struct DeviceAgent<T: Transport> {
    transport: T,
    scheme: MeasurementScheme,
}

impl<T: Transport> DeviceAgent<T> {
    /// Negotiates the protocol over `transport`. `scheme` must be the
    /// measurement scheme the fleet was enrolled under (snapshots
    /// report measurements computed with it).
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] when the gateway refuses the version;
    /// transport failures otherwise.
    pub fn connect(mut transport: T, scheme: MeasurementScheme) -> Result<Self, NetError> {
        transport.send(&Frame::Hello {
            min_version: PROTOCOL_VERSION,
            max_version: PROTOCOL_VERSION,
        })?;
        match transport.recv()? {
            Frame::HelloAck { .. } => Ok(DeviceAgent { transport, scheme }),
            Frame::Error { code } => Err(NetError::Protocol(code)),
            _ => Err(NetError::Unexpected("expected HelloAck")),
        }
    }

    /// Registers every device in `devices` on this connection, waiting
    /// until the gateway acknowledged each attach (so campaign begins
    /// issued afterwards see the full membership). Accepts owned
    /// devices (`&[SimDevice]`) or borrowed ones (`&[&mut SimDevice]`
    /// — the shape placement partitions produce).
    ///
    /// # Errors
    ///
    /// Transport failures; a device-scoped gateway refusal (unknown
    /// cohort) surfaces as [`NetError::Protocol`].
    pub fn attach<D: Borrow<SimDevice>>(&mut self, devices: &[D]) -> Result<(), NetError> {
        let frames: Vec<Frame> = devices
            .iter()
            .map(|device| {
                let device = device.borrow();
                Frame::Attach {
                    device: device.id(),
                    cohort: device.cohort(),
                }
            })
            .collect();
        self.transport.send_batch(&frames)?;
        let mut acked = 0usize;
        let deadline = Instant::now() + Duration::from_secs(10);
        while acked < devices.len() {
            match self.transport.recv() {
                Ok(Frame::AttachAck { .. }) => acked += 1,
                Ok(Frame::DeviceError { code, .. }) => return Err(NetError::Protocol(code)),
                Ok(_) => return Err(NetError::Unexpected("unexpected frame during attach")),
                Err(NetError::Timeout) if Instant::now() < deadline => continue,
                Err(err) => return Err(err),
            }
        }
        Ok(())
    }

    /// Serves gateway pushes for `devices` (the same slice attach was
    /// called with) until `stop` is set, the gateway hangs up, or it
    /// says [`Frame::Bye`]. Use a transport with a short receive
    /// timeout so the stop flag is polled responsively.
    ///
    /// Requests that arrive as a burst (an engine wave pushes hundreds
    /// of probes per connection in one coalesced write) are answered as
    /// a burst: the agent drains every already-buffered request via
    /// [`Transport::recv_now`] and flushes all the replies in one
    /// [`Transport::send_batch`] — one write syscall instead of one per
    /// device.
    ///
    /// # Errors
    ///
    /// Transport failures and protocol violations; an orderly close is
    /// `Ok`.
    pub fn serve<D: BorrowMut<SimDevice>>(
        &mut self,
        devices: &mut [D],
        stop: &AtomicBool,
    ) -> Result<(), NetError> {
        let mut replies: Vec<Frame> = Vec::new();
        loop {
            let first = match self.transport.recv() {
                Ok(frame) => frame,
                Err(NetError::Timeout) => {
                    if stop.load(Ordering::Relaxed) {
                        return Ok(());
                    }
                    continue;
                }
                Err(NetError::Closed) => return Ok(()),
                Err(err) => return Err(err),
            };
            let mut next = Some(first);
            // `Some(result)` ends the serve loop — but only after the
            // replies buffered so far are flushed below.
            let outcome: Option<Result<(), NetError>> = loop {
                let Some(frame) = next.take() else { break None };
                match frame {
                    Frame::SnapshotRequest { device, start, len } => {
                        // The requested range is wire-controlled:
                        // validate it against the address space before
                        // slicing, so a hostile or version-skewed
                        // gateway cannot panic the agent.
                        let in_range =
                            usize::from(start) + usize::from(len) <= eilid_msp430::ADDRESS_SPACE;
                        let reply = match find_device(devices, device) {
                            Some(sim) if in_range => snapshot_report(sim, self.scheme, start, len),
                            Some(_) => Frame::DeviceError {
                                device,
                                code: ErrorCode::UnexpectedFrame,
                            },
                            None => Frame::DeviceError {
                                device,
                                code: ErrorCode::UnknownDevice,
                            },
                        };
                        replies.push(reply);
                    }
                    Frame::UpdateRequest { device, request } => {
                        let status = match find_device(devices, device) {
                            Some(sim) => match sim.apply_update(&request) {
                                Ok(()) => 0,
                                Err(err) => update_error_code(&err),
                            },
                            None => 0xFF,
                        };
                        replies.push(Frame::UpdateResult { device, status });
                    }
                    Frame::DeltaUpdateRequest { device, request } => {
                        let status = match find_device(devices, device) {
                            Some(sim) => match sim.apply_delta_update(&request) {
                                Ok(()) => 0,
                                Err(err) => update_error_code(&err),
                            },
                            None => 0xFF,
                        };
                        replies.push(Frame::UpdateResult { device, status });
                    }
                    Frame::ProbeRequest {
                        device,
                        mode,
                        smoke_cycles,
                        challenge,
                    } => {
                        let reply = match find_device(devices, device) {
                            Some(sim) => probe_result(sim, device, mode, smoke_cycles, challenge),
                            None => Frame::DeviceError {
                                device,
                                code: ErrorCode::UnknownDevice,
                            },
                        };
                        replies.push(reply);
                    }
                    Frame::Bye => break Some(Ok(())),
                    Frame::Error { code } => break Some(Err(NetError::Protocol(code))),
                    _ => {
                        break Some(Err(NetError::Unexpected(
                            "unexpected frame at device agent",
                        )))
                    }
                }
                if replies.len() >= AGENT_REPLY_BURST {
                    break None;
                }
                match self.transport.recv_now() {
                    Ok(frame) => next = frame,
                    Err(err) => break Some(Err(err)),
                }
            };
            if !replies.is_empty() {
                self.transport.send_batch(&replies)?;
                replies.clear();
            }
            if let Some(result) = outcome {
                return result;
            }
        }
    }
}

fn find_device<D: BorrowMut<SimDevice>>(devices: &mut [D], id: u64) -> Option<&mut SimDevice> {
    devices
        .iter_mut()
        .map(BorrowMut::borrow_mut)
        .find(|device| device.id() == id)
}

/// Builds the snapshot reply: patch-range bytes, full-PMEM measurement
/// under the fleet scheme, and the update engine's last accepted nonce
/// and anti-rollback version — exactly the device state the in-process
/// executor reads directly. The measurement comes from the device's
/// live incremental measurer when it covers PMEM (re-hashing only dirty
/// granules), not a from-scratch `measure_pmem`.
fn snapshot_report(sim: &mut SimDevice, scheme: MeasurementScheme, start: u16, len: u16) -> Frame {
    let device = sim.id();
    let last_nonce = sim.engine().last_nonce();
    let version = sim.engine().last_version();
    let measurement = sim.measure_pmem_cached(scheme);
    let from = usize::from(start);
    let data = sim
        .device()
        .cpu()
        .memory
        .slice(from..from + usize::from(len))
        .to_vec();
    Frame::SnapshotReport {
        device,
        last_nonce,
        version,
        measurement,
        data,
    }
}

/// Runs one probe per the requested [`ProbeMode`] and builds the reply.
fn probe_result(
    sim: &mut SimDevice,
    device: u64,
    mode: ProbeMode,
    smoke_cycles: u64,
    challenge: eilid_casu::Challenge,
) -> Frame {
    match mode {
        // Sweep probe: answer from the running image.
        ProbeMode::AttestOnly => {
            let report = sim.attest(challenge);
            Frame::ProbeResult {
                device,
                healthy: 1,
                report,
            }
        }
        // Post-update probe: attest first (the updated image), then
        // reboot into it and smoke-run — the in-process probe order.
        ProbeMode::UpdateProbe => {
            let report = sim.attest(challenge);
            sim.reboot();
            let outcome = sim.run_slice(smoke_cycles);
            let healthy = matches!(
                outcome,
                RunOutcome::Completed { .. } | RunOutcome::Timeout { .. }
            );
            Frame::ProbeResult {
                device,
                healthy: u8::from(healthy),
                report,
            }
        }
        // Post-rollback verification: reboot into the restored image,
        // then attest it.
        ProbeMode::RollbackVerify => {
            sim.reboot();
            let report = sim.attest(challenge);
            Frame::ProbeResult {
                device,
                healthy: 1,
                report,
            }
        }
        // Memoized campaign probe: attest the updated image, reboot
        // into it, and report `healthy = 2` — "no own verdict, eligible
        // to inherit the cohort reference's". A probe-isolated device
        // never takes the shortcut: it runs the full update probe and
        // answers 0/1 like any per-device smoke run.
        ProbeMode::UpdateAttest => {
            if sim.probe_isolated() {
                return probe_result(sim, device, ProbeMode::UpdateProbe, smoke_cycles, challenge);
            }
            let report = sim.attest(challenge);
            sim.reboot();
            Frame::ProbeResult {
                device,
                healthy: 2,
                report,
            }
        }
    }
}

/// Spawns `agents` device-agent threads over the fleet's devices
/// (partitioned evenly), waits until every attach is acknowledged, runs
/// the operator closure `f` (typically driving a [`RemoteOps`] against
/// the same gateway), then stops and joins the agents.
///
/// # Errors
///
/// The first hard agent failure (anything but an orderly close)
/// replaces the closure's result.
pub fn with_attached_fleet<R, F>(
    fleet: &mut Fleet,
    agents: usize,
    addr: SocketAddr,
    f: F,
) -> Result<R, NetError>
where
    F: FnOnce() -> R,
{
    let scheme = fleet.scheme();
    let devices = fleet.devices_mut();
    let total = devices.len();
    let agents = agents.clamp(1, total.max(1));
    let chunk = total.div_ceil(agents);
    let stop = AtomicBool::new(false);
    let (ready_tx, ready_rx) = mpsc::channel();

    std::thread::scope(|scope| {
        let handles: Vec<_> = devices
            .chunks_mut(chunk)
            .map(|batch| {
                let ready_tx = ready_tx.clone();
                let stop = &stop;
                scope.spawn(move || -> Result<(), NetError> {
                    // Short receive timeout: `serve` polls the stop flag
                    // between frames.
                    let transport =
                        TcpTransport::connect_with_timeout(addr, Duration::from_millis(100))?;
                    let mut agent = DeviceAgent::connect(transport, scheme)?;
                    agent.attach(batch)?;
                    let _ = ready_tx.send(());
                    agent.serve(batch, stop)
                })
            })
            .collect();
        drop(ready_tx);

        // Wait for every attach to land before the operator acts, so a
        // campaign begun in `f` sees the full cohort membership. A dead
        // agent breaks the wait; its error surfaces at join below.
        let mut ready = 0usize;
        while ready < handles.len() {
            match ready_rx.recv_timeout(Duration::from_secs(30)) {
                Ok(()) => ready += 1,
                Err(_) => break,
            }
        }

        let output = f();
        stop.store(true, Ordering::Relaxed);

        let mut agent_error: Option<NetError> = None;
        for handle in handles {
            if let Err(err) = handle.join().expect("device agent thread panicked") {
                if !matches!(err, NetError::Closed) {
                    agent_error.get_or_insert(err);
                }
            }
        }
        match agent_error {
            Some(err) => Err(err),
            None => Ok(output),
        }
    })
}
