//! Deterministic device → gateway placement for a multi-gateway
//! cluster.
//!
//! Placement composes with the fleet's fixed sharding discipline
//! instead of replacing it: a device's *shard* is `id % SHARD_COUNT`
//! forever (the invariant every per-shard key cache in the workspace
//! keys on), and placement assigns whole **shards** to gateways via
//! rendezvous (highest-random-weight) hashing. Two consequences:
//!
//! * Every device of a shard lands on the same gateway, so a gateway's
//!   verification pool sees the same shard-aligned batches a
//!   single-gateway deployment does, and per-shard key caches are never
//!   split or orphaned.
//! * Growing the cluster from `n` to `n + 1` gateways only moves shards
//!   whose rendezvous winner *is the new gateway* — every shard that
//!   stays keeps its gateway, its cache, and its live sessions. This is
//!   the classic HRW stability property, pinned by a proptest.

use eilid_fleet::{DeviceId, SHARD_COUNT};

/// Deterministic shard → gateway assignment for a cluster of `n`
/// gateways (identified by their index `0..n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    gateways: usize,
}

/// SplitMix64: a tiny, high-quality 64-bit mixer — deterministic across
/// processes (placement must agree between operators, supervisors and
/// test harnesses without any shared state).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Placement {
    /// A placement over `gateways` gateways.
    ///
    /// # Panics
    ///
    /// Panics on an empty cluster — placement over zero gateways is
    /// meaningless.
    pub fn new(gateways: usize) -> Self {
        assert!(gateways > 0, "a cluster needs at least one gateway");
        Placement { gateways }
    }

    /// Gateways in this placement.
    pub fn gateways(&self) -> usize {
        self.gateways
    }

    /// The gateway owning `shard`: the rendezvous winner — the gateway
    /// whose `(gateway, shard)` hash is highest. Ties cannot occur in
    /// practice (distinct inputs to a 64-bit mixer); the lower index
    /// wins if one ever did.
    pub fn gateway_of_shard(&self, shard: usize) -> usize {
        (0..self.gateways)
            .max_by_key(|&gateway| {
                (
                    mix64((gateway as u64) << 32 | shard as u64),
                    usize::MAX - gateway,
                )
            })
            .expect("at least one gateway")
    }

    /// The gateway serving `device`, through its fixed shard.
    pub fn gateway_of(&self, device: DeviceId) -> usize {
        self.gateway_of_shard((device % SHARD_COUNT as u64) as usize)
    }

    /// The shards each gateway owns: `result[g]` lists gateway `g`'s
    /// shards in order. Every shard appears exactly once across the
    /// cluster.
    pub fn shards_by_gateway(&self) -> Vec<Vec<usize>> {
        let mut owned = vec![Vec::new(); self.gateways];
        for shard in 0..SHARD_COUNT {
            owned[self.gateway_of_shard(shard)].push(shard);
        }
        owned
    }

    /// Partitions `devices` by owning gateway: `result[g]` holds
    /// gateway `g`'s devices in input order.
    pub fn partition(&self, devices: impl IntoIterator<Item = DeviceId>) -> Vec<Vec<DeviceId>> {
        let mut parts = vec![Vec::new(); self.gateways];
        for device in devices {
            parts[self.gateway_of(device)].push(device);
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shard_has_exactly_one_owner() {
        for gateways in 1..=8 {
            let placement = Placement::new(gateways);
            let owned = placement.shards_by_gateway();
            let total: usize = owned.iter().map(Vec::len).sum();
            assert_eq!(total, SHARD_COUNT);
            for shards in &owned {
                for &shard in shards {
                    assert_eq!(
                        placement.gateway_of_shard(shard),
                        owned.iter().position(|s| s.contains(&shard)).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn devices_of_a_shard_colocate() {
        let placement = Placement::new(4);
        for device in 0u64..256 {
            let twin = device + SHARD_COUNT as u64;
            assert_eq!(placement.gateway_of(device), placement.gateway_of(twin));
        }
    }

    #[test]
    fn single_gateway_owns_everything() {
        let placement = Placement::new(1);
        for shard in 0..SHARD_COUNT {
            assert_eq!(placement.gateway_of_shard(shard), 0);
        }
    }
}
