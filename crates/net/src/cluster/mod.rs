//! Multi-gateway scale-out: placement, fan-out operations and a
//! supervising control plane.
//!
//! One gateway tops out at one process's worth of verification
//! throughput. This module turns N gateway processes into one logical
//! deployment without touching the wire protocol's device or operator
//! planes — scale-out is composed *around* the existing pieces:
//!
//! * [`Placement`] — deterministic shard → gateway assignment
//!   (rendezvous hashing over the fleet's fixed `id % SHARD_COUNT`
//!   shards), shared by agents, operators and supervisors with no
//!   coordination state.
//! * [`ClusterOps`] — a third [`eilid_fleet::FleetOps`] backend: every
//!   operator verb fans out across one [`crate::RemoteOps`] console
//!   per gateway and the partial results merge back into the
//!   single-gateway shapes (`SweepSummary`, `CampaignReport`, …).
//!   Campaigns checkpoint at every wave boundary, so a gateway crash
//!   resumes from retained [`eilid_fleet::PausedCampaign`] bytes.
//! * [`Supervisor`] — the control plane over gateway *processes*:
//!   launch, health-check (`OpHealth` + reactor counters), restart on
//!   crash, drain (`OpDrain`) for planned maintenance.
//! * [`with_placed_fleet`] — the agent harness: partitions a fleet by
//!   placement, attaches each partition to its gateway, and keeps
//!   re-attaching through gateway restarts.

pub mod ops;
pub mod placement;
pub mod supervisor;

pub use ops::{with_placed_fleet, ClusterOps};
pub use placement::Placement;
pub use supervisor::{GatewayLauncher, Supervisor};
