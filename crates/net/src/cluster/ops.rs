//! [`ClusterOps`] — the fan-out [`FleetOps`] backend — plus
//! [`with_placed_fleet`], the placement-aware agent harness.
//!
//! A cluster campaign is N independent gateway campaigns over disjoint
//! placement partitions of one fleet, driven in lockstep from a single
//! operator surface. `ClusterOps` fans every operator verb out across
//! one [`RemoteOps`] console per gateway (scoped threads — one slow
//! gateway does not serialise the others), then folds the partial
//! results through the fleet crate's merge helpers
//! ([`merge_sweeps`], [`merge_reports`], [`merge_phases`],
//! [`merge_health`]) so the caller sees exactly the shape a
//! single-gateway deployment produces.
//!
//! **Failover.** After every wave (and right after begin), each
//! console checkpoints its gateway's campaign with the one-round-trip
//! `OpCheckpoint` verb: the gateway snapshots the *running* run into
//! its retained slot without pausing it, and — unless the console asks
//! for durable checkpoints — no [`PausedCampaign`] bytes cross the
//! wire at all; they are fetched only on actual failover. When a
//! gateway goes away mid-campaign, [`ClusterOps::reconnect`] repairs
//! state in layers: a connection blip finds the run still loaded
//! (nothing to do); a restarted process that kept its retained record
//! resumes in place; a fresh process is re-seeded from the
//! console-held bytes (durable mode — see
//! [`ClusterOps::set_durable_checkpoints`]). Stepping then continues
//! from the wave boundary — a resume, not a redo. Wave replay is
//! idempotent: update nonces resume from the device-reported last
//! nonce, so devices that already applied the wave's patch simply
//! accept it again.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use eilid_casu::SoftwareProvider;
use eilid_fleet::{
    merge_agg_sweeps, merge_health, merge_phases, merge_reports, merge_sweeps, AggSweepSummary,
    CampaignConfig, CampaignPhase, CampaignReport, CampaignStatus, Fleet, FleetOps, OpsError,
    OpsHealth, PausedCampaign, SimDevice, SweepSummary,
};
use eilid_workloads::WorkloadId;

use super::placement::Placement;
use crate::error::NetError;
use crate::ops::{DeviceAgent, RemoteOps, DEFAULT_OP_TIMEOUT};
use crate::transport::TcpTransport;

/// How long a placed agent waits between reconnect attempts while its
/// gateway is down (crash-to-restart windows are measured in hundreds
/// of milliseconds, so a short beat keeps failover snappy without
/// hammering a dead address).
const AGENT_RECONNECT_BACKOFF: Duration = Duration::from_millis(50);

/// Magic tag of the cluster-level paused-campaign record
/// ([`FleetOps::campaign_pause`] on a cluster returns one blob holding
/// every gateway's record, index-aligned with the cluster's placement).
const CLUSTER_PAUSE_MAGIC: &[u8; 4] = b"ECL1";

/// Per-gateway flag bytes inside the cluster pause blob.
const PAUSE_NONE: u8 = 0;
const PAUSE_RECORD: u8 = 1;
const PAUSE_FINISHED: u8 = 2;

/// The cluster [`FleetOps`] backend: one operator surface fanning out
/// over N gateway consoles and merging their answers wave-aligned.
///
/// Construction pins the gateway order; placement
/// ([`ClusterOps::placement`]) and the pause blob are index-aligned
/// with it, so reconnections and resumes must target the same address
/// list in the same order.
#[derive(Debug)]
pub struct ClusterOps {
    addrs: Vec<SocketAddr>,
    consoles: Vec<RemoteOps<TcpTransport>>,
    /// Gateways hosting members of the active campaign's cohort (a
    /// gateway whose placement partition holds none refuses the begin
    /// with `unknown cohort` and sits the campaign out).
    participating: Vec<bool>,
    /// Gateways whose campaign run has finished (stepping skips them;
    /// the cluster is done when every participant is).
    finished: Vec<bool>,
    /// Latest per-gateway wave-boundary checkpoint: the
    /// [`PausedCampaign`] bytes replayed into a restarted gateway by
    /// [`ClusterOps::reconnect`]. Populated only in durable mode; the
    /// default keeps the record gateway-retained and off the wire.
    checkpoints: Vec<Option<Vec<u8>>>,
    /// When true, every wave-boundary checkpoint also fetches the
    /// serialised record so a gateway *process* death is recoverable;
    /// the default trusts the gateway-retained slot (connection blips,
    /// drains) and skips the byte shuttle.
    durable_checkpoints: bool,
    cohort: Option<WorkloadId>,
    op_timeout: Duration,
    /// Fleet root key bytes forwarded to every console (current and
    /// reconnected) so aggregated sweeps verify gateway aggregate
    /// proofs cluster-wide.
    agg_root: Option<Vec<u8>>,
    /// Operator-side telemetry: fan-out latency across the cluster's
    /// consoles, one sample per fanned-out verb.
    obs: eilid_obs::MetricsRegistry,
    fan_out_us: eilid_obs::Histogram,
}

/// Concurrent fan-out over the selected consoles: spawns one scoped
/// thread per selected gateway and returns the per-gateway results
/// (`None` for unselected gateways), index-aligned.
fn fan_out<R, F>(
    consoles: &mut [RemoteOps<TcpTransport>],
    select: impl Fn(usize) -> bool,
    f: F,
) -> Vec<Option<Result<R, OpsError>>>
where
    R: Send,
    F: Fn(usize, &mut RemoteOps<TcpTransport>) -> Result<R, OpsError> + Sync,
{
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = consoles
            .iter_mut()
            .enumerate()
            .map(|(gateway, console)| {
                select(gateway).then(|| scope.spawn(move || f(gateway, console)))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.map(|h| h.join().expect("cluster fan-out thread panicked")))
            .collect()
    })
}

/// Prefixes backend errors with the gateway index so a fan-out failure
/// names its gateway; typed errors pass through (callers match on
/// them).
fn at_gateway(gateway: usize, err: OpsError) -> OpsError {
    match err {
        OpsError::Backend(msg) => OpsError::Backend(format!("gateway {gateway}: {msg}")),
        err => err,
    }
}

/// A begin refused because the gateway hosts no members of the cohort —
/// the gateway sits the campaign out rather than failing it. The match
/// is on the pinned protocol string rendered by the gateway's
/// `ErrorCode::UnknownCohort`.
fn is_unknown_cohort(err: &OpsError) -> bool {
    matches!(err, OpsError::Backend(msg) if msg.contains("unknown cohort"))
}

impl ClusterOps {
    /// Connects one operator console per gateway address. The address
    /// order defines gateway indices for placement, checkpoints and
    /// the pause blob.
    ///
    /// # Errors
    ///
    /// The first connection or negotiation failure as [`NetError`].
    pub fn connect(addrs: &[SocketAddr]) -> Result<Self, NetError> {
        assert!(!addrs.is_empty(), "a cluster needs at least one gateway");
        let consoles = addrs
            .iter()
            .map(|&addr| RemoteOps::connect(addr))
            .collect::<Result<Vec<_>, _>>()?;
        let n = addrs.len();
        let obs = eilid_obs::MetricsRegistry::new();
        let fan_out_us = obs.histogram("eilid_cluster_fan_out_us");
        Ok(ClusterOps {
            addrs: addrs.to_vec(),
            consoles,
            participating: vec![false; n],
            finished: vec![false; n],
            checkpoints: vec![None; n],
            durable_checkpoints: false,
            cohort: None,
            op_timeout: DEFAULT_OP_TIMEOUT,
            agg_root: None,
            obs,
            fan_out_us,
        })
    }

    /// Gateways in this cluster.
    pub fn gateways(&self) -> usize {
        self.addrs.len()
    }

    /// The shard → gateway placement this cluster serves (device
    /// agents must partition the fleet with the same placement — see
    /// [`with_placed_fleet`]).
    pub fn placement(&self) -> Placement {
        Placement::new(self.addrs.len())
    }

    /// Opts wave-boundary checkpoints into durable mode: the
    /// serialised record rides back in every checkpoint ack and is
    /// kept console-side, so [`ClusterOps::reconnect`] can re-seed a
    /// gateway whose *process* died (SIGKILL, OOM) — not just one
    /// whose connection dropped. Costs one record payload per gateway
    /// per wave; leave off when a supervisor only restarts gateways
    /// that drain cleanly.
    pub fn set_durable_checkpoints(&mut self, durable: bool) {
        self.durable_checkpoints = durable;
    }

    /// Overrides the per-command reply deadline on every console
    /// (current and future reconnections).
    pub fn set_op_timeout(&mut self, timeout: Duration) {
        self.op_timeout = timeout;
        for console in &mut self.consoles {
            console.set_op_timeout(timeout);
        }
    }

    /// Provisions the fleet root key on every console (current and
    /// future reconnections) so aggregated sweeps can verify each
    /// gateway's aggregate-root MACs.
    pub fn set_agg_root_key(&mut self, key: &[u8]) {
        self.agg_root = Some(key.to_vec());
        for console in &mut self.consoles {
            console.set_agg_root_key(key);
        }
    }

    /// Re-establishes the console to `gateway` after a crash/restart
    /// and repairs campaign state in layers, cheapest first: a gateway
    /// that never lost its run (connection blip) answers the in-place
    /// resume with [`OpsError::CampaignActive`] and keeps stepping; a
    /// restarted-but-retaining gateway resumes from its own retained
    /// checkpoint; only a fresh process with nothing retained is
    /// re-seeded from the console-held bytes (populated in durable
    /// mode) via [`FleetOps::campaign_resume`].
    ///
    /// # Errors
    ///
    /// Connection failures and resume refusals as [`OpsError`].
    pub fn reconnect(&mut self, gateway: usize) -> Result<(), OpsError> {
        let mut console = RemoteOps::connect(self.addrs[gateway])
            .map_err(|err| OpsError::Backend(format!("gateway {gateway}: {err}")))?;
        console.set_op_timeout(self.op_timeout);
        if let Some(key) = &self.agg_root {
            console.set_agg_root_key(key);
        }
        if let Some(cohort) = self.cohort {
            console.adopt(cohort);
        }
        if self.participating[gateway] && !self.finished[gateway] {
            match console.resume_retained() {
                // In-place resume from the gateway-retained record, or
                // the run was never lost at all.
                Ok(()) | Err(OpsError::CampaignActive) => {}
                // A fresh process retains nothing: replay the
                // console-held durable checkpoint, when there is one.
                Err(OpsError::NoCampaign) => {
                    if let Some(bytes) = self.checkpoints[gateway].clone() {
                        match console.campaign_resume(&bytes) {
                            Ok(()) | Err(OpsError::CampaignActive) => {}
                            Err(err) => return Err(at_gateway(gateway, err)),
                        }
                    }
                }
                Err(err) => return Err(at_gateway(gateway, err)),
            }
        }
        self.consoles[gateway] = console;
        Ok(())
    }

    /// The latest wave-boundary checkpoint retained for `gateway`
    /// (`None` for non-participants, gateways that finished, or before
    /// the first checkpoint lands).
    pub fn checkpoint(&self, gateway: usize) -> Option<&[u8]> {
        self.checkpoints[gateway].as_deref()
    }

    /// Scrapes every gateway's telemetry registry concurrently.
    /// Returns the merged cluster view plus the per-gateway snapshots,
    /// index-aligned with the address list. Counter totals in the
    /// merged view are the exact sums of the per-gateway values, and
    /// the merge is order-invariant (see the cluster proptests).
    ///
    /// # Errors
    ///
    /// The first per-gateway scrape failure, named by gateway index.
    pub fn metrics(
        &mut self,
    ) -> Result<
        (
            eilid_obs::RegistrySnapshot,
            Vec<eilid_obs::RegistrySnapshot>,
        ),
        OpsError,
    > {
        let started = Instant::now();
        let results = fan_out(&mut self.consoles, |_| true, |_, console| console.metrics());
        self.fan_out_us.record_duration_us(started.elapsed());
        let mut parts = Vec::with_capacity(results.len());
        for (gateway, result) in results.into_iter().enumerate() {
            parts.push(
                result
                    .expect("all selected")
                    .map_err(|e| at_gateway(gateway, e))?,
            );
        }
        let mut merged = eilid_obs::RegistrySnapshot::empty();
        for part in &parts {
            merged.merge(part);
        }
        Ok((merged, parts))
    }

    /// The operator-side telemetry this cluster console records
    /// locally (fan-out latency) — *not* the gateways' registries;
    /// those come from [`ClusterOps::metrics`].
    pub fn local_metrics(&self) -> eilid_obs::RegistrySnapshot {
        self.obs.snapshot()
    }

    /// Checkpoints one console in a single round trip: the gateway
    /// snapshots its *running* campaign into the retained slot without
    /// pausing it. In durable mode the serialised record rides back in
    /// the ack and is kept console-side; otherwise no `EPC2` bytes
    /// cross the wire at all — they are fetched only on actual
    /// failover.
    fn checkpoint_console(
        console: &mut RemoteOps<TcpTransport>,
        durable: bool,
    ) -> Result<Option<Vec<u8>>, OpsError> {
        let (_state, bytes) = console.campaign_checkpoint(durable)?;
        Ok((!bytes.is_empty()).then_some(bytes))
    }
}

impl FleetOps for ClusterOps {
    fn sweep(&mut self) -> Result<SweepSummary, OpsError> {
        let started = Instant::now();
        let results = fan_out(&mut self.consoles, |_| true, |_, console| console.sweep());
        self.fan_out_us.record_duration_us(started.elapsed());
        let mut parts = Vec::with_capacity(results.len());
        for (gateway, result) in results.into_iter().enumerate() {
            parts.push(
                result
                    .expect("all selected")
                    .map_err(|e| at_gateway(gateway, e))?,
            );
        }
        Ok(merge_sweeps(&parts))
    }

    fn sweep_aggregated(&mut self) -> Result<AggSweepSummary, OpsError> {
        let started = Instant::now();
        let results = fan_out(
            &mut self.consoles,
            |_| true,
            |_, console| console.sweep_aggregated(),
        );
        self.fan_out_us.record_duration_us(started.elapsed());
        let mut parts = Vec::with_capacity(results.len());
        for (gateway, result) in results.into_iter().enumerate() {
            parts.push(
                result
                    .expect("all selected")
                    .map_err(|e| at_gateway(gateway, e))?,
            );
        }
        // Each console verified its own gateway's aggregate MACs; the
        // cluster merge folds the per-gateway shard roots (in pinned
        // gateway order) into one fleet root — O(gateways) operator
        // verifications total, summed in `roots_verified`.
        Ok(merge_agg_sweeps(&SoftwareProvider, &parts))
    }

    fn campaign_begin(&mut self, config: &CampaignConfig) -> Result<(), OpsError> {
        let durable = self.durable_checkpoints;
        let results = fan_out(
            &mut self.consoles,
            |_| true,
            |_, console| {
                console.campaign_begin(config)?;
                // Checkpoint immediately: a gateway crash during the very
                // first wave must also be resumable, not restartable-only.
                Self::checkpoint_console(console, durable)
            },
        );
        let mut first_refusal = None;
        for (gateway, result) in results.into_iter().enumerate() {
            match result.expect("all selected") {
                Ok(checkpoint) => {
                    self.participating[gateway] = true;
                    self.finished[gateway] = false;
                    self.checkpoints[gateway] = checkpoint;
                }
                Err(err) if is_unknown_cohort(&err) => {
                    self.participating[gateway] = false;
                    self.finished[gateway] = false;
                    self.checkpoints[gateway] = None;
                    first_refusal.get_or_insert(at_gateway(gateway, err));
                }
                Err(err) => return Err(at_gateway(gateway, err)),
            }
        }
        if !self.participating.iter().any(|&p| p) {
            return Err(first_refusal.unwrap_or(OpsError::NoCampaign));
        }
        self.cohort = Some(config.cohort);
        Ok(())
    }

    fn campaign_step(&mut self) -> Result<CampaignStatus, OpsError> {
        if self.cohort.is_none() {
            return Err(OpsError::NoCampaign);
        }
        let participating = self.participating.clone();
        let finished = self.finished.clone();
        let durable = self.durable_checkpoints;
        let started = Instant::now();
        let results = fan_out(
            &mut self.consoles,
            |gateway| participating[gateway] && !finished[gateway],
            |_, console| {
                let status = console.campaign_step()?;
                let checkpoint = match status {
                    CampaignStatus::InProgress { .. } => {
                        Self::checkpoint_console(console, durable)?
                    }
                    CampaignStatus::Finished => None,
                };
                Ok((status, checkpoint))
            },
        );
        self.fan_out_us.record_duration_us(started.elapsed());
        let mut next_wave: Option<usize> = None;
        for (gateway, result) in results.into_iter().enumerate() {
            let Some(result) = result else { continue };
            let (status, checkpoint) = result.map_err(|e| at_gateway(gateway, e))?;
            match status {
                CampaignStatus::Finished => {
                    self.finished[gateway] = true;
                    self.checkpoints[gateway] = None;
                }
                CampaignStatus::InProgress { next_wave: wave } => {
                    self.checkpoints[gateway] = checkpoint;
                    next_wave = Some(next_wave.map_or(wave, |w| w.min(wave)));
                }
            }
        }
        match next_wave {
            Some(wave) => Ok(CampaignStatus::InProgress { next_wave: wave }),
            None => Ok(CampaignStatus::Finished),
        }
    }

    fn campaign_status(&mut self) -> Result<CampaignPhase, OpsError> {
        if self.cohort.is_none() {
            return Ok(CampaignPhase::Idle);
        }
        let participating = self.participating.clone();
        let results = fan_out(
            &mut self.consoles,
            |gateway| participating[gateway],
            |_, console| console.campaign_status(),
        );
        let mut phases = Vec::new();
        for (gateway, result) in results.into_iter().enumerate() {
            if let Some(result) = result {
                phases.push(result.map_err(|e| at_gateway(gateway, e))?);
            }
        }
        Ok(merge_phases(&phases))
    }

    fn campaign_pause(&mut self) -> Result<Vec<u8>, OpsError> {
        if self.cohort.is_none() {
            return Err(OpsError::NoCampaign);
        }
        let participating = self.participating.clone();
        let finished = self.finished.clone();
        let results = fan_out(
            &mut self.consoles,
            |gateway| participating[gateway] && !finished[gateway],
            |_, console| console.campaign_pause(),
        );
        let mut records: Vec<Option<Vec<u8>>> = Vec::with_capacity(results.len());
        for (gateway, result) in results.into_iter().enumerate() {
            match result {
                Some(result) => records.push(Some(result.map_err(|e| at_gateway(gateway, e))?)),
                None => records.push(None),
            }
        }
        Ok(encode_cluster_pause(
            &records,
            &self.participating,
            &self.finished,
        ))
    }

    fn campaign_resume(&mut self, paused: &[u8]) -> Result<(), OpsError> {
        let records = decode_cluster_pause(paused, self.addrs.len())?;
        // Learn the cohort from the first real record: every per-gateway
        // partition of one cluster campaign shares it.
        let cohort = records
            .iter()
            .find_map(|record| match record {
                PauseRecord::Paused(bytes) => PausedCampaign::from_bytes(bytes)
                    .ok()
                    .map(|paused| paused.cohort()),
                _ => None,
            })
            .ok_or(OpsError::NoCampaign)?;
        let results = fan_out(
            &mut self.consoles,
            |_| true,
            |gateway, console| match &records[gateway] {
                PauseRecord::Paused(bytes) => console.campaign_resume(bytes),
                PauseRecord::Finished => {
                    console.adopt(cohort);
                    Ok(())
                }
                PauseRecord::None => Ok(()),
            },
        );
        for (gateway, result) in results.into_iter().enumerate() {
            result
                .expect("all selected")
                .map_err(|e| at_gateway(gateway, e))?;
            match &records[gateway] {
                PauseRecord::Paused(bytes) => {
                    self.participating[gateway] = true;
                    self.finished[gateway] = false;
                    self.checkpoints[gateway] = Some(bytes.clone());
                }
                PauseRecord::Finished => {
                    self.participating[gateway] = true;
                    self.finished[gateway] = true;
                    self.checkpoints[gateway] = None;
                }
                PauseRecord::None => {
                    self.participating[gateway] = false;
                    self.finished[gateway] = false;
                    self.checkpoints[gateway] = None;
                }
            }
        }
        self.cohort = Some(cohort);
        Ok(())
    }

    fn campaign_report(&mut self) -> Result<CampaignReport, OpsError> {
        if self.cohort.is_none() {
            return Err(OpsError::NoCampaign);
        }
        let participating = self.participating.clone();
        let results = fan_out(
            &mut self.consoles,
            |gateway| participating[gateway],
            |_, console| console.campaign_report(),
        );
        let mut parts = Vec::new();
        for (gateway, result) in results.into_iter().enumerate() {
            if let Some(result) = result {
                parts.push(result.map_err(|e| at_gateway(gateway, e))?);
            }
        }
        merge_reports(&parts).ok_or(OpsError::NoCampaign)
    }

    fn health(&mut self) -> Result<OpsHealth, OpsError> {
        let started = Instant::now();
        let results = fan_out(&mut self.consoles, |_| true, |_, console| console.health());
        self.fan_out_us.record_duration_us(started.elapsed());
        let mut parts = Vec::with_capacity(results.len());
        for (gateway, result) in results.into_iter().enumerate() {
            parts.push(
                result
                    .expect("all selected")
                    .map_err(|e| at_gateway(gateway, e))?,
            );
        }
        Ok(merge_health(&parts))
    }
}

/// One gateway's slot in the cluster pause blob.
enum PauseRecord {
    /// Not a participant of the paused campaign.
    None,
    /// Mid-campaign: the gateway's [`PausedCampaign`] bytes.
    Paused(Vec<u8>),
    /// This gateway's partition already ran to completion.
    Finished,
}

/// Encodes the cluster pause blob: magic, gateway count, then one
/// flagged record per gateway in placement order.
fn encode_cluster_pause(
    records: &[Option<Vec<u8>>],
    participating: &[bool],
    finished: &[bool],
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(CLUSTER_PAUSE_MAGIC);
    out.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for gateway in 0..records.len() {
        match &records[gateway] {
            Some(bytes) => {
                out.push(PAUSE_RECORD);
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(bytes);
            }
            None if participating[gateway] && finished[gateway] => out.push(PAUSE_FINISHED),
            None => out.push(PAUSE_NONE),
        }
    }
    out
}

/// Decodes the cluster pause blob, validating magic, gateway count and
/// record framing.
fn decode_cluster_pause(blob: &[u8], gateways: usize) -> Result<Vec<PauseRecord>, OpsError> {
    let bad = |what: &str| OpsError::Backend(format!("malformed cluster pause record: {what}"));
    if blob.len() < 8 || &blob[..4] != CLUSTER_PAUSE_MAGIC {
        return Err(bad("missing ECL1 magic"));
    }
    let count = u32::from_le_bytes(blob[4..8].try_into().expect("4 bytes")) as usize;
    if count != gateways {
        return Err(OpsError::Backend(format!(
            "cluster pause record covers {count} gateways, cluster has {gateways}"
        )));
    }
    let mut records = Vec::with_capacity(count);
    let mut at = 8usize;
    for _ in 0..count {
        let flag = *blob.get(at).ok_or_else(|| bad("truncated flag"))?;
        at += 1;
        match flag {
            PAUSE_NONE => records.push(PauseRecord::None),
            PAUSE_FINISHED => records.push(PauseRecord::Finished),
            PAUSE_RECORD => {
                let len_bytes = blob
                    .get(at..at + 4)
                    .ok_or_else(|| bad("truncated record length"))?;
                let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
                at += 4;
                let bytes = blob
                    .get(at..at + len)
                    .ok_or_else(|| bad("truncated record bytes"))?;
                at += len;
                records.push(PauseRecord::Paused(bytes.to_vec()));
            }
            _ => return Err(bad("unknown record flag")),
        }
    }
    if at != blob.len() {
        return Err(bad("trailing bytes"));
    }
    Ok(records)
}

/// Spawns placement-partitioned device-agent threads over the fleet —
/// the cluster counterpart of [`crate::with_attached_fleet`]. Devices
/// are bucketed by [`Placement`] over `addrs` (whole shards per
/// gateway), each gateway's bucket is split across
/// `agents_per_gateway` agent connections, and every agent runs a
/// **reconnect loop**: when its gateway crashes or drains, the agent
/// retries connect + attach until the gateway returns (or `f`
/// finishes) — this is what lets a supervisor restart a gateway
/// mid-campaign and have its devices re-attach unattended.
///
/// Unlike the single-gateway harness, agent-side transport errors are
/// absorbed by the reconnect loop rather than surfaced: during
/// failover they are expected, not exceptional.
///
/// # Errors
///
/// Currently none beyond the closure's own result shape; the
/// `Result` wrapper mirrors [`crate::with_attached_fleet`] so call
/// sites compose the same way.
pub fn with_placed_fleet<R, F>(
    fleet: &mut Fleet,
    addrs: &[SocketAddr],
    agents_per_gateway: usize,
    f: F,
) -> Result<R, NetError>
where
    F: FnOnce() -> R,
{
    let placement = Placement::new(addrs.len());
    let scheme = fleet.scheme();
    let mut parts: Vec<Vec<&mut SimDevice>> = (0..addrs.len()).map(|_| Vec::new()).collect();
    for device in fleet.devices_mut().iter_mut() {
        let gateway = placement.gateway_of(device.id());
        parts[gateway].push(device);
    }

    let stop = AtomicBool::new(false);
    let (ready_tx, ready_rx) = mpsc::channel();

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (gateway, part) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let addr = addrs[gateway];
            let agents = agents_per_gateway.clamp(1, part.len());
            let chunk = part.len().div_ceil(agents);
            let mut devices = part.into_iter();
            loop {
                let batch: Vec<&mut SimDevice> = devices.by_ref().take(chunk).collect();
                if batch.is_empty() {
                    break;
                }
                let ready_tx = ready_tx.clone();
                let stop = &stop;
                handles.push(scope.spawn(move || {
                    let mut batch = batch;
                    let mut announced = false;
                    loop {
                        let served = (|| -> Result<(), NetError> {
                            let transport = TcpTransport::connect_with_timeout(
                                addr,
                                Duration::from_millis(100),
                            )?;
                            let mut agent = DeviceAgent::connect(transport, scheme)?;
                            agent.attach(&batch)?;
                            if !announced {
                                announced = true;
                                let _ = ready_tx.send(());
                            }
                            agent.serve(&mut batch, stop)
                        })();
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        // An orderly close or a transport error both
                        // mean the gateway went away (drain, restart,
                        // crash): wait a beat and re-attach.
                        let _ = served;
                        std::thread::sleep(AGENT_RECONNECT_BACKOFF);
                    }
                }));
            }
        }
        drop(ready_tx);

        // Gate on every agent's first successful attach, so a campaign
        // begun in `f` sees full membership on every gateway.
        let mut ready = 0usize;
        while ready < handles.len() {
            match ready_rx.recv_timeout(Duration::from_secs(30)) {
                Ok(()) => ready += 1,
                Err(_) => break,
            }
        }

        let output = f();
        stop.store(true, Ordering::Relaxed);
        for handle in handles {
            handle.join().expect("placed agent thread panicked");
        }
        Ok(output)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_pause_blob_round_trips() {
        let records = vec![Some(vec![1u8, 2, 3]), None, None, Some(Vec::new())];
        let participating = vec![true, false, true, true];
        let finished = vec![false, false, true, false];
        let blob = encode_cluster_pause(&records, &participating, &finished);
        let decoded = decode_cluster_pause(&blob, 4).expect("round trip");
        assert!(matches!(&decoded[0], PauseRecord::Paused(b) if b == &[1, 2, 3]));
        assert!(matches!(decoded[1], PauseRecord::None));
        assert!(matches!(decoded[2], PauseRecord::Finished));
        assert!(matches!(&decoded[3], PauseRecord::Paused(b) if b.is_empty()));
    }

    #[test]
    fn cluster_pause_blob_rejects_malformed() {
        assert!(decode_cluster_pause(b"nope", 1).is_err());
        assert!(decode_cluster_pause(b"ECL1\x02\x00\x00\x00\x00\x00", 1).is_err());
        let records = vec![None];
        let blob = encode_cluster_pause(&records, &[false], &[false]);
        assert!(decode_cluster_pause(&blob, 1).is_ok());
        let mut trailing = blob.clone();
        trailing.push(0);
        assert!(decode_cluster_pause(&trailing, 1).is_err());
        let mut bad_flag = blob;
        *bad_flag.last_mut().unwrap() = 9;
        assert!(decode_cluster_pause(&bad_flag, 1).is_err());
    }
}
