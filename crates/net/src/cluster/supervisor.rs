//! [`Supervisor`] — the cluster's control plane: it owns the gateway
//! *processes*, where [`super::ClusterOps`] owns the gateway
//! *conversations*.
//!
//! The supervisor launches one OS process per gateway (via a
//! caller-supplied launcher, so the CLI, tests and deployments each
//! decide what a "gateway process" is), health-checks them over the
//! operator plane (`OpHealth`, which since protocol version 4 carries
//! the reactor counters), restarts crashed ones on their fixed
//! address, and drains live ones for planned maintenance
//! (`OpDrain` → the gateway stops accepting, pauses its campaigns and
//! hands the [`PausedCampaign`][eilid_fleet::PausedCampaign] records
//! back).
//!
//! Restart-on-same-address is the contract the rest of the cluster
//! leans on: placed device agents reconnect to the address they were
//! given, and [`super::ClusterOps::reconnect`] replays its retained
//! wave checkpoint into the fresh process — so a mid-campaign crash
//! costs one replayed wave, never a redo.

use std::io;
use std::net::SocketAddr;
use std::process::Child;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eilid_fleet::{FleetOps, OpsError, OpsHealth};
use eilid_obs::TraceRing;
use eilid_workloads::WorkloadId;

use crate::metrics::{TRACE_CAT_CLUSTER, TRACE_CLUSTER_DRAIN, TRACE_CLUSTER_RESTART};
use crate::ops::RemoteOps;

/// Builds a gateway process for a gateway index. The child must bind
/// its gateway on the supervisor's address for that index and serve
/// until killed.
pub type GatewayLauncher = Box<dyn FnMut(usize) -> io::Result<Child> + Send>;

/// One supervised gateway slot.
#[derive(Debug)]
struct Slot {
    child: Option<Child>,
    launched: bool,
    restarts: usize,
}

/// Spawns, health-checks, restarts and drains a fixed-address fleet of
/// gateway processes.
pub struct Supervisor {
    addrs: Vec<SocketAddr>,
    launcher: GatewayLauncher,
    slots: Vec<Slot>,
    /// Reply deadline for supervision probes — deliberately much
    /// shorter than an operator's campaign-step deadline: a health
    /// probe that takes seconds *is* the failure signal.
    probe_timeout: Duration,
    /// Optional event sink: restart and drain events recorded here
    /// (category [`TRACE_CAT_CLUSTER`]) when attached via
    /// [`Supervisor::set_trace`].
    trace: Option<Arc<TraceRing>>,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("addrs", &self.addrs)
            .field("slots", &self.slots)
            .field("probe_timeout", &self.probe_timeout)
            .finish_non_exhaustive()
    }
}

impl Supervisor {
    /// A supervisor over `addrs.len()` gateway slots; nothing is
    /// launched until [`Supervisor::start_all`] or
    /// [`Supervisor::start`].
    pub fn new(addrs: Vec<SocketAddr>, launcher: GatewayLauncher) -> Self {
        let slots = addrs
            .iter()
            .map(|_| Slot {
                child: None,
                launched: false,
                restarts: 0,
            })
            .collect();
        Supervisor {
            addrs,
            launcher,
            slots,
            probe_timeout: Duration::from_secs(5),
            trace: None,
        }
    }

    /// Attaches an event trace ring: every restart and drain from here
    /// on is recorded under [`TRACE_CAT_CLUSTER`].
    pub fn set_trace(&mut self, trace: Arc<TraceRing>) {
        self.trace = Some(trace);
    }

    /// The fixed gateway addresses, index-aligned with
    /// [`super::ClusterOps`] and [`super::Placement`].
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// How many times `gateway` has been (re)started beyond its first
    /// launch.
    pub fn restarts(&self, gateway: usize) -> usize {
        self.slots[gateway].restarts
    }

    /// Overrides the health-probe reply deadline.
    pub fn set_probe_timeout(&mut self, timeout: Duration) {
        self.probe_timeout = timeout;
    }

    /// Launches `gateway`'s process (counting a restart if the slot ran
    /// before) and waits until it accepts operator connections.
    ///
    /// # Errors
    ///
    /// Launch failures, and [`io::ErrorKind::TimedOut`] when the
    /// process never became ready.
    pub fn start(&mut self, gateway: usize, ready_timeout: Duration) -> io::Result<()> {
        if self.slots[gateway].child.is_some() {
            self.stop(gateway);
        }
        let child = (self.launcher)(gateway)?;
        let slot = &mut self.slots[gateway];
        if slot.launched {
            slot.restarts += 1;
        }
        slot.launched = true;
        slot.child = Some(child);
        self.wait_ready(gateway, ready_timeout)
    }

    /// Launches every gateway and waits until all accept operator
    /// connections.
    ///
    /// # Errors
    ///
    /// The first launch or readiness failure.
    pub fn start_all(&mut self, ready_timeout: Duration) -> io::Result<()> {
        for gateway in 0..self.addrs.len() {
            let child = (self.launcher)(gateway)?;
            let slot = &mut self.slots[gateway];
            slot.launched = true;
            slot.child = Some(child);
        }
        for gateway in 0..self.addrs.len() {
            self.wait_ready(gateway, ready_timeout)?;
        }
        Ok(())
    }

    /// Polls `gateway` until an operator console connects and
    /// negotiates, i.e. the process is up and serving.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::TimedOut`] when the deadline passes first.
    pub fn wait_ready(&self, gateway: usize, timeout: Duration) -> io::Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            match RemoteOps::connect(self.addrs[gateway]) {
                Ok(console) => {
                    let _ = console.bye();
                    return Ok(());
                }
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(err) => {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("gateway {gateway} not ready: {err}"),
                    ));
                }
            }
        }
    }

    /// One health probe over the operator plane: connect, `OpHealth`,
    /// goodbye.
    ///
    /// # Errors
    ///
    /// Connection and probe failures as [`OpsError`] — for the
    /// supervisor these *are* the crash signal, not exceptional.
    pub fn probe(&self, gateway: usize) -> Result<OpsHealth, OpsError> {
        let mut console = RemoteOps::connect(self.addrs[gateway])
            .map_err(|err| OpsError::Backend(format!("gateway {gateway}: {err}")))?;
        console.set_op_timeout(self.probe_timeout);
        let health = console.health()?;
        let _ = console.bye();
        Ok(health)
    }

    /// Kills and relaunches `gateway`, waiting for readiness.
    ///
    /// # Errors
    ///
    /// Launch and readiness failures.
    pub fn restart(&mut self, gateway: usize, ready_timeout: Duration) -> io::Result<()> {
        self.stop(gateway);
        let child = (self.launcher)(gateway)?;
        let slot = &mut self.slots[gateway];
        slot.child = Some(child);
        slot.launched = true;
        slot.restarts += 1;
        let restarts = slot.restarts as u64;
        if let Some(trace) = &self.trace {
            trace.record(
                TRACE_CAT_CLUSTER,
                TRACE_CLUSTER_RESTART,
                gateway as u64,
                restarts,
            );
        }
        self.wait_ready(gateway, ready_timeout)
    }

    /// One supervision pass: every gateway whose process exited or
    /// whose health probe fails is restarted. Returns the restarted
    /// gateway indices — the operator's cue to call
    /// [`super::ClusterOps::reconnect`] for each.
    ///
    /// # Errors
    ///
    /// Relaunch failures (a failed *probe* triggers a restart; it does
    /// not error the pass).
    pub fn check_and_restart(&mut self, ready_timeout: Duration) -> io::Result<Vec<usize>> {
        let mut restarted = Vec::new();
        for gateway in 0..self.addrs.len() {
            let exited = match &mut self.slots[gateway].child {
                Some(child) => child.try_wait()?.is_some(),
                None => true,
            };
            let dead = exited || self.probe(gateway).is_err();
            if dead {
                self.restart(gateway, ready_timeout)?;
                restarted.push(gateway);
            }
        }
        Ok(restarted)
    }

    /// Drains `gateway` for planned maintenance: the gateway stops
    /// accepting connections, pauses every live campaign and hands the
    /// paused records back. The process keeps running (serving its
    /// remaining sessions) until [`Supervisor::stop`].
    ///
    /// # Errors
    ///
    /// Connection and drain failures as [`OpsError`].
    pub fn drain(&self, gateway: usize) -> Result<Vec<(WorkloadId, Vec<u8>)>, OpsError> {
        let mut console = RemoteOps::connect(self.addrs[gateway])
            .map_err(|err| OpsError::Backend(format!("gateway {gateway}: {err}")))?;
        console.set_op_timeout(self.probe_timeout.max(Duration::from_secs(30)));
        let paused = console.drain()?;
        let _ = console.bye();
        if let Some(trace) = &self.trace {
            trace.record(
                TRACE_CAT_CLUSTER,
                TRACE_CLUSTER_DRAIN,
                gateway as u64,
                paused.len() as u64,
            );
        }
        Ok(paused)
    }

    /// Kills `gateway`'s process (no-op when not running).
    pub fn stop(&mut self, gateway: usize) {
        if let Some(mut child) = self.slots[gateway].child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// Kills every gateway process.
    pub fn stop_all(&mut self) {
        for gateway in 0..self.addrs.len() {
            self.stop(gateway);
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.stop_all();
    }
}
