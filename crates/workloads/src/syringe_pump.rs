//! SyringePump — open-source syringe pump stepper controller.
//!
//! Port of the `OpenSyringePump` application used by the paper: drive a
//! stepper motor in wave mode to deliver a programmed dose, while a timer
//! interrupt counts delivered steps in the background. Exercises P2
//! (return-from-interrupt integrity) in addition to P1.

use crate::common::with_standard_header_and_init;

/// Number of motor steps in one dose.
pub const DOSE_STEPS: u16 = 80;

/// Assembly source of the workload.
pub fn source() -> String {
    with_standard_header_and_init(
        "    .global main
    .isr pump_isr, 8
    .equ DOSE_STEPS, 80

main:
    mov #STACK_TOP, sp
    call #init_device
    mov #0x000f, &GPIO_DIR
    clr r9                     ; timer ticks observed
    clr r10                    ; motor phase
    mov #350, &TIMER_CMP
    mov #0x0003, &TIMER_CTL    ; enable timer + interrupt
    eint
    mov #DOSE_STEPS, r8
pump_loop:
    call #step_motor
    mov #1100, r14
    call #delay
    dec r8
    jnz pump_loop
    dint
    mov r9, &SIM_OUT
    mov #0, &SIM_EXIT
    mov #DONE, &SIM_CTL
pump_hang:
    jmp pump_hang

; Advance the stepper one phase (wave drive on GPIO bits 0-3).
step_motor:
attack_point:
    inc r10
    and #3, r10
    mov #1, r15
    mov r10, r13
step_shift:
    tst r13
    jz step_apply
    add r15, r15
    dec r13
    jmp step_shift
step_apply:
    mov r15, &GPIO_OUT
    ret

; Inter-step delay controlling the delivery rate.
delay:
delay_loop:
    dec r14
    jnz delay_loop
    ret

; Timer tick: acknowledge the interrupt and count it.
pump_isr:
isr_attack_point:
    push r12
    mov &TIMER_CTL, r12
    bis #4, r12
    mov r12, &TIMER_CTL
    inc r9
    pop r12
    reti
",
        20,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use eilid::{DeviceBuilder, RunOutcome};

    #[test]
    fn assembles_and_completes_with_timer_interrupts() {
        let mut device = DeviceBuilder::new().build_baseline(&source()).unwrap();
        match device.run_for(3_000_000) {
            RunOutcome::Completed { output, .. } => {
                assert_eq!(output.len(), 1);
                assert!(output[0] > 10, "timer ISR should have fired many times");
            }
            other => panic!("unexpected outcome: {other}"),
        }
    }

    #[test]
    fn eilid_device_survives_interrupts_and_matches_tick_order() {
        let builder = DeviceBuilder::new();
        let base = builder
            .build_baseline(&source())
            .unwrap()
            .run_for(3_000_000);
        let mut eilid_device = builder.build_eilid(&source()).unwrap();
        let report = eilid_device.artifacts().unwrap().report.clone();
        assert_eq!(report.isr_entries, 1);
        assert_eq!(report.isr_exits, 1);
        let eilid = eilid_device.run_for(6_000_000);
        match (&base, &eilid) {
            (RunOutcome::Completed { .. }, RunOutcome::Completed { output, .. }) => {
                // Tick counts differ slightly (the protected run is longer so
                // more ticks land), but the ISR must have run without
                // tripping the monitor.
                assert!(output[0] > 10);
            }
            other => panic!("unexpected outcomes: {other:?}"),
        }
    }
}
