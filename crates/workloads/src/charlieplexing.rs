//! Charlieplexing — LED matrix animation driven through a function pointer.
//!
//! Port of the `msp430-examples` charlieplexing demo: render animation
//! frames on six charlieplexed LEDs. The current animation is selected
//! through a function pointer kept in data memory and invoked with an
//! indirect call, which makes this the workload that exercises P3
//! (indirect-call integrity).

use crate::common::with_standard_header_and_init;

/// Number of animation frames rendered.
pub const FRAMES: u16 = 150;

/// Data-memory address of the animation function pointer (the target of the
/// indirect-call hijack attack).
pub const PATTERN_PTR_ADDR: u16 = 0x0240;

/// Assembly source of the workload.
pub fn source() -> String {
    with_standard_header_and_init(
        "    .global main
    .equ PATTERN_PTR, 0x0240
    .equ FRAMES, 150

main:
    mov #STACK_TOP, sp
    call #init_device
    mov #0x003f, &GPIO_DIR
    clr r9                      ; frames rendered
    mov #pattern_blink, &PATTERN_PTR
    mov #FRAMES, r8
charlie_loop:
    mov &PATTERN_PTR, r13
    call r13                    ; render the current animation frame
    call #swap_pattern
    mov #1100, r14
    call #delay
    dec r8
    jnz charlie_loop
    mov r9, &SIM_OUT
    mov #0, &SIM_EXIT
    mov #DONE, &SIM_CTL
charlie_hang:
    jmp charlie_hang

; Alternate between the two animations every eight frames.
swap_pattern:
    mov r8, r15
    and #7, r15
    jnz swap_keep
    cmp #pattern_blink, &PATTERN_PTR
    jeq swap_to_chase
    mov #pattern_blink, &PATTERN_PTR
    ret
swap_to_chase:
    mov #pattern_chase, &PATTERN_PTR
    ret
swap_keep:
    ret

; Animation A: blink all six LEDs together.
pattern_blink:
attack_point:
    inc r9
    xor #0x003f, &GPIO_OUT
    ret

; Animation B: walk a single lit LED across the six pins.
pattern_chase:
    inc r9
    mov &GPIO_OUT, r15
    add r15, r15
    and #0x003f, r15
    jnz pattern_chase_apply
    mov #1, r15
pattern_chase_apply:
attack_gadget:
    mov r15, &GPIO_OUT
    ret

; Frame-period delay.
delay:
delay_loop:
    dec r14
    jnz delay_loop
    ret
",
        25,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use eilid::{DeviceBuilder, RunOutcome};

    #[test]
    fn assembles_and_renders_every_frame() {
        let mut device = DeviceBuilder::new().build_baseline(&source()).unwrap();
        match device.run_for(3_000_000) {
            RunOutcome::Completed { output, .. } => {
                assert_eq!(output, vec![FRAMES]);
            }
            other => panic!("unexpected outcome: {other}"),
        }
    }

    #[test]
    fn eilid_registers_both_patterns_and_checks_the_indirect_call() {
        let mut device = DeviceBuilder::new().build_eilid(&source()).unwrap();
        let report = device.artifacts().unwrap().report.clone();
        assert_eq!(report.indirect_calls, 1);
        assert!(
            report.functions_registered >= 2,
            "both patterns must be registered"
        );
        let outcome = device.run_for(6_000_000);
        assert!(
            outcome.is_completed(),
            "legitimate indirect calls must pass: {outcome}"
        );
    }
}
