//! Run-time attack injectors (the paper's threat model, §III-B).
//!
//! The adversary "can arbitrarily access any executable memory location at
//! run-time [and] tamper with any data (e.g., return addresses, function
//! pointers, and indirect function calls) on the stack and heap". The
//! injectors model exactly that: a memory-corruption bug that fires at a
//! known point in the application (`attack_point` / `isr_attack_point`
//! labels in the workload sources) and overwrites control-flow data in
//! DMEM. Each attack maps onto one of EILID's properties:
//!
//! | Attack | Tampered data | Detected by |
//! |---|---|---|
//! | [`CfiAttack::ReturnAddressOverwrite`] | saved return address on the main stack | P1 (`S_EILID_check_ra`) |
//! | [`CfiAttack::IsrContextTamper`] | saved PC of the interrupt context | P2 (`S_EILID_check_rfi`) |
//! | [`CfiAttack::IndirectCallHijack`] | function pointer in DMEM | P3 (`S_EILID_check_ind`) |
//! | [`CfiAttack::CodeInjectionJump`] | return address redirected into injected DMEM code | CASU W⊕X |
//!
//! Two further attacks exercise the CASU substrate itself and are expressed
//! as stand-alone malicious programs: [`pmem_overwrite_source`] and
//! [`dmem_execution_source`].

use std::fmt;

use serde::{Deserialize, Serialize};

use eilid::{Device, RunOutcome};
use eilid_casu::{CfiFault, Violation};

/// Control-flow attacks injected into a running workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CfiAttack {
    /// Overwrite the saved return address on the main stack while a victim
    /// function runs (classic stack smashing / ROP entry).
    ReturnAddressOverwrite,
    /// Overwrite the saved program counter of the interrupt context while
    /// the ISR runs.
    IsrContextTamper,
    /// Overwrite a function pointer in DMEM so a later indirect call lands
    /// on an address that is not a legitimate function entry point.
    IndirectCallHijack,
    /// Inject code into DMEM and redirect the saved return address to it.
    CodeInjectionJump,
}

impl CfiAttack {
    /// All injectable attacks.
    pub const ALL: [CfiAttack; 4] = [
        CfiAttack::ReturnAddressOverwrite,
        CfiAttack::IsrContextTamper,
        CfiAttack::IndirectCallHijack,
        CfiAttack::CodeInjectionJump,
    ];

    /// The fault class an EILID device is expected to report for this
    /// attack (code injection is caught by the W⊕X rule or, earlier, by the
    /// return-address check).
    pub fn expected_fault(self) -> Option<CfiFault> {
        match self {
            CfiAttack::ReturnAddressOverwrite => Some(CfiFault::ReturnAddress),
            CfiAttack::IsrContextTamper => Some(CfiFault::InterruptContext),
            CfiAttack::IndirectCallHijack => Some(CfiFault::IndirectCall),
            CfiAttack::CodeInjectionJump => None,
        }
    }
}

impl fmt::Display for CfiAttack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CfiAttack::ReturnAddressOverwrite => "return-address overwrite",
            CfiAttack::IsrContextTamper => "ISR context tampering",
            CfiAttack::IndirectCallHijack => "indirect-call hijack",
            CfiAttack::CodeInjectionJump => "code injection into DMEM",
        };
        write!(f, "{name}")
    }
}

/// Why an attack could not be injected into a particular workload/device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackError {
    /// The workload image lacks a symbol the attack needs (for example
    /// `isr_attack_point` on an interrupt-free workload).
    MissingSymbol(String),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::MissingSymbol(s) => {
                write!(f, "workload does not expose required symbol `{s}`")
            }
        }
    }
}

impl std::error::Error for AttackError {}

/// Result of injecting an attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackResult {
    /// The attack that was injected.
    pub attack: CfiAttack,
    /// How the run ended.
    pub outcome: RunOutcome,
}

impl AttackResult {
    /// `true` if the device detected the attack (reported any violation).
    pub fn detected(&self) -> bool {
        self.outcome.violation().is_some()
    }

    /// `true` if the detection matches the fault class EILID should report.
    pub fn detected_as_expected(&self) -> bool {
        match (self.attack.expected_fault(), self.outcome.violation()) {
            (Some(expected), Some(Violation::Cfi { fault })) => *fault == expected,
            (None, Some(Violation::ExecutionFromWritableMemory { .. })) => true,
            // A code-injection jump on a fully protected device may be
            // stopped even earlier, by the return-address check.
            (
                None,
                Some(Violation::Cfi {
                    fault: CfiFault::ReturnAddress,
                }),
            ) => true,
            _ => false,
        }
    }
}

fn required_symbol(device: &Device, name: &str) -> Result<u16, AttackError> {
    let symbol = match device.artifacts() {
        // Protected devices carry the instrumented image's symbol table.
        Some(artifacts) => artifacts.instrumented_image.symbol(name),
        // Baseline devices do not; re-derive the symbols from the registry
        // workload whose assembled bytes match what is loaded in memory.
        None => lookup_in_memoryless_image(device, name),
    };
    symbol.ok_or_else(|| AttackError::MissingSymbol(name.to_string()))
}

/// Finds `name` in the registry workload whose assembled image is byte-for-
/// byte identical to the device's loaded program memory, so symbols from an
/// unrelated workload can never leak into an attack.
fn lookup_in_memoryless_image(device: &Device, name: &str) -> Option<u16> {
    crate::app::all().iter().find_map(|w| {
        let image = eilid_asm::assemble(&w.source).ok()?;
        let segment = image.segments.first()?;
        let loaded = device
            .cpu()
            .memory
            .slice(usize::from(segment.base)..usize::from(segment.base) + segment.bytes.len());
        if loaded == segment.bytes.as_slice() {
            image.symbol(name)
        } else {
            None
        }
    })
}

/// Injects `attack` into a device running one of the registry workloads and
/// runs it to completion/violation/timeout.
///
/// Works on both baseline and EILID devices, so callers can contrast
/// "undetected hijack" with "detected and reset".
///
/// # Errors
///
/// Returns [`AttackError::MissingSymbol`] when the workload does not contain
/// the label the attack needs (e.g. ISR tampering on an interrupt-free
/// workload).
pub fn inject(
    device: &mut Device,
    attack: CfiAttack,
    max_cycles: u64,
) -> Result<AttackResult, AttackError> {
    let attack_point = required_symbol(device, "attack_point")?;
    let gadget = required_symbol(device, "main")?;
    let protected = device.is_protected();

    let outcome = match attack {
        CfiAttack::ReturnAddressOverwrite => device.run_with_hook(max_cycles, move |cpu, trace| {
            if trace.pc == attack_point {
                let sp = cpu.regs.sp();
                cpu.memory.write_word(sp, gadget);
            }
        }),
        CfiAttack::IsrContextTamper => {
            let isr_point = required_symbol(device, "isr_attack_point")?;
            // The EILID prologue pushes r4/r6/r7 before the ISR body, so the
            // saved PC sits deeper in the frame on a protected device.
            let saved_pc_offset = if protected { 8 } else { 2 };
            device.run_with_hook(max_cycles, move |cpu, trace| {
                if trace.pc == isr_point {
                    let slot = cpu.regs.sp().wrapping_add(saved_pc_offset);
                    cpu.memory.write_word(slot, gadget);
                }
            })
        }
        CfiAttack::IndirectCallHijack => {
            let pointer = required_symbol(device, "PATTERN_PTR")?;
            let rogue = required_symbol(device, "attack_gadget")?;
            device.run_with_hook(max_cycles, move |cpu, trace| {
                if trace.pc == attack_point {
                    cpu.memory.write_word(pointer, rogue);
                }
            })
        }
        CfiAttack::CodeInjectionJump => {
            let payload_addr = 0x0380u16;
            device.run_with_hook(max_cycles, move |cpu, trace| {
                if trace.pc == attack_point {
                    // Payload: `jmp $` — enough to prove execution moved to DMEM.
                    cpu.memory.write_word(payload_addr, 0x3FFF);
                    let sp = cpu.regs.sp();
                    cpu.memory.write_word(sp, payload_addr);
                }
            })
        }
    };

    Ok(AttackResult { attack, outcome })
}

/// A malicious program that tries to patch its own program memory (e.g. to
/// install a backdoor). CASU's immutability rule must reset the device.
pub fn pmem_overwrite_source() -> String {
    crate::common::with_standard_header(
        "    .global main
main:
    mov #STACK_TOP, sp
    mov #0x4303, &0xe100      ; overwrite an instruction in PMEM
    mov #DONE, &SIM_CTL
hang:
    jmp hang
",
    )
}

/// A malicious program that copies a payload to DMEM and branches to it
/// (classic code injection). CASU's W⊕X rule must reset the device.
pub fn dmem_execution_source() -> String {
    crate::common::with_standard_header(
        "    .global main
main:
    mov #STACK_TOP, sp
    mov #0x4303, &0x0300      ; nop payload
    mov #0x3fff, &0x0302      ; jmp $ payload
    br #0x0300
",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::WorkloadId;
    use eilid::DeviceBuilder;

    fn eilid_device(id: WorkloadId) -> Device {
        DeviceBuilder::new()
            .build_eilid(&id.workload().source)
            .expect("workload builds under EILID")
    }

    fn baseline_device(id: WorkloadId) -> Device {
        DeviceBuilder::new()
            .build_baseline(&id.workload().source)
            .expect("workload builds")
    }

    #[test]
    fn return_address_attack_is_detected_on_every_workload() {
        for id in WorkloadId::ALL {
            let mut device = eilid_device(id);
            let result = inject(&mut device, CfiAttack::ReturnAddressOverwrite, 20_000_000)
                .expect("attack applies to every workload");
            assert!(result.detected(), "{id}: attack not detected");
            assert!(
                result.detected_as_expected(),
                "{id}: wrong fault {:?}",
                result.outcome
            );
        }
    }

    #[test]
    fn return_address_attack_is_missed_by_baseline_devices() {
        let mut device = baseline_device(WorkloadId::LightSensor);
        let result = inject(&mut device, CfiAttack::ReturnAddressOverwrite, 2_000_000).unwrap();
        assert!(!result.detected());
    }

    #[test]
    fn isr_context_attack_is_detected_on_interrupt_workloads() {
        for id in [WorkloadId::SyringePump, WorkloadId::TempSensor] {
            let mut device = eilid_device(id);
            let result = inject(&mut device, CfiAttack::IsrContextTamper, 20_000_000).unwrap();
            assert!(result.detected(), "{id}: attack not detected");
            assert!(result.detected_as_expected(), "{id}: {:?}", result.outcome);
        }
    }

    #[test]
    fn isr_attack_requires_an_interrupt_workload() {
        let mut device = eilid_device(WorkloadId::LightSensor);
        assert!(matches!(
            inject(&mut device, CfiAttack::IsrContextTamper, 1_000_000),
            Err(AttackError::MissingSymbol(_))
        ));
    }

    #[test]
    fn indirect_call_hijack_is_detected_on_charlieplexing() {
        let mut device = eilid_device(WorkloadId::Charlieplexing);
        let result = inject(&mut device, CfiAttack::IndirectCallHijack, 20_000_000).unwrap();
        assert!(result.detected());
        assert!(result.detected_as_expected(), "{:?}", result.outcome);

        // The baseline device completes without noticing anything.
        let mut baseline = baseline_device(WorkloadId::Charlieplexing);
        let result = inject(&mut baseline, CfiAttack::IndirectCallHijack, 5_000_000).unwrap();
        assert!(!result.detected());
    }

    #[test]
    fn code_injection_jump_is_detected() {
        let mut device = eilid_device(WorkloadId::LightSensor);
        let result = inject(&mut device, CfiAttack::CodeInjectionJump, 20_000_000).unwrap();
        assert!(result.detected());
        assert!(result.detected_as_expected(), "{:?}", result.outcome);
    }

    #[test]
    fn casu_level_attacks_are_detected_by_the_monitor() {
        let builder = DeviceBuilder::new();
        let mut pmem = builder
            .build_monitored_raw(&pmem_overwrite_source())
            .unwrap();
        assert!(matches!(
            pmem.run_for(100_000).violation(),
            Some(Violation::PmemWrite { .. })
        ));
        let mut wxorx = builder
            .build_monitored_raw(&dmem_execution_source())
            .unwrap();
        assert!(matches!(
            wxorx.run_for(100_000).violation(),
            Some(Violation::ExecutionFromWritableMemory { .. })
        ));
    }

    #[test]
    fn attack_metadata() {
        assert_eq!(CfiAttack::ALL.len(), 4);
        for attack in CfiAttack::ALL {
            assert!(!attack.to_string().is_empty());
        }
        assert_eq!(
            CfiAttack::ReturnAddressOverwrite.expected_fault(),
            Some(CfiFault::ReturnAddress)
        );
        assert_eq!(CfiAttack::CodeInjectionJump.expected_fault(), None);
        assert!(AttackError::MissingSymbol("x".into())
            .to_string()
            .contains('x'));
    }
}
