//! LightSensor — ambient-light sampling with an LED threshold indicator.
//!
//! Port of the Seeed LaunchPad `LightSensor` demo used by the paper: sample
//! the light sensor through the ADC, smooth the reading, and drive an LED
//! when the ambient level crosses a threshold. It is the smallest of the
//! seven evaluation applications (Table IV, first row).

use crate::common::with_standard_header_and_init;

/// Number of samples the application takes before finishing.
pub const SAMPLES: u16 = 16;

/// Assembly source of the workload.
pub fn source() -> String {
    with_standard_header_and_init(
        "    .global main

main:
    mov #STACK_TOP, sp
    call #init_device
    mov #0x0001, &GPIO_DIR
    clr r9                    ; bright-sample count
    clr r11                   ; smoothed light level
    mov #16, r8               ; samples to take
light_loop:
    call #read_light
    call #update_led
    mov #600, r14
    call #delay
    dec r8
    jnz light_loop
    mov r9, &SIM_OUT
    mov #0, &SIM_EXIT
    mov #DONE, &SIM_CTL
light_hang:
    jmp light_hang

; Sample the light sensor and fold it into the smoothed value in r11.
read_light:
attack_point:
    mov #1, &ADC_CTL
    mov &ADC_DATA, r15
    add r15, r11
    rra r11
    ret

; Drive the LED from the smoothed value and count bright samples.
update_led:
    cmp #0x0180, r11
    jl update_led_off
    bis #1, &GPIO_OUT
    inc r9
    ret
update_led_off:
    bic #1, &GPIO_OUT
    ret

; Busy-wait: r14 iterations of the sensor settling delay.
delay:
delay_loop:
    dec r14
    jnz delay_loop
    ret
",
        24,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use eilid::{DeviceBuilder, RunOutcome};

    #[test]
    fn assembles_and_completes_on_baseline() {
        let mut device = DeviceBuilder::new().build_baseline(&source()).unwrap();
        match device.run_for(1_000_000) {
            RunOutcome::Completed { output, .. } => {
                assert_eq!(output.len(), 1);
                assert!(output[0] > 0 && output[0] <= SAMPLES);
            }
            other => panic!("unexpected outcome: {other}"),
        }
    }

    #[test]
    fn completes_identically_under_eilid() {
        let builder = DeviceBuilder::new();
        let base = builder
            .build_baseline(&source())
            .unwrap()
            .run_for(1_000_000);
        let eilid = builder.build_eilid(&source()).unwrap().run_for(2_000_000);
        match (base, eilid) {
            (
                RunOutcome::Completed {
                    output: a,
                    cycles: ca,
                    ..
                },
                RunOutcome::Completed {
                    output: b,
                    cycles: cb,
                    ..
                },
            ) => {
                assert_eq!(a, b);
                assert!(cb > ca);
                let overhead = cb as f64 / ca as f64 - 1.0;
                assert!(
                    overhead < 0.30,
                    "run-time overhead {overhead:.2} is implausible"
                );
            }
            other => panic!("unexpected outcomes: {other:?}"),
        }
    }
}
