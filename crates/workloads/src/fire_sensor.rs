//! FireSensor — flame and temperature monitoring with an alarm output.
//!
//! Port of the Seeed LaunchPad `FireSensor` demo: sample a flame sensor and
//! a temperature channel, low-pass filter both, and raise an alarm when both
//! cross their thresholds. It has the densest call pattern of the seven
//! applications, giving it the highest run-time overhead in Table IV.

use crate::common::with_standard_header_and_init;

/// Number of monitoring iterations.
pub const ITERATIONS: u16 = 170;

/// Assembly source of the workload.
pub fn source() -> String {
    with_standard_header_and_init(
        "    .global main
    .equ FLAME_THRESHOLD, 0x02c0
    .equ TEMP_THRESHOLD, 0x0280

main:
    mov #STACK_TOP, sp
    call #init_device
    mov #0x0003, &GPIO_DIR
    clr r9                     ; alarm count
    clr r10                    ; filtered flame level
    clr r11                    ; filtered temperature
    mov #170, r8
fire_loop:
    call #read_flame
    call #read_temp
    call #check_alarm
    mov #560, r14
    call #delay
    dec r8
    jnz fire_loop
    mov r9, &SIM_OUT
    mov #0, &SIM_EXIT
    mov #DONE, &SIM_CTL
fire_hang:
    jmp fire_hang

; Sample the flame channel and low-pass filter it into r10.
read_flame:
attack_point:
    mov #1, &ADC_CTL
    mov &ADC_DATA, r15
    add r15, r10
    rra r10
    ret

; Sample the temperature channel and low-pass filter it into r11.
read_temp:
    mov #1, &ADC_CTL
    mov &ADC_DATA, r15
    add r15, r11
    rra r11
    ret

; Raise the alarm (both GPIO bits) only when flame and temperature agree.
check_alarm:
    cmp #FLAME_THRESHOLD, r10
    jl check_clear
    cmp #TEMP_THRESHOLD, r11
    jl check_clear
    bis #3, &GPIO_OUT
    inc r9
    ret
check_clear:
    bic #3, &GPIO_OUT
    ret

; Sampling-interval delay.
delay:
delay_loop:
    dec r14
    jnz delay_loop
    ret
",
        50,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use eilid::{DeviceBuilder, RunOutcome};

    #[test]
    fn assembles_and_completes_on_baseline() {
        let mut device = DeviceBuilder::new().build_baseline(&source()).unwrap();
        match device.run_for(3_000_000) {
            RunOutcome::Completed { output, .. } => {
                assert_eq!(output.len(), 1);
                assert!(output[0] < ITERATIONS);
            }
            other => panic!("unexpected outcome: {other}"),
        }
    }

    #[test]
    fn eilid_instrumentation_covers_all_four_functions() {
        let device = DeviceBuilder::new().build_eilid(&source()).unwrap();
        let report = &device.artifacts().unwrap().report;
        assert_eq!(report.call_sites, 5, "init + four call sites per loop body");
        assert_eq!(
            report.returns, 6,
            "init, read_flame, read_temp, check_alarm x2, delay"
        );
    }
}
