//! Workload registry.
//!
//! The seven applications the paper evaluates in Table IV, with the metadata
//! the benchmark harness needs (reference compile-time/size/run-time rows
//! from the paper are kept in the bench crate, not here).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{
    charlieplexing, fire_sensor, lcd_sensor, light_sensor, syringe_pump, temp_sensor,
    ultrasonic_ranger,
};

/// Identifier of one of the seven evaluation applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkloadId {
    /// Ambient-light sampling with an LED indicator.
    LightSensor,
    /// Ultrasonic distance measurement.
    UltrasonicRanger,
    /// Flame + temperature alarm.
    FireSensor,
    /// Stepper-driven syringe pump (timer interrupt).
    SyringePump,
    /// Periodic temperature conversion (timer interrupt).
    TempSensor,
    /// Charlieplexed LED animation (indirect calls).
    Charlieplexing,
    /// Character LCD output.
    LcdSensor,
}

impl WorkloadId {
    /// All workloads in the order Table IV lists them.
    pub const ALL: [WorkloadId; 7] = [
        WorkloadId::LightSensor,
        WorkloadId::UltrasonicRanger,
        WorkloadId::FireSensor,
        WorkloadId::SyringePump,
        WorkloadId::TempSensor,
        WorkloadId::Charlieplexing,
        WorkloadId::LcdSensor,
    ];

    /// Stable index of this workload in [`WorkloadId::ALL`] — the
    /// single on-wire / on-disk byte encoding of a cohort, shared by
    /// the `eilid_net` frame codec and the persisted paused-campaign
    /// format. Reordering `ALL` is a wire-format break.
    pub fn index(self) -> u8 {
        WorkloadId::ALL
            .iter()
            .position(|&id| id == self)
            .expect("every workload is in WorkloadId::ALL") as u8
    }

    /// The workload at `index` in [`WorkloadId::ALL`], or `None` for an
    /// out-of-range byte (decoders turn that into a typed error).
    pub fn from_index(index: u8) -> Option<WorkloadId> {
        WorkloadId::ALL.get(usize::from(index)).copied()
    }

    /// Human-readable name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadId::LightSensor => "LightSensor",
            WorkloadId::UltrasonicRanger => "UltrasonicRanger",
            WorkloadId::FireSensor => "FireSensor",
            WorkloadId::SyringePump => "SyringePump",
            WorkloadId::TempSensor => "TempSensor",
            WorkloadId::Charlieplexing => "Charlieplexing",
            WorkloadId::LcdSensor => "LcdSensor",
        }
    }

    /// Builds the workload descriptor (including its assembly source).
    pub fn workload(self) -> Workload {
        let (source, description, uses_interrupts, uses_indirect_calls) = match self {
            WorkloadId::LightSensor => (
                light_sensor::source(),
                "ambient-light sampling with an LED threshold indicator",
                false,
                false,
            ),
            WorkloadId::UltrasonicRanger => (
                ultrasonic_ranger::source(),
                "ultrasonic distance measurement with software division",
                false,
                false,
            ),
            WorkloadId::FireSensor => (
                fire_sensor::source(),
                "flame and temperature monitoring with an alarm output",
                false,
                false,
            ),
            WorkloadId::SyringePump => (
                syringe_pump::source(),
                "stepper-motor syringe pump with a timer-interrupt step counter",
                true,
                false,
            ),
            WorkloadId::TempSensor => (
                temp_sensor::source(),
                "periodic temperature sampling and conversion",
                true,
                false,
            ),
            WorkloadId::Charlieplexing => (
                charlieplexing::source(),
                "charlieplexed LED animation selected through a function pointer",
                false,
                true,
            ),
            WorkloadId::LcdSensor => (
                lcd_sensor::source(),
                "character LCD output with controller busy-waits",
                false,
                false,
            ),
        };
        Workload {
            id: self,
            name: self.name(),
            description,
            source,
            uses_interrupts,
            uses_indirect_calls,
        }
    }
}

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A fully described evaluation application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Which application this is.
    pub id: WorkloadId,
    /// Name as printed in Table IV.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Assembly source in the `eilid-asm` dialect.
    pub source: String,
    /// `true` if the application uses the timer interrupt (exercises P2).
    pub uses_interrupts: bool,
    /// `true` if the application performs indirect calls (exercises P3).
    pub uses_indirect_calls: bool,
}

/// All seven workloads in Table IV order.
pub fn all() -> Vec<Workload> {
    WorkloadId::ALL.iter().map(|id| id.workload()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_seven_applications() {
        let workloads = all();
        assert_eq!(workloads.len(), 7);
        let names: Vec<&str> = workloads.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "LightSensor",
                "UltrasonicRanger",
                "FireSensor",
                "SyringePump",
                "TempSensor",
                "Charlieplexing",
                "LcdSensor"
            ]
        );
    }

    #[test]
    fn every_workload_assembles_and_has_an_attack_point() {
        for workload in all() {
            let image = eilid_asm::assemble(&workload.source)
                .unwrap_or_else(|e| panic!("{} fails to assemble: {e}", workload.name));
            assert!(
                image.symbol("attack_point").is_some(),
                "{} lacks an attack_point label",
                workload.name
            );
            assert!(image.symbol("main").is_some());
            assert!(
                image.code_size() > 50,
                "{} is implausibly small",
                workload.name
            );
            if workload.uses_interrupts {
                assert!(
                    image.symbol("isr_attack_point").is_some(),
                    "{} lacks an isr_attack_point label",
                    workload.name
                );
                assert!(!image.vectors.is_empty());
            }
        }
    }

    #[test]
    fn feature_flags_match_the_sources() {
        for workload in all() {
            assert_eq!(
                workload.uses_interrupts,
                workload.source.contains(".isr"),
                "{}",
                workload.name
            );
            assert_eq!(
                workload.uses_indirect_calls,
                workload.source.contains("call r13"),
                "{}",
                workload.name
            );
        }
    }
}
