//! # eilid-workloads — the paper's evaluation applications and attacks
//!
//! The EILID paper evaluates its overhead on seven publicly available
//! embedded applications ported to openMSP430 (Table IV): `LightSensor`,
//! `UltrasonicRanger`, `FireSensor`, `SyringePump`, `TempSensor`,
//! `Charlieplexing` and `LcdSensor`. Those exact C sources target real
//! sensor hardware, so this crate provides faithful re-implementations in
//! the reproduction's MSP430 assembly dialect against the simulator's
//! synthetic peripherals, preserving the structural features that drive the
//! instrumentation overhead: function/call density, interrupt usage and
//! indirect calls.
//!
//! The crate also contains the run-time [`attacks`] of the paper's threat
//! model, used by the attack-coverage tests and the `attack_demo` example.
//!
//! # Examples
//!
//! ```
//! use eilid::DeviceBuilder;
//! use eilid_workloads::WorkloadId;
//!
//! let workload = WorkloadId::LightSensor.workload();
//! let mut device = DeviceBuilder::new().build_eilid(&workload.source)?;
//! let outcome = device.run();
//! assert!(outcome.is_completed());
//! # Ok::<(), eilid::EilidError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod attacks;
pub mod charlieplexing;
pub mod common;
pub mod fire_sensor;
pub mod lcd_sensor;
pub mod light_sensor;
pub mod syringe_pump;
pub mod temp_sensor;
pub mod ultrasonic_ranger;

pub use app::{all, Workload, WorkloadId};
pub use attacks::{
    dmem_execution_source, inject, pmem_overwrite_source, AttackError, AttackResult, CfiAttack,
};
