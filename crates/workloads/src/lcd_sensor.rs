//! LcdSensor — writing sensor text to a character LCD.
//!
//! Port of the `msp430-examples` LCD demo: stream a line of characters to
//! the display controller, waiting for the (slow) controller between
//! characters. Long busy-waits with few calls give it the lowest run-time
//! overhead of the seven applications.

use crate::common::with_standard_header_and_init;

/// Characters per line written to the LCD.
pub const MESSAGE_LEN: u16 = 26;

/// Number of lines written.
pub const REPEATS: u16 = 3;

/// Assembly source of the workload.
pub fn source() -> String {
    with_standard_header_and_init(
        "    .global main
    .equ MESSAGE_LEN, 26
    .equ REPEATS, 3

main:
    mov #STACK_TOP, sp
    call #init_device
    clr r9                      ; characters written
    mov #REPEATS, r11
lcd_outer:
    mov #MESSAGE_LEN, r8
    mov #0x0041, r10            ; start each line at 'A'
lcd_line:
    mov r10, r15
    call #lcd_putc
    inc r10
    dec r8
    jnz lcd_line
    call #lcd_newline
    dec r11
    jnz lcd_outer
    mov r9, &SIM_OUT
    mov #0, &SIM_EXIT
    mov #DONE, &SIM_CTL
lcd_hang:
    jmp lcd_hang

; Write one character to the LCD, then wait for the controller.
lcd_putc:
attack_point:
    mov r15, &UART_TX
    inc r9
    mov #1650, r14
    call #lcd_wait
    ret

; Send a newline and wait.
lcd_newline:
    mov #0x000a, &UART_TX
    mov #1650, r14
    call #lcd_wait
    ret

; Busy-wait until the (modelled) LCD controller is ready again.
lcd_wait:
lcd_wait_loop:
    dec r14
    jnz lcd_wait_loop
    ret
",
        78,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use eilid::{DeviceBuilder, RunOutcome};

    #[test]
    fn assembles_and_writes_the_expected_text() {
        let mut device = DeviceBuilder::new().build_baseline(&source()).unwrap();
        let outcome = device.run_for(3_000_000);
        match outcome {
            RunOutcome::Completed { output, .. } => {
                assert_eq!(output, vec![MESSAGE_LEN * REPEATS]);
            }
            other => panic!("unexpected outcome: {other}"),
        }
        let text = device.cpu().peripherals.uart_output().to_vec();
        assert_eq!(text.len() as u16, MESSAGE_LEN * REPEATS + REPEATS);
        assert!(text.starts_with(b"ABCDEFGH"));
        assert_eq!(text.iter().filter(|&&b| b == b'\n').count() as u16, REPEATS);
    }

    #[test]
    fn lcd_has_the_lowest_overhead_profile() {
        // Two call pairs per character against a ~5000-cycle busy wait keeps
        // the EILID overhead in the low single digits, mirroring the paper's
        // LcdSensor row.
        let builder = DeviceBuilder::new();
        let base = builder
            .build_baseline(&source())
            .unwrap()
            .run_for(3_000_000);
        let eilid = builder.build_eilid(&source()).unwrap().run_for(6_000_000);
        let overhead = eilid.cycles() as f64 / base.cycles() as f64 - 1.0;
        assert!(base.is_completed() && eilid.is_completed());
        assert!(overhead > 0.0 && overhead < 0.08, "overhead {overhead:.3}");
    }
}
