//! Shared assembly fragments for the evaluation applications.
//!
//! Every workload starts from the same peripheral map (the synthetic
//! equivalents of the sensors/actuators the paper's applications use) and
//! the same program skeleton: `.org 0xe000`, a `main` entry point that sets
//! up the stack, a bounded main loop, and a completion write to the
//! simulation-control register.

/// Default number of the timer interrupt vector used by interrupt-driven
/// workloads.
pub const TIMER_VECTOR: u16 = 8;

/// Standard `.equ` block mapping peripheral registers and simulation
/// controls. Prepended to every workload source.
pub fn standard_equates() -> &'static str {
    "    .org 0xe000
    .equ SIM_CTL, 0x0100
    .equ SIM_OUT, 0x0102
    .equ SIM_EXIT, 0x0104
    .equ ADC_CTL, 0x0110
    .equ ADC_DATA, 0x0112
    .equ TIMER_CTL, 0x0120
    .equ TIMER_COUNT, 0x0122
    .equ TIMER_CMP, 0x0124
    .equ GPIO_OUT, 0x0130
    .equ GPIO_IN, 0x0132
    .equ GPIO_DIR, 0x0134
    .equ UART_TX, 0x0140
    .equ UART_STATUS, 0x0142
    .equ ULTRA_CTL, 0x0150
    .equ ULTRA_ECHO, 0x0152
    .equ DONE, 0x00ff
    .equ STACK_TOP, 0x0400
"
}

/// Builds a complete workload source from the standard equates plus the
/// application body.
pub fn with_standard_header(body: &str) -> String {
    format!("{}{}", standard_equates(), body)
}

/// Generates a boot-time device-initialisation routine with `writes`
/// configuration/calibration stores.
///
/// The paper's applications are compiled C programs whose binaries contain a
/// substantial amount of straight-line start-up code (peripheral
/// configuration, calibration constants, static-data initialisation) that
/// executes once and contains no calls. The hand-written assembly workloads
/// would otherwise consist almost entirely of call-dense loop bodies, which
/// would exaggerate the *relative* binary-size overhead of the
/// instrumentation. `init_device` reproduces that start-up code: `writes`
/// stores of deterministic calibration words into the scratch area at
/// `0x0260..`, executed exactly once from `main`.
pub fn init_block(writes: usize) -> String {
    let mut out = String::from(
        "
; Boot-time configuration and calibration-constant initialisation.
init_device:
",
    );
    for i in 0..writes {
        let addr = 0x0260 + 2 * (i as u16 % 64);
        let value = (0x1234u16)
            .wrapping_mul(i as u16 + 1)
            .rotate_left((i % 7) as u32);
        out.push_str(&format!(
            "    mov #0x{value:04x}, &0x{addr:04x}
"
        ));
    }
    out.push_str(
        "    ret
",
    );
    out
}

/// Builds a complete workload source: standard equates, the application
/// body, and an `init_device` routine with `init_writes` stores.
pub fn with_standard_header_and_init(body: &str, init_writes: usize) -> String {
    format!("{}{}{}", standard_equates(), body, init_block(init_writes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_block_size_scales_with_writes() {
        let small = with_standard_header_and_init(
            "    .global main\nmain:\n    call #init_device\nhang:\n    jmp hang\n",
            10,
        );
        let large = with_standard_header_and_init(
            "    .global main\nmain:\n    call #init_device\nhang:\n    jmp hang\n",
            40,
        );
        let small_size = eilid_asm::assemble(&small).unwrap().code_size();
        let large_size = eilid_asm::assemble(&large).unwrap().code_size();
        assert_eq!(
            large_size - small_size,
            30 * 6,
            "each write is a 6-byte store"
        );
    }

    #[test]
    fn header_assembles_on_its_own() {
        let source = with_standard_header("    .global main\nmain:\n    jmp main\n");
        let image = eilid_asm::assemble(&source).expect("header + stub assembles");
        assert_eq!(image.symbol("SIM_CTL"), Some(0x0100));
        assert_eq!(image.symbol("ULTRA_ECHO"), Some(0x0152));
        assert_eq!(image.symbol("main"), Some(0xE000));
    }
}
