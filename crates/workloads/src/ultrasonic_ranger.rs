//! UltrasonicRanger — distance measurement with an ultrasonic transducer.
//!
//! Port of the Seeed LaunchPad `UltrasonicRanger` demo: trigger a ping, read
//! the echo round-trip time and convert it to centimetres with a software
//! division (repeated subtraction), counting "near object" events.

use crate::common::with_standard_header_and_init;

/// Number of pings the application performs.
pub const PINGS: u16 = 100;

/// Assembly source of the workload.
pub fn source() -> String {
    with_standard_header_and_init(
        "    .global main

main:
    mov #STACK_TOP, sp
    call #init_device
    clr r9                    ; near-object count
    mov #100, r8              ; pings to perform
ultra_loop:
    call #ping
    call #convert_distance
    mov #520, r14
    call #delay
    dec r8
    jnz ultra_loop
    mov r9, &SIM_OUT
    mov #0, &SIM_EXIT
    mov #DONE, &SIM_CTL
ultra_hang:
    jmp ultra_hang

; Trigger a ping and read the raw echo time into r15.
ping:
attack_point:
    mov #1, &ULTRA_CTL
    mov &ULTRA_ECHO, r15
    ret

; Convert the echo time to centimetres (divide by 58 via repeated
; subtraction) and count near objects.
convert_distance:
    clr r13
convert_loop:
    cmp #58, r15
    jl convert_done
    sub #58, r15
    inc r13
    jmp convert_loop
convert_done:
    cmp #12, r13
    jge convert_far
    inc r9
convert_far:
    mov r13, &GPIO_OUT
    ret

; Inter-ping settling delay.
delay:
delay_loop:
    dec r14
    jnz delay_loop
    ret
",
        28,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use eilid::{DeviceBuilder, RunOutcome};

    #[test]
    fn assembles_and_completes_on_baseline() {
        let mut device = DeviceBuilder::new().build_baseline(&source()).unwrap();
        match device.run_for(2_000_000) {
            RunOutcome::Completed { output, .. } => {
                assert_eq!(output.len(), 1);
                assert!(output[0] > 0 && output[0] < PINGS);
            }
            other => panic!("unexpected outcome: {other}"),
        }
    }

    #[test]
    fn division_loop_produces_sensible_distances() {
        // The synthetic transducer produces echoes of 580..=1092 units, so
        // the software division must yield 10..=18 centimetres; GPIO_OUT
        // holds the most recent distance when the run finishes.
        let mut device = DeviceBuilder::new().build_baseline(&source()).unwrap();
        let outcome = device.run_for(2_000_000);
        assert!(outcome.is_completed());
        let last_distance = device.cpu().peripherals.read(0x0130);
        assert!((10..=18).contains(&last_distance), "{last_distance}");
    }
}
