//! TempSensor — periodic temperature sampling and conversion.
//!
//! Port of the `msp430-examples` temperature-sensor demo: read the ADC,
//! convert the raw value to tenths of a degree with a shift-and-add
//! multiply, and keep a running sum, with a timer interrupt acting as the
//! sampling tick.

use crate::common::with_standard_header_and_init;

/// Number of temperature samples taken.
pub const SAMPLES: u16 = 40;

/// Assembly source of the workload.
pub fn source() -> String {
    with_standard_header_and_init(
        "    .global main
    .isr sample_isr, 8
    .equ SAMPLE_TARGET, 40

main:
    mov #STACK_TOP, sp
    call #init_device
    clr r9                     ; sampling ticks observed
    clr r10                    ; latest converted temperature
    clr r11                    ; running sum of temperatures
    mov #400, &TIMER_CMP
    mov #0x0003, &TIMER_CTL
    eint
    mov #SAMPLE_TARGET, r8
temp_loop:
    call #read_and_convert
    mov #900, r14
    call #delay
    dec r8
    jnz temp_loop
    dint
    mov r10, &SIM_OUT
    mov #0, &SIM_EXIT
    mov #DONE, &SIM_CTL
temp_hang:
    jmp temp_hang

; Read the ADC and convert the raw value: temp = raw * 5 / 8, computed with
; shifts and adds (no hardware multiplier on this class of device).
read_and_convert:
attack_point:
    mov #1, &ADC_CTL
    mov &ADC_DATA, r15
    mov r15, r13
    add r13, r13              ; raw * 2
    add r13, r13              ; raw * 4
    add r15, r13              ; raw * 5
    rra r13
    rra r13
    rra r13                   ; (raw * 5) / 8
    mov r13, r10
    add r13, r11
    ret

; Sampling-period delay.
delay:
delay_loop:
    dec r14
    jnz delay_loop
    ret

; Sampling tick: acknowledge the timer and count the tick.
sample_isr:
isr_attack_point:
    push r12
    mov &TIMER_CTL, r12
    bis #4, r12
    mov r12, &TIMER_CTL
    inc r9
    pop r12
    reti
",
        25,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use eilid::{DeviceBuilder, RunOutcome};

    #[test]
    fn assembles_and_completes_on_baseline() {
        let mut device = DeviceBuilder::new().build_baseline(&source()).unwrap();
        match device.run_for(3_000_000) {
            RunOutcome::Completed { output, .. } => {
                assert_eq!(output.len(), 1);
                // temp = raw * 5 / 8 for raw < 0x400 stays below 0x280.
                assert!(output[0] < 0x0280);
            }
            other => panic!("unexpected outcome: {other}"),
        }
    }

    #[test]
    fn conversion_matches_reference_formula() {
        use eilid_msp430::AdcStimulus;
        let mut device = DeviceBuilder::new()
            .adc_stimulus(AdcStimulus::Constant(0x0200))
            .build_baseline(&source())
            .unwrap();
        let outcome = device.run_for(3_000_000);
        match outcome {
            RunOutcome::Completed { output, .. } => {
                assert_eq!(output[0], 0x0200 * 5 / 8);
            }
            other => panic!("unexpected outcome: {other}"),
        }
    }
}
