//! Structural synthesis-cost model for the CASU/EILID hardware monitor.
//!
//! The paper reports EILID's hardware cost as +99 LUTs (5.3 %) and +34
//! registers (4.9 %) over the baseline openMSP430, obtained from Vivado
//! synthesis. This reproduction has no synthesis tool, so the cost is
//! *derived* from the monitor's structure instead: the monitor is a purely
//! combinational set of address comparators over the CPU bus plus a handful
//! of state flip-flops, so its FPGA cost is well approximated by counting
//! comparators and state bits. The per-component costs are calibrated so
//! that the full default policy lands on the paper's figures; the value of
//! the model is that *disabling* rules (the ablation benchmarks) or adding
//! rules changes the estimate in a structurally meaningful way.

use serde::{Deserialize, Serialize};

use eilid::EilidConfig;
use eilid_casu::CasuPolicy;

/// FPGA resource cost of a hardware block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HwCost {
    /// Look-up tables.
    pub luts: u32,
    /// Flip-flops / registers.
    pub registers: u32,
    /// Dedicated RAM required, in bytes (zero for EILID-class monitors).
    pub ram_bytes: u32,
}

impl HwCost {
    /// Creates a cost record with no dedicated RAM.
    pub fn new(luts: u32, registers: u32) -> Self {
        HwCost {
            luts,
            registers,
            ram_bytes: 0,
        }
    }

    /// Relative overhead in percent against a baseline core.
    pub fn percent_of(&self, baseline: &HwCost) -> (f64, f64) {
        let lut_pct = if baseline.luts == 0 {
            0.0
        } else {
            100.0 * self.luts as f64 / baseline.luts as f64
        };
        let reg_pct = if baseline.registers == 0 {
            0.0
        } else {
            100.0 * self.registers as f64 / baseline.registers as f64
        };
        (lut_pct, reg_pct)
    }
}

/// Resource cost of the unmodified openMSP430 core used as the baseline in
/// Figure 10 (derived from the paper's 99 LUTs = 5.3 % and 34 FFs = 4.9 %).
pub fn openmsp430_baseline() -> HwCost {
    HwCost::new(1868, 694)
}

/// LUTs consumed by one 16-bit magnitude comparison against a constant
/// bound (a range rule needs two of these fused into one check).
const LUTS_PER_RANGE_RULE: u32 = 8;

/// LUTs consumed by one 16-bit equality comparison against a constant.
const LUTS_PER_EQUALITY_RULE: u32 = 5;

/// Fixed control/glue logic of the monitor (violation encoding, reset
/// generation, bus taps).
const CONTROL_LUTS: u32 = 17;

/// Structural description of the monitor used to estimate its cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorStructure {
    /// Address-range rules evaluated on every bus cycle (W⊕X fetch windows,
    /// PMEM/ROM/IVT write guards, secure-DMEM access guards, leave window).
    pub range_rules: u32,
    /// Exact-address rules (secure entry point, violation strobe).
    pub equality_rules: u32,
    /// State bits held in flip-flops (secure-state tracker, update-session
    /// flag, latched violation address and fault code, synchronisers).
    pub state_bits: u32,
}

impl MonitorStructure {
    /// Derives the monitor structure implied by a CASU policy and an EILID
    /// configuration.
    pub fn from_policy(policy: &CasuPolicy, config: &EilidConfig) -> Self {
        let mut range_rules = 0;
        let mut equality_rules = 0;
        // Latched violation address (16) + fault code (4) + status/reset (6)
        // + clock-domain synchronisers (7) — present in any variant.
        let mut state_bits = 33;

        if policy.enforce_wxorx {
            // Fetch address must fall in PMEM or secure ROM: two windows.
            range_rules += 2;
        }
        if policy.enforce_pmem_immutability {
            // Write guards for PMEM, secure ROM and the vector table.
            range_rules += 3;
        }
        if policy.enforce_secure_dmem_exclusivity {
            // Secure-DMEM window checked on reads and on writes.
            range_rules += 2;
        }
        if policy.enforce_secure_rom_isolation {
            // Secure-ROM window (entry/exit tracking) + leave window.
            range_rules += 2;
            // Entry-point equality compare.
            equality_rules += 1;
        } else {
            state_bits -= 1;
        }
        if policy.enforce_atomicity {
            // IRQ gating needs no comparator (it reuses the secure-ROM
            // window) but adds a gating flop.
            state_bits += 1;
        }
        // The EILID extension: violation strobe decode, plus nothing else —
        // the shadow stack itself lives in the existing secure data memory.
        equality_rules += 1;
        let _ = config;

        MonitorStructure {
            range_rules,
            equality_rules,
            state_bits,
        }
    }

    /// Estimated FPGA cost of this structure.
    pub fn cost(&self) -> HwCost {
        HwCost::new(
            self.range_rules * LUTS_PER_RANGE_RULE
                + self.equality_rules * LUTS_PER_EQUALITY_RULE
                + CONTROL_LUTS,
            self.state_bits,
        )
    }
}

/// Estimated hardware cost of the EILID monitor for a policy/configuration.
///
/// # Examples
///
/// ```
/// use eilid_hwcost::{eilid_monitor_cost, openmsp430_baseline};
/// use eilid::EilidConfig;
/// use eilid_casu::CasuPolicy;
///
/// let cost = eilid_monitor_cost(&CasuPolicy::default(), &EilidConfig::default());
/// let (lut_pct, reg_pct) = cost.percent_of(&openmsp430_baseline());
/// assert!((4.0..7.0).contains(&lut_pct));
/// assert!((4.0..6.0).contains(&reg_pct));
/// ```
pub fn eilid_monitor_cost(policy: &CasuPolicy, config: &EilidConfig) -> HwCost {
    MonitorStructure::from_policy(policy, config).cost()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_matches_the_paper_figures() {
        let cost = eilid_monitor_cost(&CasuPolicy::default(), &EilidConfig::default());
        assert_eq!(cost.luts, 99, "paper: +99 LUTs");
        assert_eq!(cost.registers, 34, "paper: +34 registers");
        assert_eq!(cost.ram_bytes, 0, "EILID needs no dedicated RAM");
        let (lut_pct, reg_pct) = cost.percent_of(&openmsp430_baseline());
        assert!((lut_pct - 5.3).abs() < 0.5, "{lut_pct}");
        assert!((reg_pct - 4.9).abs() < 0.5, "{reg_pct}");
    }

    #[test]
    fn disabling_rules_reduces_the_estimate() {
        let full = eilid_monitor_cost(&CasuPolicy::default(), &EilidConfig::default());
        let permissive = eilid_monitor_cost(&CasuPolicy::permissive(), &EilidConfig::default());
        assert!(permissive.luts < full.luts);
        assert!(permissive.registers <= full.registers);

        let no_wxorx = CasuPolicy {
            enforce_wxorx: false,
            ..Default::default()
        };
        let partial = eilid_monitor_cost(&no_wxorx, &EilidConfig::default());
        assert_eq!(full.luts - partial.luts, 2 * LUTS_PER_RANGE_RULE);
        assert_eq!(full.luts, 99);
    }

    #[test]
    fn percent_of_handles_zero_baseline() {
        let cost = HwCost::new(10, 10);
        assert_eq!(cost.percent_of(&HwCost::default()), (0.0, 0.0));
    }

    #[test]
    fn structure_is_deterministic() {
        let a = MonitorStructure::from_policy(&CasuPolicy::default(), &EilidConfig::default());
        let b = MonitorStructure::from_policy(&CasuPolicy::default(), &EilidConfig::default());
        assert_eq!(a, b);
        assert_eq!(a.cost(), b.cost());
    }
}
