//! Published hardware costs of prior CFI and CFA techniques (Figure 10).
//!
//! Figure 10 of the paper compares EILID's additional LUTs and registers
//! against HAFIX, HCFI (CFI techniques) and Tiny-CFA, ACFA, LO-FAT, LiteHAX
//! (CFA techniques). The paper states exact values for the openMSP430-based
//! designs (EILID, Tiny-CFA, ACFA) and the RAM requirements of LO-FAT and
//! LiteHAX; the remaining bars are reproduced from the figure's scale and
//! the cited papers, and are marked as approximate.

use serde::{Deserialize, Serialize};

use crate::model::{eilid_monitor_cost, openmsp430_baseline, HwCost};

/// Whether a technique provides real-time CFI or after-the-fact CFA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Control-flow integrity (real-time enforcement).
    Cfi,
    /// Control-flow attestation (detection via a verifier).
    Cfa,
}

impl Method {
    /// Label used in the figure legend.
    pub fn label(self) -> &'static str {
        match self {
            Method::Cfi => "CFI",
            Method::Cfa => "CFA",
        }
    }
}

/// One bar of Figure 10: a prior technique and its hardware cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechniqueCost {
    /// Technique name as printed in the figure.
    pub name: &'static str,
    /// CFI or CFA.
    pub method: Method,
    /// Hardware platform the technique was prototyped on.
    pub platform: &'static str,
    /// Additional hardware cost over that platform's baseline core.
    pub cost: HwCost,
    /// Baseline core cost, when known (used to compute relative overhead).
    pub baseline: Option<HwCost>,
    /// `true` when the numbers are stated exactly in the EILID paper;
    /// `false` when they are read off the figure / taken from the cited
    /// paper and therefore approximate.
    pub exact: bool,
}

impl TechniqueCost {
    /// Relative LUT overhead in percent, when the baseline is known.
    pub fn lut_percent(&self) -> Option<f64> {
        self.baseline.map(|b| self.cost.percent_of(&b).0)
    }

    /// Relative register overhead in percent, when the baseline is known.
    pub fn register_percent(&self) -> Option<f64> {
        self.baseline.map(|b| self.cost.percent_of(&b).1)
    }
}

/// All bars of Figure 10, EILID first (as in the paper's ordering).
pub fn figure10() -> Vec<TechniqueCost> {
    let msp_base = openmsp430_baseline();
    let eilid = eilid_monitor_cost(
        &eilid_casu::CasuPolicy::default(),
        &eilid::EilidConfig::default(),
    );
    vec![
        TechniqueCost {
            name: "EILID",
            method: Method::Cfi,
            platform: "openMSP430",
            cost: eilid,
            baseline: Some(msp_base),
            exact: true,
        },
        TechniqueCost {
            name: "HAFIX",
            method: Method::Cfi,
            platform: "Intel Siskiyou Peak",
            cost: HwCost::new(2_780, 1_830),
            baseline: None,
            exact: false,
        },
        TechniqueCost {
            name: "HCFI",
            method: Method::Cfi,
            platform: "Leon3 SPARC V8",
            cost: HwCost::new(3_180, 2_090),
            baseline: None,
            exact: false,
        },
        TechniqueCost {
            name: "Tiny-CFA",
            method: Method::Cfa,
            platform: "openMSP430",
            cost: HwCost::new(302, 44),
            baseline: Some(msp_base),
            exact: true,
        },
        TechniqueCost {
            name: "ACFA",
            method: Method::Cfa,
            platform: "openMSP430",
            cost: HwCost::new(501, 946),
            baseline: Some(msp_base),
            exact: true,
        },
        TechniqueCost {
            name: "LO-FAT",
            method: Method::Cfa,
            platform: "Pulpino",
            cost: HwCost {
                luts: 4_430,
                registers: 8_680,
                ram_bytes: 216 * 1024,
            },
            baseline: None,
            exact: false,
        },
        TechniqueCost {
            name: "LiteHAX",
            method: Method::Cfa,
            platform: "Pulpino",
            cost: HwCost {
                luts: 4_100,
                registers: 7_960,
                ram_bytes: 158 * 1024,
            },
            baseline: None,
            exact: false,
        },
    ]
}

/// Addressable memory of a 16-bit MSP430-class MCU, used to argue (as the
/// paper does) that LO-FAT/LiteHAX-class designs cannot fit low-end devices.
pub const MSP430_ADDRESS_SPACE_BYTES: u32 = 64 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure10_covers_all_seven_techniques() {
        let bars = figure10();
        let names: Vec<&str> = bars.iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec!["EILID", "HAFIX", "HCFI", "Tiny-CFA", "ACFA", "LO-FAT", "LiteHAX"]
        );
    }

    #[test]
    fn eilid_has_the_lowest_cost_of_all_techniques() {
        let bars = figure10();
        let eilid = &bars[0];
        for other in &bars[1..] {
            assert!(
                eilid.cost.luts < other.cost.luts,
                "EILID must use fewer LUTs than {}",
                other.name
            );
            assert!(
                eilid.cost.registers < other.cost.registers,
                "EILID must use fewer registers than {}",
                other.name
            );
        }
    }

    #[test]
    fn openmsp430_designs_match_the_papers_stated_numbers() {
        let bars = figure10();
        let tiny = bars.iter().find(|b| b.name == "Tiny-CFA").unwrap();
        assert_eq!(tiny.cost.luts, 302);
        assert_eq!(tiny.cost.registers, 44);
        assert!((tiny.lut_percent().unwrap() - 16.2).abs() < 0.5);
        assert!((tiny.register_percent().unwrap() - 6.4).abs() < 0.5);

        let acfa = bars.iter().find(|b| b.name == "ACFA").unwrap();
        assert_eq!(acfa.cost.luts, 501);
        assert_eq!(acfa.cost.registers, 946);
        assert!((acfa.lut_percent().unwrap() - 26.9).abs() < 0.6);
        assert!((acfa.register_percent().unwrap() - 136.7).abs() < 1.0);
    }

    #[test]
    fn lofat_and_litehax_exceed_msp430_memory() {
        // The paper's argument: their RAM requirements alone exceed the
        // entire 64 KB address space of a 16-bit MCU.
        for name in ["LO-FAT", "LiteHAX"] {
            let bar = figure10().into_iter().find(|b| b.name == name).unwrap();
            assert!(bar.cost.ram_bytes > MSP430_ADDRESS_SPACE_BYTES);
        }
    }

    #[test]
    fn method_labels() {
        assert_eq!(Method::Cfi.label(), "CFI");
        assert_eq!(Method::Cfa.label(), "CFA");
    }
}
