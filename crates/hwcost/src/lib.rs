//! # eilid-hwcost — hardware-cost model and prior-work comparison
//!
//! Reproduces the hardware-cost side of the EILID evaluation:
//!
//! * [`model`] — a structural synthesis-cost estimator for the CASU/EILID
//!   hardware monitor (the paper reports +99 LUTs / +34 registers over the
//!   baseline openMSP430 from Vivado synthesis; the model derives the same
//!   numbers from the monitor's comparator/flip-flop structure and responds
//!   to policy ablations);
//! * [`prior_work`] — the published costs of HAFIX, HCFI, Tiny-CFA, ACFA,
//!   LO-FAT and LiteHAX used in Figure 10;
//! * [`table1`] — the qualitative CFI/CFA comparison of Table I;
//! * [`crypto`] — the verifier-side cost of the pluggable
//!   `CryptoProvider` backends (software, batched, simulated
//!   ECC608-style offload) per sweep, and the operator-verification
//!   saving the collective-attestation aggregation trees buy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crypto;
pub mod model;
pub mod prior_work;
pub mod table1;

pub use crypto::{
    price_batched, price_providers, price_sim_hw, price_software, render_provider_matrix,
    CryptoWorkload, ProviderPrice,
};
pub use model::{eilid_monitor_cost, openmsp430_baseline, HwCost, MonitorStructure};
pub use prior_work::{figure10, Method, TechniqueCost, MSP430_ADDRESS_SPACE_BYTES};
pub use table1::{render_table1, table1, Table1Row};
