//! Table I: qualitative comparison of CFA and CFI techniques.
//!
//! The paper's Table I compares prior work along five axes: real-time
//! protection, forward-edge coverage, backward-edge coverage, interrupt
//! (return-from-interrupt) coverage, and target platform. EILID is the only
//! entry that combines real-time protection with low-end hardware.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::prior_work::Method;

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1Row {
    /// CFI or CFA family.
    pub method: Method,
    /// Technique name.
    pub work: &'static str,
    /// Real-time protection (prevention rather than detection).
    pub real_time: bool,
    /// Forward-edge coverage.
    pub forward_edge: bool,
    /// Backward-edge coverage.
    pub backward_edge: bool,
    /// Interrupt / return-from-interrupt coverage.
    pub interrupt: bool,
    /// Prototyping platform.
    pub platform: &'static str,
    /// One-line technique summary.
    pub technique: &'static str,
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tick = |b: bool| if b { "yes" } else { "-" };
        write!(
            f,
            "{:<4} {:<11} {:<4} {:<4} {:<4} {:<4} {:<18} {}",
            self.method.label(),
            self.work,
            tick(self.real_time),
            tick(self.forward_edge),
            tick(self.backward_edge),
            tick(self.interrupt),
            self.platform,
            self.technique
        )
    }
}

/// All rows of Table I, in the paper's order (EILID last).
pub fn table1() -> Vec<Table1Row> {
    vec![
        Table1Row {
            method: Method::Cfi,
            work: "HAFIX",
            real_time: true,
            forward_edge: false,
            backward_edge: true,
            interrupt: false,
            platform: "Intel Siskiyou Peak",
            technique: "Extends Intel ISA with shadow stack",
        },
        Table1Row {
            method: Method::Cfi,
            work: "HCFI",
            real_time: true,
            forward_edge: true,
            backward_edge: true,
            interrupt: false,
            platform: "Leon3",
            technique: "Extends Sparc V8 ISA with shadow stack and labels",
        },
        Table1Row {
            method: Method::Cfi,
            work: "FIXER",
            real_time: true,
            forward_edge: true,
            backward_edge: true,
            interrupt: false,
            platform: "RocketChip",
            technique: "Extends RISC-V ISA with shadow stack",
        },
        Table1Row {
            method: Method::Cfi,
            work: "Silhouette",
            real_time: true,
            forward_edge: true,
            backward_edge: true,
            interrupt: true,
            platform: "ARMv7-M",
            technique: "Uses ARM MPU for hardened shadow-stacks and labels",
        },
        Table1Row {
            method: Method::Cfi,
            work: "CaRE",
            real_time: true,
            forward_edge: false,
            backward_edge: true,
            interrupt: true,
            platform: "ARMv8-M",
            technique: "Uses ARM TrustZone for shadow stack & nested interrupts",
        },
        Table1Row {
            method: Method::Cfa,
            work: "Tiny-CFA",
            real_time: false,
            forward_edge: true,
            backward_edge: true,
            interrupt: false,
            platform: "openMSP430",
            technique: "Hybrid CFA with shadow stack",
        },
        Table1Row {
            method: Method::Cfa,
            work: "ACFA",
            real_time: false,
            forward_edge: true,
            backward_edge: true,
            interrupt: true,
            platform: "openMSP430",
            technique: "Active hybrid CFA with secure auditing of code",
        },
        Table1Row {
            method: Method::Cfa,
            work: "LO-FAT",
            real_time: false,
            forward_edge: true,
            backward_edge: true,
            interrupt: false,
            platform: "Pulpino",
            technique: "Hardware-based CFA solution",
        },
        Table1Row {
            method: Method::Cfa,
            work: "CFA+",
            real_time: false,
            forward_edge: true,
            backward_edge: true,
            interrupt: true,
            platform: "ARMv8.5-A",
            technique: "Leverages ARM's Branch Target Identification",
        },
        Table1Row {
            method: Method::Cfi,
            work: "EILID",
            real_time: true,
            forward_edge: true,
            backward_edge: true,
            interrupt: true,
            platform: "openMSP430",
            technique: "Uses CASU for shadow stack",
        },
    ]
}

/// Renders the whole table as text (used by the Table I harness binary).
pub fn render_table1() -> String {
    let mut out =
        String::from("Method Work        RT   F    B    Int  Platform           Technique\n");
    for row in table1() {
        out.push_str(&row.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_ten_rows_and_ends_with_eilid() {
        let rows = table1();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows.last().unwrap().work, "EILID");
    }

    #[test]
    fn eilid_is_the_only_low_end_real_time_technique() {
        let rows = table1();
        let low_end_real_time: Vec<&Table1Row> = rows
            .iter()
            .filter(|r| r.real_time && r.platform == "openMSP430")
            .collect();
        assert_eq!(low_end_real_time.len(), 1);
        assert_eq!(low_end_real_time[0].work, "EILID");
    }

    #[test]
    fn cfa_rows_are_never_real_time() {
        for row in table1() {
            if row.method == Method::Cfa {
                assert!(
                    !row.real_time,
                    "{} is CFA and cannot be real-time",
                    row.work
                );
            }
        }
    }

    #[test]
    fn rendering_contains_all_works() {
        let rendered = render_table1();
        for row in table1() {
            assert!(rendered.contains(row.work));
        }
    }
}
