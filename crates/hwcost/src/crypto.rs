//! Cost model for the pluggable [`CryptoProvider`] backends.
//!
//! The collective-attestation verifier routes its bulk hash/MAC work
//! through a [`CryptoProvider`](eilid_casu::CryptoProvider); this
//! module prices a sweep's crypto under each backend the same way
//! [`crate::model`] prices the monitor: structurally, from operation
//! counts, with per-component costs calibrated against the published
//! figures the simulation follows (SHA-256 compression counts for the
//! software paths, the ECC608 datasheet command model for the offload).
//!
//! Two workload shapes are priced:
//!
//! * a **per-device sweep** — one report-MAC verification per device,
//!   and the operator re-verifies nothing (the gateway ships per-device
//!   verdicts);
//! * an **aggregated sweep** — the gateway additionally folds evidence
//!   leaves into per-shard trees and MACs one root per shard, and the
//!   operator verifies at most `shards` root MACs instead of trusting
//!   per-device verdicts.
//!
//! The aggregation overhead (leaves + nodes + root MACs) and the
//! operator-side saving (`devices` → `shards` verifications) both fall
//! out of the counts, so the rendered matrix doubles as the "is the
//! tree worth it" calculation at any fleet size.

use serde::{Deserialize, Serialize};

use eilid_casu::SimHwParams;

/// SHA-256 compressions to hash a `len`-byte message (9 bytes of
/// mandatory padding, 64-byte blocks).
pub fn sha_compressions(len: u64) -> u64 {
    (len + 9).div_ceil(64)
}

/// Bytes of the attestation-report MAC message (domain tag + challenge
/// + measurement).
pub const REPORT_MAC_MESSAGE_BYTES: u64 = 15 + 44;
/// Bytes of an aggregate evidence leaf preimage (tag + device + nonce +
/// range + measurement + report MAC).
pub const AGG_LEAF_MESSAGE_BYTES: u64 = 17 + 84;
/// Bytes of an aggregate interior-node preimage (tag + two children).
pub const AGG_NODE_MESSAGE_BYTES: u64 = 17 + 64;
/// Bytes of an aggregate root MAC message (tag + shard + epoch + count
/// + root).
pub const AGG_ROOT_MESSAGE_BYTES: u64 = 17 + 46;

/// Compressions of one cold HMAC (ipad + opad absorbs, inner message
/// finalize, outer digest finalize).
pub fn hmac_compressions_cold(message_len: u64) -> u64 {
    3 + sha_compressions(message_len)
}

/// Compressions of one warm HMAC from cached ipad/opad midstates — what
/// the batched backend pays per MAC once a device key's schedule is
/// cached.
pub fn hmac_compressions_warm(message_len: u64) -> u64 {
    1 + sha_compressions(message_len)
}

/// The verifier-side crypto operations one sweep performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CryptoWorkload {
    /// Devices swept (one report MAC verification each, device-unique
    /// keys).
    pub devices: u64,
    /// Non-empty shards (zero for a per-device sweep: nothing is
    /// aggregated, the operator trusts per-device verdicts instead).
    pub shards: u64,
    /// Evidence-leaf hashes (aggregated sweeps only: one per device).
    pub leaf_hashes: u64,
    /// Interior-node hashes (≈ one per leaf across all shard trees,
    /// padding included).
    pub node_hashes: u64,
    /// Aggregate-root MACs minted by the gateway — and the *only* MACs
    /// the operator must verify.
    pub root_macs: u64,
}

impl CryptoWorkload {
    /// A per-device sweep over `devices`: report MACs only.
    pub fn per_device_sweep(devices: u64) -> Self {
        CryptoWorkload {
            devices,
            shards: 0,
            leaf_hashes: 0,
            node_hashes: 0,
            root_macs: 0,
        }
    }

    /// An aggregated sweep over `devices` partitioned into `shards`
    /// trees: report MACs plus leaves, interior nodes and one root MAC
    /// per shard.
    pub fn aggregated_sweep(devices: u64, shards: u64) -> Self {
        CryptoWorkload {
            devices,
            shards,
            leaf_hashes: devices,
            node_hashes: devices,
            root_macs: shards,
        }
    }

    /// MAC verifications the *operator* performs to accept this sweep:
    /// every root MAC for an aggregated sweep, every device otherwise.
    pub fn operator_verifications(&self) -> u64 {
        if self.root_macs > 0 {
            self.root_macs
        } else {
            self.devices
        }
    }
}

/// One priced backend.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProviderPrice {
    /// Backend name, as [`CryptoProvider::name`](eilid_casu::CryptoProvider::name)
    /// reports it.
    pub provider: &'static str,
    /// SHA-256 compressions the host CPU runs.
    pub host_compressions: u64,
    /// Microseconds a serial-bus secure element spends (zero for the
    /// software backends).
    pub offload_micros: f64,
}

impl ProviderPrice {
    /// Total sweep-crypto microseconds at `compression_micros` per
    /// host compression. The constant is the caller's to measure: the
    /// scalar schedule in `eilid_casu::sha256` runs ~0.33 µs per
    /// compression on a typical x86-64 core, the SHA-NI path ~0.08 µs
    /// — the compression *counts* priced here are identical either
    /// way, which is why the model is parametric in the constant.
    pub fn total_micros(&self, compression_micros: f64) -> f64 {
        self.host_compressions as f64 * compression_micros + self.offload_micros
    }
}

fn workload_hash_compressions(workload: &CryptoWorkload) -> u64 {
    workload.leaf_hashes * sha_compressions(AGG_LEAF_MESSAGE_BYTES)
        + workload.node_hashes * sha_compressions(AGG_NODE_MESSAGE_BYTES)
}

/// Prices `workload` under the software backend: every MAC is cold
/// (four-compression key schedule included), every hash runs on the
/// host.
pub fn price_software(workload: &CryptoWorkload) -> ProviderPrice {
    ProviderPrice {
        provider: "software",
        host_compressions: workload.devices * hmac_compressions_cold(REPORT_MAC_MESSAGE_BYTES)
            + workload.root_macs * hmac_compressions_cold(AGG_ROOT_MESSAGE_BYTES)
            + workload_hash_compressions(workload),
        offload_micros: 0.0,
    }
}

/// Prices `workload` under the batched backend: device keys are stable
/// across sweeps, so every report MAC runs warm from a cached schedule
/// (the steady state the schedule cache exists for); shard keys too.
pub fn price_batched(workload: &CryptoWorkload) -> ProviderPrice {
    ProviderPrice {
        provider: "batched",
        host_compressions: workload.devices * hmac_compressions_warm(REPORT_MAC_MESSAGE_BYTES)
            + workload.root_macs * hmac_compressions_warm(AGG_ROOT_MESSAGE_BYTES)
            + workload_hash_compressions(workload),
        offload_micros: 0.0,
    }
}

/// Prices `workload` under the simulated ECC608-style offload: every
/// MAC and hash becomes one serial-bus command (fixed execution cost
/// plus per-byte transfer), and the host runs no compressions.
pub fn price_sim_hw(workload: &CryptoWorkload, params: SimHwParams) -> ProviderPrice {
    let ops = workload.devices + workload.root_macs + workload.leaf_hashes + workload.node_hashes;
    let bytes = workload.devices * REPORT_MAC_MESSAGE_BYTES
        + workload.root_macs * AGG_ROOT_MESSAGE_BYTES
        + workload.leaf_hashes * AGG_LEAF_MESSAGE_BYTES
        + workload.node_hashes * AGG_NODE_MESSAGE_BYTES;
    ProviderPrice {
        provider: "sim-hw",
        host_compressions: 0,
        offload_micros: ops as f64 * params.op_micros + bytes as f64 * params.byte_micros,
    }
}

/// All three backends priced for `workload`, in provider order.
pub fn price_providers(workload: &CryptoWorkload) -> Vec<ProviderPrice> {
    vec![
        price_software(workload),
        price_batched(workload),
        price_sim_hw(workload, SimHwParams::ecc608()),
    ]
}

/// Renders the provider comparison matrix for a fleet of `devices`
/// across `shards` shards: one row per backend and sweep shape, plus
/// the operator-verification comparison row the aggregation tree earns
/// its keep with.
pub fn render_provider_matrix(devices: u64, shards: u64, compression_micros: f64) -> String {
    let per_device = CryptoWorkload::per_device_sweep(devices);
    let aggregated = CryptoWorkload::aggregated_sweep(devices, shards);
    let mut out = format!(
        "CryptoProvider cost matrix ({devices} devices, {shards} shards, \
         {compression_micros} µs/compression)\n\
         provider  sweep       host compressions   offload µs   total µs\n"
    );
    for (label, workload) in [("per-device", &per_device), ("aggregated", &aggregated)] {
        for price in price_providers(workload) {
            out.push_str(&format!(
                "{:<9} {:<11} {:>17} {:>12.0} {:>10.0}\n",
                price.provider,
                label,
                price.host_compressions,
                price.offload_micros,
                price.total_micros(compression_micros),
            ));
        }
    }
    out.push_str(&format!(
        "operator  verifications: per-device {} vs aggregated {} ({}x fewer)\n",
        per_device.operator_verifications(),
        aggregated.operator_verifications(),
        per_device.operator_verifications() / aggregated.operator_verifications().max(1),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_counts_follow_block_structure() {
        assert_eq!(sha_compressions(0), 1);
        assert_eq!(sha_compressions(55), 1);
        assert_eq!(sha_compressions(56), 2);
        assert_eq!(sha_compressions(64), 2);
        assert_eq!(sha_compressions(119), 2);
        assert_eq!(sha_compressions(120), 3);
        // The 59-byte report message straddles the padding boundary.
        assert_eq!(hmac_compressions_cold(REPORT_MAC_MESSAGE_BYTES), 5);
        assert_eq!(hmac_compressions_warm(REPORT_MAC_MESSAGE_BYTES), 3);
    }

    #[test]
    fn batched_beats_software_and_offload_scales_with_ops() {
        let sweep = CryptoWorkload::per_device_sweep(1000);
        let software = price_software(&sweep);
        let batched = price_batched(&sweep);
        assert_eq!(software.host_compressions, 5000);
        assert_eq!(batched.host_compressions, 3000);
        assert!(batched.host_compressions < software.host_compressions);

        let sim = price_sim_hw(&sweep, SimHwParams::ecc608());
        assert_eq!(sim.host_compressions, 0);
        // 1000 commands at 1100 µs + 59 000 transferred bytes at 1 µs.
        assert!((sim.offload_micros - 1_159_000.0).abs() < 1e-6);
    }

    #[test]
    fn aggregation_compresses_operator_work_sublinearly() {
        let per_device = CryptoWorkload::per_device_sweep(1000);
        let aggregated = CryptoWorkload::aggregated_sweep(1000, 16);
        assert_eq!(per_device.operator_verifications(), 1000);
        assert_eq!(aggregated.operator_verifications(), 16);
        // The gateway pays for the tree (leaves + nodes + root MACs)...
        let gateway_overhead = price_software(&aggregated).host_compressions
            - price_software(&per_device).host_compressions;
        assert!(gateway_overhead > 0);
        // ...but stays linear in devices, while the operator drops from
        // O(devices) to O(shards).
        assert!(gateway_overhead < 6 * 1000);
    }

    #[test]
    fn matrix_renders_every_backend_and_the_operator_row() {
        let matrix = render_provider_matrix(1000, 16, 0.25);
        for name in ["software", "batched", "sim-hw"] {
            assert!(matrix.contains(name), "missing {name}");
        }
        assert!(matrix.contains("per-device"));
        assert!(matrix.contains("aggregated"));
        assert!(matrix.contains("per-device 1000 vs aggregated 16 (62x fewer)"));
    }
}
