//! Criterion bench for the SS VI micro-costs: wall-clock cost of measuring the
//! per-call store/check overhead (and of the shadow-stack reference model).

use criterion::{criterion_group, criterion_main, Criterion};
use eilid::sw::ShadowStack;
use eilid_bench::measure_micro_costs;

fn bench_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_store_check");
    group.sample_size(10);
    group.bench_function("measure_micro_costs", |b| {
        b.iter(|| {
            let costs = measure_micro_costs(&eilid::EilidConfig::default());
            assert!(costs.check_cycles > 0.0);
            costs.total_cycles_per_call
        })
    });
    group.bench_function("shadow_stack_model_push_pop", |b| {
        b.iter(|| {
            let mut stack = ShadowStack::new(112);
            for i in 0..100u16 {
                stack.store_return_address(0xE000 + 2 * i).unwrap();
            }
            for i in (0..100u16).rev() {
                stack.check_return_address(0xE000 + 2 * i).unwrap();
            }
            stack.max_depth()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
