//! Criterion bench for the design-choice ablations (register-resident
//! shadow-stack index and forward-edge protection).

use criterion::{criterion_group, criterion_main, Criterion};
use eilid::{DeviceBuilder, EilidConfig};
use eilid_workloads::WorkloadId;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_shadow_stack");
    group.sample_size(10);
    let source = WorkloadId::LightSensor.workload().source;

    group.bench_function("index_in_register", |b| {
        b.iter(|| {
            let mut device = DeviceBuilder::new()
                .config(EilidConfig::default())
                .build_eilid(&source)
                .unwrap();
            device.run_for(20_000_000).cycles()
        })
    });
    group.bench_function("index_in_memory", |b| {
        let config = EilidConfig {
            index_in_register: false,
            shadow_stack_capacity: 96,
            ..EilidConfig::default()
        };
        b.iter(|| {
            let mut device = DeviceBuilder::new()
                .config(config.clone())
                .build_eilid(&source)
                .unwrap();
            device.run_for(20_000_000).cycles()
        })
    });

    let charlie = WorkloadId::Charlieplexing.workload().source;
    group.bench_function("forward_edge_enabled", |b| {
        b.iter(|| {
            let mut device = DeviceBuilder::new().build_eilid(&charlie).unwrap();
            device.run_for(30_000_000).cycles()
        })
    });
    group.bench_function("forward_edge_disabled", |b| {
        b.iter(|| {
            let mut device = DeviceBuilder::new()
                .config(EilidConfig::backward_edge_only())
                .build_eilid(&charlie)
                .unwrap();
            device.run_for(30_000_000).cycles()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
