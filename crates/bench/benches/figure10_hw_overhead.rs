//! Criterion bench for Figure 10: evaluating the hardware-cost model and the
//! per-step cost of the hardware monitor itself (the component whose FPGA
//! cost Figure 10 reports).

use criterion::{criterion_group, criterion_main, Criterion};
use eilid::DeviceBuilder;
use eilid_hwcost::{eilid_monitor_cost, figure10};
use eilid_workloads::WorkloadId;

fn bench_hw(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure10_hw_overhead");
    group.sample_size(20);
    group.bench_function("cost_model", |b| {
        b.iter(|| {
            let cost = eilid_monitor_cost(
                &eilid_casu::CasuPolicy::default(),
                &eilid::EilidConfig::default(),
            );
            (cost.luts, cost.registers, figure10().len())
        })
    });
    // Per-step monitor cost: simulate the same workload with and without the
    // monitor attached (monitored vs. baseline device on identical code).
    let source = WorkloadId::LightSensor.workload().source;
    group.bench_function("simulation_without_monitor", |b| {
        b.iter(|| {
            let mut device = DeviceBuilder::new().build_baseline(&source).unwrap();
            device.run_for(20_000_000).cycles()
        })
    });
    group.bench_function("simulation_with_monitor", |b| {
        b.iter(|| {
            let mut device = DeviceBuilder::new().build_monitored_raw(&source).unwrap();
            device.run_for(20_000_000).cycles()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hw);
criterion_main!(benches);
