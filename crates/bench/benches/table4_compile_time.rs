//! Criterion bench for Table IV's compile-time column: single-iteration
//! baseline build vs. the three-iteration EILID pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eilid::{EilidConfig, InstrumentedBuild, Runtime};
use eilid_casu::{CasuPolicy, MemoryLayout};
use eilid_workloads::WorkloadId;

fn bench_compile(c: &mut Criterion) {
    let runtime = Runtime::build(
        &EilidConfig::default(),
        &MemoryLayout::default(),
        &CasuPolicy::default(),
    )
    .unwrap();
    let pipeline = InstrumentedBuild::new(EilidConfig::default());

    let mut group = c.benchmark_group("table4_compile_time");
    group.sample_size(20);
    for id in WorkloadId::ALL {
        let source = id.workload().source;
        group.bench_with_input(
            BenchmarkId::new("original", id.name()),
            &source,
            |b, src| b.iter(|| eilid_asm::assemble(src).unwrap().code_size()),
        );
        group.bench_with_input(BenchmarkId::new("eilid", id.name()), &source, |b, src| {
            b.iter(|| {
                pipeline
                    .run(src, &runtime)
                    .unwrap()
                    .metrics
                    .instrumented_binary_bytes
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
