//! Criterion bench for the pluggable `CryptoProvider` backends: the
//! measured cost of the verifier-side HMAC workload under each backend,
//! alongside the structural prices `eilid_hwcost::crypto` derives for
//! the same sweep shapes (the comparison row of the hwcost matrix).

use criterion::{criterion_group, criterion_main, Criterion};
use eilid_casu::{BatchedProvider, CryptoProvider, SimHwProvider, SoftwareProvider};
use eilid_hwcost::{price_providers, CryptoWorkload};

/// One sweep's worth of report-MAC verifications: 256 devices, the
/// 59-byte report message, a stable per-device key.
fn sweep_macs(provider: &dyn CryptoProvider) -> u64 {
    let message = [0xA7u8; 59];
    let mut folded = 0u64;
    for device in 0u64..256 {
        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&device.to_le_bytes());
        let tag = provider.hmac(&key, &message);
        folded = folded.wrapping_add(u64::from(tag[0]));
    }
    folded
}

fn bench_providers(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto_providers");
    group.sample_size(20);
    group.bench_function("software_sweep_macs", |b| {
        let provider = SoftwareProvider;
        b.iter(|| sweep_macs(&provider))
    });
    group.bench_function("batched_sweep_macs", |b| {
        // The schedule cache persists across iterations — the steady
        // state the backend exists for.
        let provider = BatchedProvider::new();
        b.iter(|| sweep_macs(&provider))
    });
    group.bench_function("sim_hw_sweep_macs", |b| {
        let provider = SimHwProvider::new();
        b.iter(|| sweep_macs(&provider))
    });
    group.bench_function("hwcost_price_matrix", |b| {
        b.iter(|| {
            let per_device = price_providers(&CryptoWorkload::per_device_sweep(1000));
            let aggregated = price_providers(&CryptoWorkload::aggregated_sweep(1000, 16));
            (per_device.len(), aggregated.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_providers);
criterion_main!(benches);
