//! Criterion bench for fleet-scale batched attestation: one full sweep
//! over fleets of increasing size, single- and multi-threaded, under
//! both measurement schemes (flat SHA-256 vs incremental Merkle).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eilid_casu::{DeviceKey, MeasurementScheme};
use eilid_fleet::FleetBuilder;

fn bench_fleet_attestation(c: &mut Criterion) {
    let root = DeviceKey::new(b"bench-fleet-root-key-0123456789").unwrap();

    let mut group = c.benchmark_group("fleet_attestation");
    group.sample_size(10);
    for scheme in [MeasurementScheme::FlatSha256, MeasurementScheme::Merkle] {
        for &devices in &[64usize, 256] {
            for &threads in &[1usize, 4] {
                let (mut fleet, mut verifier) = FleetBuilder::new(root.clone())
                    .devices(devices)
                    .threads(threads)
                    .measurement(scheme)
                    .build()
                    .unwrap();
                group.bench_with_input(
                    BenchmarkId::new(format!("sweep/{scheme}/{threads}t"), devices),
                    &devices,
                    |b, &n| {
                        b.iter(|| {
                            let report = verifier.sweep(&mut fleet);
                            assert_eq!(report.devices.len(), n);
                            report.devices_per_second()
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fleet_attestation);
criterion_main!(benches);
