//! Criterion bench for Table IV's running-time column: simulates each
//! workload to completion, original vs. EILID-protected.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eilid::DeviceBuilder;
use eilid_workloads::WorkloadId;

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_runtime");
    group.sample_size(10);
    for id in WorkloadId::ALL {
        let source = id.workload().source;
        group.bench_with_input(
            BenchmarkId::new("original", id.name()),
            &source,
            |b, src| {
                b.iter(|| {
                    let mut device = DeviceBuilder::new().build_baseline(src).unwrap();
                    let outcome = device.run_for(20_000_000);
                    assert!(outcome.is_completed());
                    outcome.cycles()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("eilid", id.name()), &source, |b, src| {
            b.iter(|| {
                let mut device = DeviceBuilder::new().build_eilid(src).unwrap();
                let outcome = device.run_for(20_000_000);
                assert!(outcome.is_completed());
                outcome.cycles()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
