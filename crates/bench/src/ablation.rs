//! Ablation studies for the design choices the paper calls out.
//!
//! * **Register-resident shadow-stack index** (§V-B): the paper keeps the
//!   index in `r5` to avoid a memory round-trip per trusted-software call.
//!   [`index_register_ablation`] measures the run-time cost of moving the
//!   index into secure memory instead.
//! * **Forward-edge protection** (P3): [`forward_edge_ablation`] separates
//!   the cost of indirect-call checks from backward-edge protection on the
//!   workload that actually performs indirect calls.
//! * **Shadow-stack sizing** (§V): [`shadow_stack_sizing`] reports the
//!   secure-memory footprint across capacities together with the depth the
//!   workloads actually reach, confirming the paper's claim that 256 bytes
//!   comfortably hold the metadata of typical applications.

use serde::{Deserialize, Serialize};

use eilid::{DeviceBuilder, EilidConfig};
use eilid_casu::MemoryLayout;
use eilid_workloads::WorkloadId;

/// Result of comparing two device configurations on one workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Which application.
    pub workload: WorkloadId,
    /// Cycles with the paper's default configuration.
    pub default_cycles: u64,
    /// Cycles with the ablated configuration.
    pub ablated_cycles: u64,
}

impl AblationRow {
    /// Relative slowdown (positive) or speedup (negative) of the ablated
    /// configuration.
    pub fn delta(&self) -> f64 {
        self.ablated_cycles as f64 / self.default_cycles as f64 - 1.0
    }
}

fn run_cycles(source: &str, config: &EilidConfig, max_cycles: u64) -> u64 {
    let mut device = DeviceBuilder::new()
        .config(config.clone())
        .build_eilid(source)
        .expect("workload builds");
    let outcome = device.run_for(max_cycles);
    assert!(
        outcome.is_completed(),
        "ablation run did not complete: {outcome}"
    );
    outcome.cycles()
}

/// Measures the cost of keeping the shadow-stack index in secure memory
/// instead of register `r5`, for each given workload.
pub fn index_register_ablation(workloads: &[WorkloadId]) -> Vec<AblationRow> {
    let default_config = EilidConfig::default();
    // A smaller shadow stack leaves room for the in-memory index word.
    let ablated_config = EilidConfig {
        index_in_register: false,
        shadow_stack_capacity: 96,
        ..EilidConfig::default()
    };
    workloads
        .iter()
        .map(|id| {
            let source = id.workload().source;
            AblationRow {
                workload: *id,
                default_cycles: run_cycles(&source, &default_config, 30_000_000),
                ablated_cycles: run_cycles(&source, &ablated_config, 30_000_000),
            }
        })
        .collect()
}

/// Measures the cost of forward-edge (P3) protection by disabling it on the
/// given workloads (only meaningful for workloads with indirect calls).
pub fn forward_edge_ablation(workloads: &[WorkloadId]) -> Vec<AblationRow> {
    let default_config = EilidConfig::default();
    let ablated_config = EilidConfig::backward_edge_only();
    workloads
        .iter()
        .map(|id| {
            let source = id.workload().source;
            AblationRow {
                workload: *id,
                default_cycles: run_cycles(&source, &default_config, 30_000_000),
                ablated_cycles: run_cycles(&source, &ablated_config, 30_000_000),
            }
        })
        .collect()
}

/// One row of the shadow-stack sizing sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShadowSizingRow {
    /// Configured capacity in 16-bit entries.
    pub capacity: u16,
    /// Secure-memory footprint in bytes (stack + function table + count).
    pub secure_dmem_bytes: usize,
    /// Whether the configuration fits the default 256-byte secure region.
    pub fits_default_region: bool,
}

/// Sweeps shadow-stack capacities and reports their secure-memory footprint.
pub fn shadow_stack_sizing(capacities: &[u16]) -> Vec<ShadowSizingRow> {
    let layout = MemoryLayout::default();
    capacities
        .iter()
        .map(|&capacity| {
            let config = EilidConfig {
                shadow_stack_capacity: capacity,
                ..EilidConfig::default()
            };
            ShadowSizingRow {
                capacity,
                secure_dmem_bytes: config.secure_dmem_bytes(),
                fits_default_region: config.validate(&layout).is_ok(),
            }
        })
        .collect()
}

/// Renders an ablation result set.
pub fn render_ablation(title: &str, rows: &[AblationRow]) -> String {
    let mut out = format!("{title}\n");
    for row in rows {
        out.push_str(&format!(
            "  {:<18} default {:>9} cycles   ablated {:>9} cycles   delta {:+.2}%\n",
            row.workload.name(),
            row.default_cycles,
            row.ablated_cycles,
            row.delta() * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_resident_index_is_slower() {
        let rows = index_register_ablation(&[WorkloadId::LightSensor]);
        assert_eq!(rows.len(), 1);
        assert!(
            rows[0].ablated_cycles > rows[0].default_cycles,
            "keeping the index in r5 must be the faster option"
        );
        assert!(rows[0].delta() > 0.0);
        assert!(!render_ablation("index", &rows).is_empty());
    }

    #[test]
    fn forward_edge_costs_cycles_only_where_indirect_calls_exist() {
        let rows = forward_edge_ablation(&[WorkloadId::Charlieplexing]);
        assert!(
            rows[0].default_cycles > rows[0].ablated_cycles,
            "disabling P3 must remove the indirect-call checks"
        );
    }

    #[test]
    fn shadow_stack_sizing_matches_the_paper_default() {
        let rows = shadow_stack_sizing(&[16, 64, 112, 128, 256]);
        assert_eq!(rows.len(), 5);
        let default = rows.iter().find(|r| r.capacity == 112).unwrap();
        assert_eq!(default.secure_dmem_bytes, 256);
        assert!(default.fits_default_region);
        let too_big = rows.iter().find(|r| r.capacity == 256).unwrap();
        assert!(!too_big.fits_default_region);
    }
}
