//! Fleet-scale attestation throughput: the perf baseline future
//! scaling work (sharded verifiers, batched MACs, async transports)
//! measures itself against.

use eilid_casu::DeviceKey;
use eilid_fleet::{FleetBuilder, HealthClass};

/// One throughput measurement row.
#[derive(Debug, Clone)]
pub struct FleetThroughputRow {
    /// Devices in the fleet.
    pub devices: usize,
    /// Worker threads used by the sweep.
    pub threads: usize,
    /// Wall-clock seconds for one full attestation sweep.
    pub sweep_seconds: f64,
    /// Devices verified per second.
    pub devices_per_second: f64,
}

/// Builds a fleet of `devices` and times one full attestation sweep on
/// `threads` workers.
///
/// # Panics
///
/// Panics if the fleet fails to build or any device fails attestation —
/// a throughput number for a broken sweep would be meaningless.
pub fn measure_attestation_throughput(devices: usize, threads: usize) -> FleetThroughputRow {
    let root = DeviceKey::new(b"bench-fleet-root-key-0123456789").expect("key length");
    let (mut fleet, mut verifier) = FleetBuilder::new(root)
        .devices(devices)
        .threads(threads)
        .build()
        .expect("bench fleet builds");

    let report = verifier.sweep(&mut fleet);
    assert_eq!(
        report.count(HealthClass::Attested),
        devices,
        "bench fleet must attest clean"
    );
    // The sweep measures itself; reuse its numbers rather than
    // re-timing around the call.
    FleetThroughputRow {
        devices,
        threads,
        sweep_seconds: report.elapsed.as_secs_f64(),
        devices_per_second: report.devices_per_second(),
    }
}

/// Renders throughput rows as an aligned text table.
pub fn render_fleet_throughput(rows: &[FleetThroughputRow]) -> String {
    let mut out = String::from(
        "Fleet attestation throughput (full-PMEM challenge per device)\n\
         devices  threads  sweep [s]  devices/s\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:>7}  {:>7}  {:>9.4}  {:>9.0}\n",
            row.devices, row.threads, row.sweep_seconds, row.devices_per_second
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_measurement_is_sane() {
        let row = measure_attestation_throughput(14, 2);
        assert_eq!(row.devices, 14);
        assert!(row.sweep_seconds > 0.0);
        assert!(row.devices_per_second > 0.0);
    }

    #[test]
    fn render_includes_every_row() {
        let rows = vec![
            FleetThroughputRow {
                devices: 100,
                threads: 1,
                sweep_seconds: 0.5,
                devices_per_second: 200.0,
            },
            FleetThroughputRow {
                devices: 100,
                threads: 4,
                sweep_seconds: 0.25,
                devices_per_second: 400.0,
            },
        ];
        let table = render_fleet_throughput(&rows);
        assert_eq!(table.lines().count(), 4);
        assert!(table.contains("400"));
    }
}
