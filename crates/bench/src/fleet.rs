//! Fleet-scale attestation throughput: the perf baseline future
//! scaling work (batched MACs, async transports, wire protocols)
//! measures itself against.
//!
//! Two measurement modes are compared head-to-head:
//!
//! * **flat** — every challenge re-hashes the device's full 6 KiB PMEM
//!   range with SHA-256 ([`MeasurementScheme::FlatSha256`]);
//! * **incremental** — devices maintain a chunked Merkle tree kept
//!   coherent by the bus's dirty-granule tracking, so a sweep over a
//!   mostly-clean fleet re-hashes only the few dirtied leaves
//!   ([`MeasurementScheme::Merkle`]), and the verifier's sharded key
//!   caches skip per-sweep key re-derivation.
//!
//! [`render_bench_json`] serialises a comparison into `BENCH_fleet.json`
//! so the repo records a throughput trajectory PRs can regress against.

use eilid_casu::{DeviceKey, MeasurementScheme};
use eilid_fleet::{Fleet, FleetBuilder, HealthClass, Verifier};

/// One throughput measurement row.
#[derive(Debug, Clone)]
pub struct FleetThroughputRow {
    /// Devices in the fleet.
    pub devices: usize,
    /// Worker threads used by the sweep.
    pub threads: usize,
    /// Measurement scheme the fleet ran.
    pub scheme: MeasurementScheme,
    /// Wall-clock seconds for the timed attestation sweep.
    pub sweep_seconds: f64,
    /// Devices verified per second.
    pub devices_per_second: f64,
}

/// Head-to-head comparison of the two schemes on identical fleets.
#[derive(Debug, Clone)]
pub struct SweepComparison {
    /// Flat-measurement row.
    pub flat: FleetThroughputRow,
    /// Incremental (Merkle) row.
    pub incremental: FleetThroughputRow,
    /// Devices whose PMEM was dirtied between sweeps (the "mostly
    /// clean" fraction of the fleet exercising the re-hash path).
    pub dirtied_devices: usize,
}

impl SweepComparison {
    /// Incremental speedup over flat (devices/s ratio).
    pub fn speedup(&self) -> f64 {
        if self.flat.devices_per_second <= 0.0 {
            return f64::INFINITY;
        }
        self.incremental.devices_per_second / self.flat.devices_per_second
    }
}

/// Every `DIRTY_STRIDE`-th device is dirtied between the warm-up and the
/// timed sweep (~1% of the fleet) — the single source of truth for the
/// "mostly clean" fraction, shared by the measurement and the
/// `dirtied_devices` metadata recorded in `BENCH_fleet.json`.
const DIRTY_STRIDE: usize = 100;

fn bench_root() -> DeviceKey {
    DeviceKey::new(b"bench-fleet-root-key-0123456789").expect("key length")
}

fn build(devices: usize, threads: usize, scheme: MeasurementScheme) -> (Fleet, Verifier) {
    FleetBuilder::new(bench_root())
        .devices(devices)
        .threads(threads)
        .measurement(scheme)
        .build()
        .expect("bench fleet builds")
}

/// Dirties one granule of PMEM on every `stride`-th device (an
/// authenticated-update-sized touch), so the incremental sweep does real
/// re-hash work instead of serving 100% cached roots. Returns how many
/// devices were touched. The write XORs with 0 — content is unchanged,
/// so the fleet still attests clean, but the dirty-tracking (which
/// watches bus writes, not diffs) must re-hash the touched leaf.
fn dirty_some_devices(fleet: &mut Fleet, stride: usize) -> usize {
    let mut touched = 0;
    let count = fleet.len();
    for index in (0..count).step_by(stride.max(1)) {
        let device = &mut fleet.devices_mut()[index];
        let memory = &mut device.device_mut().cpu_mut().memory;
        let value = memory.read_byte(0xE040);
        memory.write_byte(0xE040, value);
        touched += 1;
    }
    touched
}

/// Builds a fleet of `devices` under `scheme` and times one steady-state
/// attestation sweep on `threads` workers.
///
/// "Steady state" means: one warm-up sweep first (populates the
/// verifier's key caches and serves the initial roots), then ~1% of
/// devices dirtied, then the timed sweep. For the flat scheme the warm-up
/// changes nothing (every sweep re-hashes everything); for the
/// incremental scheme this measures the honest recurring cost — mostly
/// cache-served roots plus a few leaf re-hashes — which is what a
/// periodic fleet sweep actually pays.
///
/// # Panics
///
/// Panics if the fleet fails to build or any device fails attestation —
/// a throughput number for a broken sweep would be meaningless.
pub fn measure_sweep_throughput(
    devices: usize,
    threads: usize,
    scheme: MeasurementScheme,
) -> FleetThroughputRow {
    let (mut fleet, mut verifier) = build(devices, threads, scheme);
    let warmup = verifier.sweep(&mut fleet);
    assert_eq!(
        warmup.count(HealthClass::Attested),
        devices,
        "bench fleet must attest clean"
    );
    let touched = dirty_some_devices(&mut fleet, DIRTY_STRIDE);
    debug_assert_eq!(touched, devices.div_ceil(DIRTY_STRIDE));

    let report = verifier.sweep(&mut fleet);
    assert_eq!(report.count(HealthClass::Attested), devices);
    // The sweep measures itself; reuse its numbers rather than
    // re-timing around the call.
    FleetThroughputRow {
        devices,
        threads,
        scheme,
        sweep_seconds: report.elapsed.as_secs_f64(),
        devices_per_second: report.devices_per_second(),
    }
}

/// Compatibility shim for the original single-scheme scenario: measures
/// the fleet's default (incremental) scheme.
pub fn measure_attestation_throughput(devices: usize, threads: usize) -> FleetThroughputRow {
    measure_sweep_throughput(devices, threads, MeasurementScheme::Merkle)
}

/// Times flat vs incremental steady-state sweeps over identical,
/// mostly-clean fleets (~1% of devices dirtied between warm-up and the
/// timed sweep).
pub fn compare_sweep_throughput(devices: usize, threads: usize) -> SweepComparison {
    let flat = measure_sweep_throughput(devices, threads, MeasurementScheme::FlatSha256);
    let incremental = measure_sweep_throughput(devices, threads, MeasurementScheme::Merkle);
    SweepComparison {
        flat,
        incremental,
        dirtied_devices: devices.div_ceil(DIRTY_STRIDE),
    }
}

/// Renders throughput rows as an aligned text table.
pub fn render_fleet_throughput(rows: &[FleetThroughputRow]) -> String {
    let mut out = String::from(
        "Fleet attestation throughput (full-PMEM challenge per device)\n\
         devices  threads  scheme       sweep [s]  devices/s\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:>7}  {:>7}  {:<11}  {:>9.4}  {:>9.0}\n",
            row.devices,
            row.threads,
            row.scheme.to_string(),
            row.sweep_seconds,
            row.devices_per_second
        ));
    }
    out
}

/// Renders a comparison as the `BENCH_fleet.json` record: a small,
/// stable, hand-written JSON object (the offline dependency set has no
/// serde_json) seeding the repo's perf trajectory.
pub fn render_bench_json(comparison: &SweepComparison) -> String {
    format!(
        "{{\n  \"bench\": \"fleet_sweep\",\n  \"devices\": {},\n  \"threads\": {},\n  \
         \"dirtied_devices\": {},\n  \"flat_devices_per_second\": {:.0},\n  \
         \"incremental_devices_per_second\": {:.0},\n  \"speedup\": {:.2}\n}}\n",
        comparison.flat.devices,
        comparison.flat.threads,
        comparison.dirtied_devices,
        comparison.flat.devices_per_second,
        comparison.incremental.devices_per_second,
        comparison.speedup(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_measurement_is_sane() {
        let row = measure_attestation_throughput(14, 2);
        assert_eq!(row.devices, 14);
        assert_eq!(row.scheme, MeasurementScheme::Merkle);
        assert!(row.sweep_seconds > 0.0);
        assert!(row.devices_per_second > 0.0);
    }

    #[test]
    fn comparison_measures_both_schemes() {
        let comparison = compare_sweep_throughput(14, 2);
        assert_eq!(comparison.flat.scheme, MeasurementScheme::FlatSha256);
        assert_eq!(comparison.incremental.scheme, MeasurementScheme::Merkle);
        assert!(comparison.speedup() > 0.0);
        assert_eq!(comparison.dirtied_devices, 1);
    }

    #[test]
    fn bench_json_is_well_formed() {
        let row = |scheme, dps| FleetThroughputRow {
            devices: 1000,
            threads: 4,
            scheme,
            sweep_seconds: 0.1,
            devices_per_second: dps,
        };
        let comparison = SweepComparison {
            flat: row(MeasurementScheme::FlatSha256, 30_000.0),
            incremental: row(MeasurementScheme::Merkle, 180_000.0),
            dirtied_devices: 10,
        };
        let json = render_bench_json(&comparison);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"speedup\": 6.00"));
        assert!(json.contains("\"flat_devices_per_second\": 30000"));
        // Braces balance (cheap well-formedness check without a parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn render_includes_every_row() {
        let rows = vec![
            FleetThroughputRow {
                devices: 100,
                threads: 1,
                scheme: MeasurementScheme::FlatSha256,
                sweep_seconds: 0.5,
                devices_per_second: 200.0,
            },
            FleetThroughputRow {
                devices: 100,
                threads: 4,
                scheme: MeasurementScheme::Merkle,
                sweep_seconds: 0.25,
                devices_per_second: 400.0,
            },
        ];
        let table = render_fleet_throughput(&rows);
        assert_eq!(table.lines().count(), 4);
        assert!(table.contains("400"));
        assert!(table.contains("merkle"));
        assert!(table.contains("flat-sha256"));
    }
}
