//! Text rendering of the paper's figures (Figure 10a/10b bar charts and the
//! instrumentation templates of Figures 3–8).

use eilid_hwcost::{figure10, TechniqueCost};

/// Renders one of the Figure 10 bar charts as ASCII art.
///
/// `select` extracts the plotted quantity (LUTs for 10a, registers for 10b).
pub fn render_bar_chart(
    title: &str,
    bars: &[TechniqueCost],
    select: impl Fn(&TechniqueCost) -> u32,
) -> String {
    let max = bars.iter().map(&select).max().unwrap_or(1).max(1);
    let width = 50usize;
    let mut out = format!("{title}\n");
    for bar in bars {
        let value = select(bar);
        let filled = (value as usize * width) / max as usize;
        out.push_str(&format!(
            "  {:<9} [{}] {:<52} {:>6}{}\n",
            bar.name,
            bar.method.label(),
            "#".repeat(filled.max(1)),
            value,
            if bar.exact { "" } else { " (approx.)" },
        ));
    }
    out
}

/// Renders Figure 10(a): additional LUTs.
pub fn render_figure10a() -> String {
    render_bar_chart(
        "Figure 10(a): additional LUTs over the respective baseline core",
        &figure10(),
        |b| b.cost.luts,
    )
}

/// Renders Figure 10(b): additional registers.
pub fn render_figure10b() -> String {
    render_bar_chart(
        "Figure 10(b): additional registers over the respective baseline core",
        &figure10(),
        |b| b.cost.registers,
    )
}

/// Renders the instrumentation templates of Figures 3–8 by instrumenting a
/// miniature program containing one instance of every site kind.
pub fn render_instrumentation_templates() -> String {
    let source = "    .org 0xe000
    .global main
    .isr timer_isr, 8
main:
    mov #0x0400, sp
    mov #handler, r13
    call #foo               ; Figure 3 site (direct call)
    call r13                ; Figure 8 site (indirect call)
    mov #0x00ff, &0x0100
hang:
    jmp hang
foo:
    ret                      ; Figure 4 site (return)
handler:
    ret
timer_isr:                   ; Figure 5 site (ISR entry)
    reti                     ; Figure 6 site (ISR exit)
";
    let config = eilid::EilidConfig::default();
    let runtime = eilid::Runtime::build(
        &config,
        &eilid_casu::MemoryLayout::default(),
        &eilid_casu::CasuPolicy::default(),
    )
    .expect("runtime builds");
    let artifacts = eilid::InstrumentedBuild::new(config)
        .run(source, &runtime)
        .expect("template program instruments");
    format!(
        "Original program:\n{source}\nInstrumented program (Figures 3-8 templates):\n{}",
        artifacts.instrumented_source
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_charts_render_every_technique() {
        let a = render_figure10a();
        let b = render_figure10b();
        for name in [
            "EILID", "HAFIX", "HCFI", "Tiny-CFA", "ACFA", "LO-FAT", "LiteHAX",
        ] {
            assert!(a.contains(name), "{name} missing from 10a");
            assert!(b.contains(name), "{name} missing from 10b");
        }
        assert!(a.contains("(approx.)"));
    }

    #[test]
    fn eilid_bar_is_the_shortest() {
        let chart = render_figure10a();
        let eilid_line = chart.lines().find(|l| l.contains("EILID")).unwrap();
        let acfa_line = chart.lines().find(|l| l.contains("ACFA")).unwrap();
        let count = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert!(count(eilid_line) < count(acfa_line));
    }

    #[test]
    fn template_rendering_shows_every_figure() {
        let rendered = render_instrumentation_templates();
        assert!(rendered.contains("NS_EILID_store_ra"));
        assert!(rendered.contains("NS_EILID_check_ra"));
        assert!(rendered.contains("NS_EILID_store_rfi"));
        assert!(rendered.contains("NS_EILID_check_rfi"));
        assert!(rendered.contains("NS_EILID_store_ind"));
        assert!(rendered.contains("NS_EILID_check_ind"));
    }
}
