//! Micro-cost measurement (§VI of the paper): per-call/interrupt overhead,
//! split into the store and check paths.
//!
//! The paper reports ≈25.2 µs of instrumentation overhead per function call
//! or interrupt, of which ≈11.8 µs is spent storing control-flow metadata
//! and ≈13.4 µs checking it, with 26 and 29 introduced instructions
//! respectively. This harness measures the same quantities on the simulator
//! by running a single-call microbenchmark and attributing every cycle spent
//! in the trampolines and the secure software to the store or check path
//! (selected by the dispatch register `r4`).

use serde::{Deserialize, Serialize};

use eilid::{DeviceBuilder, EilidConfig};
use eilid_msp430::cycles_to_micros;

/// Measured micro-costs of the EILID instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroCosts {
    /// Cycles attributed to the store path, per call.
    pub store_cycles: f64,
    /// Cycles attributed to the check path, per call.
    pub check_cycles: f64,
    /// Instructions executed on the store path, per call.
    pub store_instructions: f64,
    /// Instructions executed on the check path, per call.
    pub check_instructions: f64,
    /// Total extra cycles per protected call (EILID minus baseline), per
    /// call+return pair.
    pub total_cycles_per_call: f64,
    /// Simulated clock used to convert cycles to microseconds.
    pub clock_hz: u64,
}

impl MicroCosts {
    /// Store-path cost in microseconds.
    pub fn store_us(&self) -> f64 {
        cycles_to_micros(self.store_cycles.round() as u64, self.clock_hz)
    }

    /// Check-path cost in microseconds.
    pub fn check_us(&self) -> f64 {
        cycles_to_micros(self.check_cycles.round() as u64, self.clock_hz)
    }

    /// Total per-call overhead in microseconds.
    pub fn total_us(&self) -> f64 {
        cycles_to_micros(self.total_cycles_per_call.round() as u64, self.clock_hz)
    }

    /// Renders the measurement next to the paper's reported values.
    pub fn render(&self) -> String {
        let paper = crate::paper_reference::paper_micro_costs();
        format!(
            "per-call overhead: {:.1} cycles = {:.3} us (paper: {:.1} us)\n\
             store path: {:.1} cycles = {:.3} us, {:.0} instructions (paper: {:.1} us, {} instructions)\n\
             check path: {:.1} cycles = {:.3} us, {:.0} instructions (paper: {:.1} us, {} instructions)\n\
             store/check split: {:.0}% / {:.0}% (paper: 47% / 53%)\n",
            self.total_cycles_per_call,
            self.total_us(),
            paper.per_call_us,
            self.store_cycles,
            self.store_us(),
            self.store_instructions,
            paper.store_us,
            paper.store_instructions,
            self.check_cycles,
            self.check_us(),
            self.check_instructions,
            paper.check_us,
            paper.check_instructions,
            100.0 * self.store_cycles / (self.store_cycles + self.check_cycles),
            100.0 * self.check_cycles / (self.store_cycles + self.check_cycles),
        )
    }
}

/// The microbenchmark: `CALLS` invocations of an empty leaf function.
const CALLS: u64 = 64;

fn micro_source() -> String {
    format!(
        "    .org 0xe000
    .global main
    .equ SIM_CTL, 0x0100
    .equ DONE, 0x00ff
main:
    mov #0x0400, sp
    mov #{CALLS}, r8
micro_loop:
    call #leaf
    dec r8
    jnz micro_loop
    mov #DONE, &SIM_CTL
hang:
    jmp hang
leaf:
    nop
    ret
"
    )
}

/// Measures the micro-costs with the given configuration.
///
/// # Panics
///
/// Panics if the microbenchmark fails to build or complete, which indicates
/// a broken reproduction rather than a measurement outcome.
pub fn measure_micro_costs(config: &EilidConfig) -> MicroCosts {
    let source = micro_source();
    let builder = DeviceBuilder::new().config(config.clone());

    // Baseline cycles.
    let mut baseline = builder
        .build_baseline(&source)
        .expect("micro source builds");
    let base = baseline.run_for(10_000_000);
    assert!(base.is_completed(), "baseline microbenchmark: {base}");

    // Protected run, attributing cycles by dispatch selector while the PC is
    // inside the runtime (trampolines at 0xF700.., secure ROM at 0xF800..).
    let mut device = builder
        .build_eilid(&source)
        .expect("micro source instruments");
    let runtime_start = 0xF700u16;
    let secure_start = 0xF800u16;
    let mut store_cycles = 0u64;
    let mut check_cycles = 0u64;
    let mut store_instructions = 0u64;
    let mut check_instructions = 0u64;
    let mut total_cycles = 0u64;
    // The dispatch selector is only reliable while the PC is inside the
    // trampolines (EILIDsw reuses r4 as a scratch register afterwards), so
    // latch it there and keep the latched value while in the secure ROM.
    let mut current_is_check = false;

    loop {
        if device.cpu().peripherals.sim_done() {
            break;
        }
        if total_cycles > 10_000_000 {
            panic!("protected microbenchmark did not finish");
        }
        let (trace, violation) = device.step().expect("microbenchmark executes");
        assert!(violation.is_none(), "unexpected violation: {violation:?}");
        total_cycles += trace.cycles;
        if trace.pc >= runtime_start && trace.pc < secure_start {
            current_is_check = device.cpu().regs.read(eilid_msp430::Reg::R4) == 2;
        }
        if trace.pc >= runtime_start {
            if current_is_check {
                check_cycles += trace.cycles;
                check_instructions += 1;
            } else {
                store_cycles += trace.cycles;
                store_instructions += 1;
            }
        }
    }

    // Site-inserted instructions (mov/call before the call and before ret)
    // execute in application PMEM; split them evenly between the paths they
    // belong to by construction: 2 instructions feed the store path and 2
    // feed the check path per call.
    let site_store_cycles = 7u64 * CALLS; // mov #imm, r6 (2) + call #NS (5)
    let site_check_cycles = 7u64 * CALLS; // mov @sp, r6 (2) + call #NS (5)
    store_cycles += site_store_cycles;
    check_cycles += site_check_cycles;
    store_instructions += 2 * CALLS;
    check_instructions += 2 * CALLS;

    let baseline_cycles = base.cycles();
    let protected_cycles = total_cycles;
    let per_call = (protected_cycles.saturating_sub(baseline_cycles)) as f64 / CALLS as f64;

    MicroCosts {
        store_cycles: store_cycles as f64 / CALLS as f64,
        check_cycles: check_cycles as f64 / CALLS as f64,
        store_instructions: store_instructions as f64 / CALLS as f64,
        check_instructions: check_instructions as f64 / CALLS as f64,
        total_cycles_per_call: per_call,
        clock_hz: config.clock_hz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_costs_have_the_papers_shape() {
        let costs = measure_micro_costs(&EilidConfig::default());
        // Checking is more expensive than storing (paper: 11.8 vs 13.4 us).
        assert!(
            costs.check_cycles > costs.store_cycles,
            "check {} vs store {}",
            costs.check_cycles,
            costs.store_cycles
        );
        // The split is roughly balanced (paper: 47% / 53%).
        let split = costs.store_cycles / (costs.store_cycles + costs.check_cycles);
        assert!((0.35..0.50).contains(&split), "store share {split:.2}");
        // Instruction counts are in the same ballpark as the paper's 26/29.
        assert!((10.0..40.0).contains(&costs.store_instructions));
        assert!((10.0..40.0).contains(&costs.check_instructions));
        // The total per-call overhead is consistent with its parts.
        assert!(costs.total_cycles_per_call > 0.0);
        assert!(
            (costs.total_cycles_per_call - (costs.store_cycles + costs.check_cycles)).abs() < 15.0,
            "total {} vs parts {}",
            costs.total_cycles_per_call,
            costs.store_cycles + costs.check_cycles
        );
        assert!(!costs.render().is_empty());
    }
}
