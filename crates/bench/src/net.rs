//! Networked attestation throughput: persistent pool vs per-sweep
//! thread spawning, and in-memory vs loopback-TCP transports.
//!
//! Three questions, three measurements:
//!
//! 1. **Did the persistent worker pool pay for itself?** The fleet
//!    verifier used to spawn one scoped thread per shard *per sweep*;
//!    ROADMAP flagged that spawn cost as the multi-thread scaling
//!    ceiling once PR 2 made measurement cheap. [`compare_schedulers`]
//!    times the pool sweep against the retained `thread::scope`
//!    baseline on identical fleets — same shards, same trust logic,
//!    only the scheduling differs.
//! 2. **What does the wire cost?** [`measure_transport_sweeps`] runs a
//!    full protocol sweep (negotiation, challenge, report, verdict)
//!    over the in-memory pipe — codec + session with no sockets — and
//!    over real loopback TCP through the gateway. The gap between the
//!    two is the socket cost; the gap to the in-process sweep is the
//!    protocol cost.
//! 3. **Is it recorded?** [`render_net_bench_json`] writes
//!    `BENCH_net.json`, the perf trajectory later PRs regress against.

use std::sync::Arc;
use std::time::Instant;

use eilid_casu::DeviceKey;
use eilid_fleet::{
    CampaignConfig, CampaignOutcome, Fleet, FleetBuilder, FleetOps, HealthClass, LocalOps,
    OpsError, Verifier,
};
use eilid_net::{
    serve_transport, sweep_fleet_tcp_observed, sweep_fleet_tcp_windowed, sweep_fleet_windowed,
    with_attached_fleet, with_placed_fleet, AttestationService, ClusterOps, Gateway, GatewayConfig,
    PipeTransport, PollerBackend, RemoteOps,
};
use eilid_workloads::WorkloadId;

/// The bench fleet's root key bytes — also what the operator feeds
/// `set_agg_root_key` to re-derive shard aggregate keys.
const BENCH_ROOT: &[u8] = b"bench-net-root-key-0123456789abc";

fn bench_root() -> DeviceKey {
    DeviceKey::new(BENCH_ROOT).expect("key length")
}

fn build(devices: usize, threads: usize) -> (Fleet, Verifier) {
    FleetBuilder::new(bench_root())
        .devices(devices)
        .threads(threads)
        .build()
        .expect("bench fleet builds")
}

/// Dirties ~1% of devices so the incremental measurers do honest
/// steady-state work (same discipline as the fleet bench).
fn dirty_some(fleet: &mut Fleet) {
    let count = fleet.len();
    for index in (0..count).step_by(100) {
        let device = &mut fleet.devices_mut()[index];
        let memory = &mut device.device_mut().cpu_mut().memory;
        let value = memory.read_byte(0xE040);
        memory.write_byte(0xE040, value);
    }
}

/// One scheduler measurement row.
#[derive(Debug, Clone)]
pub struct SchedulerRow {
    /// Devices swept.
    pub devices: usize,
    /// Worker threads.
    pub threads: usize,
    /// Best-of-N steady-state sweep throughput, devices/s.
    pub devices_per_second: f64,
}

/// Persistent-pool vs scoped-thread sweep throughput on identical
/// fleets.
#[derive(Debug, Clone)]
pub struct SchedulerComparison {
    /// The persistent worker pool (current implementation).
    pub pool: SchedulerRow,
    /// The PR 2 `thread::scope` baseline (spawn per sweep).
    pub scoped: SchedulerRow,
}

impl SchedulerComparison {
    /// Pool throughput relative to the scoped baseline (≥ 1.0 means the
    /// pool is no slower).
    pub fn pool_ratio(&self) -> f64 {
        if self.scoped.devices_per_second <= 0.0 {
            return f64::INFINITY;
        }
        self.pool.devices_per_second / self.scoped.devices_per_second
    }
}

/// Best-of-`rounds` steady-state sweep throughput under `sweep`.
fn best_sweep_rate(
    fleet: &mut Fleet,
    verifier: &mut Verifier,
    rounds: usize,
    mut sweep: impl FnMut(&mut Verifier, &mut Fleet) -> eilid_fleet::FleetReport,
) -> f64 {
    // Warm-up: key caches + merkle roots.
    let warmup = sweep(verifier, fleet);
    assert_eq!(
        warmup.count(HealthClass::Attested),
        fleet.len(),
        "bench fleet must attest clean"
    );
    let mut best = 0.0f64;
    for _ in 0..rounds {
        dirty_some(fleet);
        let report = sweep(verifier, fleet);
        assert_eq!(report.count(HealthClass::Attested), fleet.len());
        best = best.max(report.devices_per_second());
    }
    best
}

/// Times pool vs scoped sweeps on identical fleets (best of `rounds`
/// steady-state sweeps each, ~1% dirtied between sweeps).
pub fn compare_schedulers(devices: usize, threads: usize, rounds: usize) -> SchedulerComparison {
    let (mut fleet, mut verifier) = build(devices, threads);
    let pool_rate = best_sweep_rate(&mut fleet, &mut verifier, rounds, |v, f| v.sweep(f));

    let (mut fleet, mut verifier) = build(devices, threads);
    let scoped_rate = best_sweep_rate(&mut fleet, &mut verifier, rounds, |v, f| {
        v.sweep_scoped_baseline(f)
    });

    SchedulerComparison {
        pool: SchedulerRow {
            devices,
            threads,
            devices_per_second: pool_rate,
        },
        scoped: SchedulerRow {
            devices,
            threads,
            devices_per_second: scoped_rate,
        },
    }
}

/// One transport measurement row.
#[derive(Debug, Clone)]
pub struct TransportRow {
    /// Devices swept.
    pub devices: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Full-protocol sweep throughput, devices/s.
    pub devices_per_second: f64,
}

/// Full-protocol sweep throughput over both transports.
#[derive(Debug, Clone)]
pub struct TransportComparison {
    /// In-memory pipe: codec + session, no sockets.
    pub in_memory: TransportRow,
    /// Real loopback TCP through the readiness-driven gateway reactor.
    pub loopback: TransportRow,
    /// Loopback TCP again, with the client-side latency observer on —
    /// the cost of telemetry, measured rather than assumed.
    pub loopback_observed: TransportRow,
    /// Median per-exchange latency over loopback (µs), from the
    /// observed run's histogram.
    pub p50_latency_us: u64,
    /// 99th-percentile per-exchange latency over loopback (µs).
    pub p99_latency_us: u64,
    /// The readiness backend the gateway ran (epoll on Linux).
    pub poller_backend: PollerBackend,
    /// The gateway's shard-batch flush ceiling.
    pub batch_size: usize,
    /// Client-side pipelining window (exchanges in flight per
    /// connection).
    pub pipeline_window: usize,
}

impl TransportComparison {
    /// Observed-sweep throughput relative to the bare loopback sweep
    /// (≥ 1.0 means instrumentation is free; the bench gate demands
    /// ≥ 0.95).
    pub fn obs_ratio(&self) -> f64 {
        if self.loopback.devices_per_second <= 0.0 {
            return f64::INFINITY;
        }
        self.loopback_observed.devices_per_second / self.loopback.devices_per_second
    }
}

/// Measures full-protocol sweeps over the in-memory pipe and loopback
/// TCP on the same fleet (best of `rounds` each; a warm-up sweep
/// first), with `window` exchanges pipelined per connection.
pub fn measure_transport_sweeps(
    devices: usize,
    clients: usize,
    window: usize,
    rounds: usize,
) -> TransportComparison {
    let (mut fleet, mut verifier) = build(devices, clients);
    let service = Arc::new(AttestationService::new(verifier.service_snapshot(1 << 32)));

    // In-memory pipe: one detached server thread per connection.
    let mut in_memory_best = 0.0f64;
    for round in 0..=rounds {
        dirty_some(&mut fleet);
        let report = {
            let service = Arc::clone(&service);
            sweep_fleet_windowed(&mut fleet, clients, window, move || {
                let (client_end, mut server_end) = PipeTransport::pair();
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    let _ = serve_transport(&service, &mut server_end);
                });
                Ok(client_end)
            })
            .expect("in-memory sweep succeeds")
        };
        assert_eq!(report.count(HealthClass::Attested), devices);
        if round > 0 {
            in_memory_best = in_memory_best.max(report.devices_per_second());
        }
    }

    // Loopback TCP through the gateway reactor.
    let config = GatewayConfig {
        workers: clients,
        queue_depth: 512,
        ..GatewayConfig::default()
    };
    let batch_size = config.batch_max;
    let gateway = Gateway::bind(("127.0.0.1", 0), Arc::clone(&service), config)
        .expect("gateway binds on loopback");
    let poller_backend = gateway.poller_backend();
    let handle = gateway.spawn();
    // Bare and latency-observed rounds interleave so both sample the
    // same noise environment — the observed/bare ratio is the
    // telemetry overhead, and a box-wide slowdown halfway through the
    // measurement shifts both numerators rather than skewing the
    // ratio. The observed run's histogram yields the p50/p99 the
    // bench record carries.
    let mut loopback_best = 0.0f64;
    let mut observed_best = 0.0f64;
    let mut p50_latency_us = 0u64;
    let mut p99_latency_us = 0u64;
    for round in 0..=rounds {
        dirty_some(&mut fleet);
        let report = sweep_fleet_tcp_windowed(&mut fleet, clients, window, handle.addr())
            .expect("loopback sweep succeeds");
        assert_eq!(report.count(HealthClass::Attested), devices);
        if round > 0 {
            loopback_best = loopback_best.max(report.devices_per_second());
        }

        dirty_some(&mut fleet);
        let report = sweep_fleet_tcp_observed(&mut fleet, clients, window, handle.addr())
            .expect("observed loopback sweep succeeds");
        assert_eq!(report.count(HealthClass::Attested), devices);
        if round > 0 && report.devices_per_second() > observed_best {
            observed_best = report.devices_per_second();
            p50_latency_us = report.p50_latency_us().unwrap_or(0);
            p99_latency_us = report.p99_latency_us().unwrap_or(0);
        }
    }
    handle.shutdown().expect("gateway shuts down");

    TransportComparison {
        in_memory: TransportRow {
            devices,
            clients,
            devices_per_second: in_memory_best,
        },
        loopback: TransportRow {
            devices,
            clients,
            devices_per_second: loopback_best,
        },
        loopback_observed: TransportRow {
            devices,
            clients,
            devices_per_second: observed_best,
        },
        p50_latency_us,
        p99_latency_us,
        poller_backend,
        batch_size,
        pipeline_window: window,
    }
}

/// One staged-campaign measurement row (devices updated + probed +
/// smoke-run per second of campaign wall time).
#[derive(Debug, Clone)]
pub struct CampaignRow {
    /// Devices the campaign updated.
    pub devices: usize,
    /// Campaign wall time in seconds.
    pub seconds: f64,
    /// Throughput in devices per second.
    pub devices_per_second: f64,
}

/// The same staged campaign through both operator-plane backends.
#[derive(Debug, Clone)]
pub struct CampaignComparison {
    /// `LocalOps`: in-process executor on the fleet's worker threads.
    pub in_process: CampaignRow,
    /// `RemoteOps` → gateway campaign engine → device agents over
    /// loopback TCP.
    pub over_tcp: CampaignRow,
    /// Device-agent connections the TCP run used.
    pub agents: usize,
    /// Full-image bytes the TCP campaign authorised (what the wire
    /// would have carried without delta encoding).
    pub update_bytes_full: u64,
    /// Update bytes the TCP campaign actually shipped (sparse segments
    /// plus full-image fallbacks).
    pub update_bytes_wire: u64,
    /// Reboot+smoke probes the TCP campaign executed device-side.
    pub probes_executed: u64,
    /// Probe verdicts inherited from the cohort reference device.
    pub probes_memoized: u64,
}

impl CampaignComparison {
    /// Wire update bytes relative to the full-image bytes (≤ 1.0; a
    /// mostly-clean cohort ships a small fraction of the image).
    pub fn delta_bytes_ratio(&self) -> f64 {
        if self.update_bytes_full == 0 {
            return 1.0;
        }
        self.update_bytes_wire as f64 / self.update_bytes_full as f64
    }
}

/// Runs one identical staged canary→full campaign (benign patch, every
/// device updated and probed) through each backend, asserting the two
/// reports equal before timing is trusted — then a second, ~1%-dirty
/// full-image campaign over TCP for the delta wire-bytes figures.
pub fn measure_campaigns(devices: usize, agents: usize) -> CampaignComparison {
    let build = || {
        FleetBuilder::new(bench_root())
            .devices(devices)
            .threads(agents)
            .workloads(&[WorkloadId::LightSensor])
            .build()
            .expect("bench fleet builds")
    };
    // The throughput rows use the historical benign-patch campaign —
    // the same workload the 590/556 devices/s phase-barrier baselines
    // were recorded on, so the trajectory stays comparable across PRs.
    let mut config = CampaignConfig::new(
        WorkloadId::LightSensor,
        eilid_fleet::fixtures::BENIGN_PATCH_TARGET,
        eilid_fleet::fixtures::benign_patch(),
    );
    config.smoke_cycles = 500_000;

    let (mut fleet, mut verifier) = build();
    let start = Instant::now();
    let local_report = LocalOps::new(&mut fleet, &mut verifier)
        .run_campaign(&config)
        .expect("in-process campaign succeeds");
    let local_seconds = start.elapsed().as_secs_f64();
    assert_eq!(
        local_report.outcome,
        CampaignOutcome::Completed { updated: devices }
    );

    let (mut fleet, mut verifier) = build();
    let service = Arc::new(AttestationService::new(verifier.service_snapshot(1 << 32)));
    let handle = Gateway::bind(
        ("127.0.0.1", 0),
        service,
        GatewayConfig {
            workers: agents,
            queue_depth: 512,
            ..GatewayConfig::default()
        },
    )
    .expect("gateway binds on loopback")
    .spawn();
    let addr = handle.addr();
    let (remote_report, tcp_seconds, metrics) =
        with_attached_fleet(&mut fleet, agents, addr, || {
            let mut ops = RemoteOps::connect(addr).map_err(|e| OpsError::Backend(e.to_string()))?;
            let start = Instant::now();
            let report = ops.run_campaign(&config)?;
            let seconds = start.elapsed().as_secs_f64();
            let metrics = ops.metrics()?;
            Ok::<_, OpsError>((report, seconds, metrics))
        })
        .expect("device agents served cleanly")
        .expect("wire campaign succeeds");
    handle.shutdown().expect("gateway shuts down");
    assert_eq!(
        remote_report, local_report,
        "backends must report identically before timings are comparable"
    );
    let counter = |name: &str| metrics.counters.get(name).copied().unwrap_or(0);

    // Separately, a realistic delta campaign for the wire-bytes
    // figures: a full application image with only a few granules
    // actually changed (dirt confined to the unused PMEM gap, so the
    // smoke runs are unaffected). The engine's win guard ships the
    // benign patch above as a full image — a few-byte patch is cheaper
    // whole than framed — so the delta ratio must be measured on an
    // image where sparse segments genuinely win.
    const PATCH_TARGET: u16 = 0xE000;
    const PATCH_END: usize = 0xF700;
    const GAP: usize = 0xF600 - PATCH_TARGET as usize;
    let (mut fleet, mut verifier) = build();
    let mut image: Vec<u8> = fleet.devices()[0]
        .device()
        .cpu()
        .memory
        .slice(usize::from(PATCH_TARGET)..PATCH_END)
        .to_vec();
    for (i, byte) in image[GAP..GAP + 4].iter_mut().enumerate() {
        *byte = 0xA5 ^ (i as u8);
    }
    let mut delta_config = CampaignConfig::new(WorkloadId::LightSensor, PATCH_TARGET, image);
    delta_config.smoke_cycles = 500_000;
    let service = Arc::new(AttestationService::new(verifier.service_snapshot(1 << 32)));
    let handle = Gateway::bind(
        ("127.0.0.1", 0),
        service,
        GatewayConfig {
            workers: agents,
            queue_depth: 512,
            ..GatewayConfig::default()
        },
    )
    .expect("gateway binds on loopback")
    .spawn();
    let addr = handle.addr();
    let (delta_report, delta_metrics) = with_attached_fleet(&mut fleet, agents, addr, || {
        let mut ops = RemoteOps::connect(addr).map_err(|e| OpsError::Backend(e.to_string()))?;
        let report = ops.run_campaign(&delta_config)?;
        let metrics = ops.metrics()?;
        Ok::<_, OpsError>((report, metrics))
    })
    .expect("device agents served cleanly")
    .expect("delta campaign succeeds");
    handle.shutdown().expect("gateway shuts down");
    assert_eq!(
        delta_report.outcome,
        CampaignOutcome::Completed { updated: devices }
    );
    let delta_counter = |name: &str| delta_metrics.counters.get(name).copied().unwrap_or(0);

    CampaignComparison {
        in_process: CampaignRow {
            devices,
            seconds: local_seconds,
            devices_per_second: devices as f64 / local_seconds.max(1e-9),
        },
        over_tcp: CampaignRow {
            devices,
            seconds: tcp_seconds,
            devices_per_second: devices as f64 / tcp_seconds.max(1e-9),
        },
        agents,
        update_bytes_full: delta_counter("eilid_ops_update_bytes_full_total"),
        update_bytes_wire: delta_counter("eilid_ops_update_bytes_wire_total"),
        probes_executed: counter("eilid_ops_probes_executed_total"),
        probes_memoized: counter("eilid_ops_probes_memoized_total"),
    }
}

/// Aggregated (collective-attestation) vs per-device operator sweeps
/// through the same gateway session.
#[derive(Debug, Clone)]
pub struct AggSweepComparison {
    /// Devices swept.
    pub devices: usize,
    /// Device-agent connections serving the probes.
    pub agents: usize,
    /// Gateway-driven aggregated sweep (`OpAggSweep`): one MAC'd
    /// aggregate root per shard crosses the wire, the operator verifies
    /// at most `SHARD_COUNT` MACs.
    pub aggregated: TransportRow,
    /// Gateway-driven per-device sweep (`OpSweep`) on the same attached
    /// session — the like-for-like operator-plane comparator.
    pub per_device: TransportRow,
    /// Client-driven per-device loopback sweep through the *same*
    /// gateway, interleaved round by round with the operator-plane
    /// sweeps so both sample the same noise environment — the baseline
    /// the ≥ 1.2x gate divides by. (A baseline measured in an earlier
    /// phase lives in a different noise window; on a loaded box the
    /// cross-phase ratio is mostly measuring the box, not the code.)
    pub client_driven: TransportRow,
    /// Non-empty shards in the aggregated result.
    pub shards: usize,
    /// Aggregate-root MACs the operator actually verified.
    pub roots_verified: usize,
    /// Devices whose verdict came from an aggregate root alone (all of
    /// them, on this clean bench fleet).
    pub short_circuited: usize,
}

impl AggSweepComparison {
    /// Aggregated throughput relative to the interleaved client-driven
    /// per-device loopback sweep (the bench gate demands ≥ 1.2).
    pub fn loopback_ratio(&self) -> f64 {
        if self.client_driven.devices_per_second <= 0.0 {
            return f64::INFINITY;
        }
        self.aggregated.devices_per_second / self.client_driven.devices_per_second
    }

    /// Aggregated throughput relative to the gateway-driven per-device
    /// sweep on the same session.
    pub fn op_ratio(&self) -> f64 {
        if self.per_device.devices_per_second <= 0.0 {
            return f64::INFINITY;
        }
        self.aggregated.devices_per_second / self.per_device.devices_per_second
    }
}

/// Measures aggregated vs per-device operator sweeps over loopback TCP
/// (best of `rounds` each, alternating so both sample the same noise;
/// one warm-up round first whose summaries must agree before any
/// timing is trusted).
///
/// The client-driven baseline sweeps a *second*, identically-built
/// fleet through the same gateway with `window` exchanges pipelined per
/// connection: same root key, same device ids, same goldens, so the one
/// service snapshot covers both. The client fleet never attaches, so it
/// is invisible to the operator-plane sweeps — and interleaving all
/// three paths round by round keeps the gate's ratio a comparison of
/// code, not of the box's load at two different moments.
pub fn measure_aggregated_sweeps(
    devices: usize,
    agents: usize,
    window: usize,
    rounds: usize,
) -> AggSweepComparison {
    let (mut fleet, mut verifier) = build(devices, agents.max(2));
    let (mut client_fleet, _unused_lineage) = build(devices, agents.max(2));
    let service = Arc::new(AttestationService::new(verifier.service_snapshot(1 << 32)));
    let handle = Gateway::bind(
        ("127.0.0.1", 0),
        service,
        GatewayConfig {
            workers: agents,
            queue_depth: 512,
            ..GatewayConfig::default()
        },
    )
    .expect("gateway binds on loopback")
    .spawn();
    let addr = handle.addr();
    let client_fleet = &mut client_fleet;
    let (agg_best, per_best, client_best, last) =
        with_attached_fleet(&mut fleet, agents, addr, move || {
            let mut ops = RemoteOps::connect(addr).map_err(|e| OpsError::Backend(e.to_string()))?;
            ops.set_agg_root_key(BENCH_ROOT);
            // Warm-up: all three paths, verdicts must agree before
            // timing.
            let warm_agg = ops.sweep_aggregated()?;
            let warm_per = ops.sweep()?;
            assert_eq!(
                warm_agg.summary, warm_per,
                "aggregated and per-device sweeps must classify identically"
            );
            assert_eq!(warm_agg.summary.count(HealthClass::Attested), devices);
            let warm_client = sweep_fleet_tcp_windowed(client_fleet, agents, window, addr)
                .map_err(|e| OpsError::Backend(e.to_string()))?;
            assert_eq!(warm_client.count(HealthClass::Attested), devices);
            let mut agg_best = 0.0f64;
            let mut per_best = 0.0f64;
            let mut client_best = 0.0f64;
            let mut last = warm_agg;
            for _ in 0..rounds {
                let start = Instant::now();
                let agg = ops.sweep_aggregated()?;
                let seconds = start.elapsed().as_secs_f64().max(1e-9);
                assert_eq!(agg.summary.count(HealthClass::Attested), devices);
                agg_best = agg_best.max(devices as f64 / seconds);
                last = agg;

                let start = Instant::now();
                let per = ops.sweep()?;
                let seconds = start.elapsed().as_secs_f64().max(1e-9);
                assert_eq!(per.count(HealthClass::Attested), devices);
                per_best = per_best.max(devices as f64 / seconds);

                dirty_some(client_fleet);
                let report = sweep_fleet_tcp_windowed(client_fleet, agents, window, addr)
                    .map_err(|e| OpsError::Backend(e.to_string()))?;
                assert_eq!(report.count(HealthClass::Attested), devices);
                client_best = client_best.max(report.devices_per_second());
            }
            Ok::<_, OpsError>((agg_best, per_best, client_best, last))
        })
        .expect("device agents served cleanly")
        .expect("aggregated sweeps succeed");
    handle.shutdown().expect("gateway shuts down");

    AggSweepComparison {
        devices,
        agents,
        aggregated: TransportRow {
            devices,
            clients: agents,
            devices_per_second: agg_best,
        },
        per_device: TransportRow {
            devices,
            clients: agents,
            devices_per_second: per_best,
        },
        client_driven: TransportRow {
            devices,
            clients: agents,
            devices_per_second: client_best,
        },
        shards: last.shards,
        roots_verified: last.roots_verified,
        short_circuited: last.short_circuited,
    }
}

/// One multi-gateway fan-out sweep measurement row.
#[derive(Debug, Clone)]
pub struct ClusterRow {
    /// In-process gateways the fleet was placed across.
    pub gateways: usize,
    /// Full-protocol fan-out sweep throughput, devices/s.
    pub devices_per_second: f64,
}

/// Fan-out sweep throughput as the gateway count grows: the same union
/// fleet placed shard-wise across 1, 2, … gateways, swept through the
/// `ClusterOps` operator console each time.
#[derive(Debug, Clone)]
pub struct ClusterComparison {
    /// Devices in the union fleet (placed per row).
    pub devices: usize,
    /// Device-agent connections per gateway.
    pub agents: usize,
    /// One row per measured gateway count, ascending.
    pub rows: Vec<ClusterRow>,
}

impl ClusterComparison {
    /// Throughput measured at exactly `gateways` gateways, if that
    /// width was in the measured set.
    pub fn rate_at(&self, gateways: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|row| row.gateways == gateways)
            .map(|row| row.devices_per_second)
    }

    /// Widest-cluster throughput relative to the single-gateway run
    /// (≥ 1.0 means fanning the operator plane out across processes
    /// never costs total sweep throughput).
    pub fn scaling_ratio(&self) -> f64 {
        match (self.rows.first(), self.rows.last()) {
            (Some(one), Some(widest)) if one.devices_per_second > 0.0 => {
                widest.devices_per_second / one.devices_per_second
            }
            _ => f64::INFINITY,
        }
    }
}

/// Measures fan-out sweep throughput at each gateway count in
/// `gateway_counts` (best of `rounds`, after a warm-up sweep that must
/// equal the in-process union sweep — throughput numbers are only
/// comparable once the backends provably agree).
///
/// Gateways run in-process, each provisioned with its own reserved
/// nonce block from the shared verifier lineage, exactly like the
/// multi-process cluster: same trust state, disjoint challenges.
pub fn measure_cluster_sweeps(
    devices: usize,
    gateway_counts: &[usize],
    agents: usize,
    rounds: usize,
) -> ClusterComparison {
    // The reference: an uninterrupted in-process sweep of the union
    // fleet. Every cluster width must reproduce this summary exactly.
    let (mut fleet, mut verifier) = build(devices, agents.max(2));
    let local_summary = LocalOps::new(&mut fleet, &mut verifier)
        .sweep()
        .expect("in-process reference sweep succeeds");

    let mut rows = Vec::new();
    for &gateways in gateway_counts {
        let (mut fleet, mut verifier) = build(devices, agents.max(2));
        let mut handles = Vec::new();
        let mut addrs = Vec::new();
        for _ in 0..gateways {
            // Each snapshot call reserves the next disjoint nonce span.
            let service = Arc::new(AttestationService::new(verifier.service_snapshot(1 << 24)));
            let gateway = Gateway::bind(
                ("127.0.0.1", 0),
                service,
                GatewayConfig {
                    workers: agents,
                    queue_depth: 512,
                    ..GatewayConfig::default()
                },
            )
            .expect("cluster gateway binds on loopback");
            let handle = gateway.spawn();
            addrs.push(handle.addr());
            handles.push(handle);
        }

        let best = with_placed_fleet(&mut fleet, &addrs, agents, || {
            let mut ops =
                ClusterOps::connect(&addrs).map_err(|e| OpsError::Backend(e.to_string()))?;
            let warmup = ops.sweep()?;
            assert_eq!(
                warmup, local_summary,
                "cluster sweep must equal the in-process union sweep"
            );
            let mut best = 0.0f64;
            for _ in 0..rounds {
                let start = Instant::now();
                let summary = ops.sweep()?;
                assert_eq!(summary.count(HealthClass::Attested), devices);
                best = best.max(devices as f64 / start.elapsed().as_secs_f64().max(1e-9));
            }
            Ok::<_, OpsError>(best)
        })
        .expect("placed agents served cleanly")
        .expect("cluster sweep succeeds");
        for handle in handles {
            handle.shutdown().expect("gateway shuts down");
        }
        rows.push(ClusterRow {
            gateways,
            devices_per_second: best,
        });
    }

    ClusterComparison {
        devices,
        agents,
        rows,
    }
}

/// Renders the `BENCH_net.json` record: a small, stable, hand-written
/// JSON object (the offline dependency set has no serde_json) extending
/// the repo's perf trajectory to the networked path.
pub fn render_net_bench_json(
    schedulers: &SchedulerComparison,
    transports: &TransportComparison,
    campaigns: &CampaignComparison,
    clusters: &ClusterComparison,
    aggs: &AggSweepComparison,
) -> String {
    format!(
        "{{\n  \"bench\": \"net_sweep\",\n  \"devices\": {},\n  \"threads\": {},\n  \
         \"clients\": {},\n  \"connections\": {},\n  \"pipeline_window\": {},\n  \
         \"batch_size\": {},\n  \"poller_backend\": \"{}\",\n  \
         \"pool_devices_per_second\": {:.0},\n  \
         \"scoped_baseline_devices_per_second\": {:.0},\n  \"pool_vs_scoped_ratio\": {:.2},\n  \
         \"in_memory_transport_devices_per_second\": {:.0},\n  \
         \"loopback_tcp_devices_per_second\": {:.0},\n  \
         \"loopback_tcp_observed_devices_per_second\": {:.0},\n  \
         \"observed_vs_bare_ratio\": {:.2},\n  \
         \"loopback_p50_latency_us\": {},\n  \
         \"loopback_p99_latency_us\": {},\n  \
         \"campaign_devices\": {},\n  \"campaign_agents\": {},\n  \
         \"campaign_in_process_devices_per_second\": {:.0},\n  \
         \"campaign_over_tcp_devices_per_second\": {:.0},\n  \
         \"campaign_delta_bytes_ratio\": {:.3},\n  \
         \"campaign_probes_executed\": {},\n  \
         \"campaign_probes_memoized\": {},\n  \
         \"cluster_devices\": {},\n  \"cluster_agents_per_gateway\": {},\n  \
         \"cluster_sweep_1_gateway_devices_per_second\": {:.0},\n  \
         \"cluster_sweep_2_gateways_devices_per_second\": {:.0},\n  \
         \"cluster_sweep_4_gateways_devices_per_second\": {:.0},\n  \
         \"cluster_scaling_ratio\": {:.2},\n  \
         \"agg_sweep_devices\": {},\n  \
         \"agg_sweep_devices_per_second\": {:.0},\n  \
         \"agg_sweep_per_device_op_devices_per_second\": {:.0},\n  \
         \"agg_client_driven_devices_per_second\": {:.0},\n  \
         \"agg_vs_loopback_ratio\": {:.2},\n  \
         \"agg_roots_verified\": {},\n  \
         \"agg_shards\": {},\n  \
         \"agg_short_circuited\": {}\n}}\n",
        schedulers.pool.devices,
        schedulers.pool.threads,
        transports.in_memory.clients,
        transports.in_memory.clients,
        transports.pipeline_window,
        transports.batch_size,
        transports.poller_backend.name(),
        schedulers.pool.devices_per_second,
        schedulers.scoped.devices_per_second,
        schedulers.pool_ratio(),
        transports.in_memory.devices_per_second,
        transports.loopback.devices_per_second,
        transports.loopback_observed.devices_per_second,
        transports.obs_ratio(),
        transports.p50_latency_us,
        transports.p99_latency_us,
        campaigns.in_process.devices,
        campaigns.agents,
        campaigns.in_process.devices_per_second,
        campaigns.over_tcp.devices_per_second,
        campaigns.delta_bytes_ratio(),
        campaigns.probes_executed,
        campaigns.probes_memoized,
        clusters.devices,
        clusters.agents,
        clusters.rate_at(1).unwrap_or(0.0),
        clusters.rate_at(2).unwrap_or(0.0),
        clusters.rate_at(4).unwrap_or(0.0),
        clusters.scaling_ratio(),
        aggs.devices,
        aggs.aggregated.devices_per_second,
        aggs.per_device.devices_per_second,
        aggs.client_driven.devices_per_second,
        aggs.loopback_ratio(),
        aggs.roots_verified,
        aggs.shards,
        aggs.short_circuited,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_comparison_is_sane() {
        let comparison = compare_schedulers(16, 2, 1);
        assert!(comparison.pool.devices_per_second > 0.0);
        assert!(comparison.scoped.devices_per_second > 0.0);
        assert!(comparison.pool_ratio() > 0.0);
    }

    #[test]
    fn transport_comparison_is_sane() {
        let comparison = measure_transport_sweeps(8, 2, 4, 1);
        assert!(comparison.in_memory.devices_per_second > 0.0);
        assert!(comparison.loopback.devices_per_second > 0.0);
        assert!(comparison.loopback_observed.devices_per_second > 0.0);
        assert!(comparison.obs_ratio() > 0.0);
        assert!(
            comparison.p99_latency_us >= comparison.p50_latency_us,
            "histogram percentiles must be monotone"
        );
        assert!(
            comparison.p50_latency_us > 0,
            "a real sweep cannot have zero-latency exchanges"
        );
        assert!(comparison.batch_size > 0);
        assert_eq!(comparison.pipeline_window, 4);
    }

    #[test]
    fn campaign_comparison_is_sane() {
        let comparison = measure_campaigns(8, 2);
        assert_eq!(comparison.in_process.devices, 8);
        assert!(comparison.in_process.devices_per_second > 0.0);
        assert!(comparison.over_tcp.devices_per_second > 0.0);
        assert_eq!(comparison.agents, 2);
        assert!(comparison.update_bytes_full > 0);
        assert!(
            comparison.delta_bytes_ratio() <= 0.10,
            "a ~1%-dirty bench image must ship as a sparse delta: {:.3}x",
            comparison.delta_bytes_ratio()
        );
        assert!(
            comparison.probes_memoized > 0,
            "an all-clean cohort must inherit most probe verdicts"
        );
        assert!(comparison.probes_executed >= 1, "the reference still runs");
    }

    #[test]
    fn aggregated_sweep_comparison_is_sane() {
        let comparison = measure_aggregated_sweeps(32, 2, 4, 1);
        assert_eq!(comparison.devices, 32);
        assert!(comparison.aggregated.devices_per_second > 0.0);
        assert!(comparison.per_device.devices_per_second > 0.0);
        assert!(comparison.roots_verified <= eilid_fleet::SHARD_COUNT);
        assert_eq!(comparison.roots_verified, comparison.shards);
        assert_eq!(
            comparison.short_circuited, 32,
            "a clean bench fleet short-circuits every verdict"
        );
        assert!(comparison.op_ratio() > 0.0);
        assert!(comparison.client_driven.devices_per_second > 0.0);
        assert!(comparison.loopback_ratio() > 0.0);
    }

    #[test]
    fn cluster_comparison_is_sane() {
        let comparison = measure_cluster_sweeps(32, &[1, 2], 2, 1);
        assert_eq!(comparison.devices, 32);
        assert_eq!(comparison.rows.len(), 2);
        assert!(comparison.rate_at(1).expect("1-gateway row") > 0.0);
        assert!(comparison.rate_at(2).expect("2-gateway row") > 0.0);
        assert!(comparison.rate_at(4).is_none());
        assert!(comparison.scaling_ratio() > 0.0);
    }

    #[test]
    fn bench_json_is_well_formed() {
        let schedulers = SchedulerComparison {
            pool: SchedulerRow {
                devices: 1000,
                threads: 4,
                devices_per_second: 250_000.0,
            },
            scoped: SchedulerRow {
                devices: 1000,
                threads: 4,
                devices_per_second: 240_000.0,
            },
        };
        let transports = TransportComparison {
            in_memory: TransportRow {
                devices: 1000,
                clients: 8,
                devices_per_second: 50_000.0,
            },
            loopback: TransportRow {
                devices: 1000,
                clients: 8,
                devices_per_second: 17_000.0,
            },
            loopback_observed: TransportRow {
                devices: 1000,
                clients: 8,
                devices_per_second: 16_500.0,
            },
            p50_latency_us: 512,
            p99_latency_us: 4096,
            poller_backend: PollerBackend::Epoll,
            batch_size: 64,
            pipeline_window: 32,
        };
        let campaigns = CampaignComparison {
            in_process: CampaignRow {
                devices: 1000,
                seconds: 2.0,
                devices_per_second: 500.0,
            },
            over_tcp: CampaignRow {
                devices: 1000,
                seconds: 1.8,
                devices_per_second: 555.0,
            },
            agents: 8,
            update_bytes_full: 100_000,
            update_bytes_wire: 6_500,
            probes_executed: 2,
            probes_memoized: 998,
        };
        let clusters = ClusterComparison {
            devices: 1000,
            agents: 2,
            rows: vec![
                ClusterRow {
                    gateways: 1,
                    devices_per_second: 15_000.0,
                },
                ClusterRow {
                    gateways: 2,
                    devices_per_second: 16_500.0,
                },
                ClusterRow {
                    gateways: 4,
                    devices_per_second: 18_000.0,
                },
            ],
        };
        let aggs = AggSweepComparison {
            devices: 1000,
            agents: 8,
            aggregated: TransportRow {
                devices: 1000,
                clients: 8,
                devices_per_second: 34_000.0,
            },
            per_device: TransportRow {
                devices: 1000,
                clients: 8,
                devices_per_second: 30_000.0,
            },
            client_driven: TransportRow {
                devices: 1000,
                clients: 8,
                devices_per_second: 17_000.0,
            },
            shards: 16,
            roots_verified: 16,
            short_circuited: 1000,
        };
        let json = render_net_bench_json(&schedulers, &transports, &campaigns, &clusters, &aggs);
        assert!(json.contains("\"bench\": \"net_sweep\""));
        assert!(json.contains("\"pool_vs_scoped_ratio\": 1.04"));
        assert!(json.contains("\"connections\": 8"));
        assert!(json.contains("\"batch_size\": 64"));
        assert!(json.contains("\"pipeline_window\": 32"));
        assert!(json.contains("\"poller_backend\": \"epoll\""));
        assert!(json.contains("\"loopback_tcp_observed_devices_per_second\": 16500"));
        assert!(json.contains("\"observed_vs_bare_ratio\": 0.97"));
        assert!(json.contains("\"loopback_p50_latency_us\": 512"));
        assert!(json.contains("\"loopback_p99_latency_us\": 4096"));
        assert!(json.contains("\"campaign_devices\": 1000"));
        assert!(json.contains("\"campaign_over_tcp_devices_per_second\": 555"));
        assert!(json.contains("\"campaign_delta_bytes_ratio\": 0.065"));
        assert!(json.contains("\"campaign_probes_executed\": 2"));
        assert!(json.contains("\"campaign_probes_memoized\": 998"));
        assert!(json.contains("\"cluster_devices\": 1000"));
        assert!(json.contains("\"cluster_agents_per_gateway\": 2"));
        assert!(json.contains("\"cluster_sweep_1_gateway_devices_per_second\": 15000"));
        assert!(json.contains("\"cluster_sweep_4_gateways_devices_per_second\": 18000"));
        assert!(json.contains("\"cluster_scaling_ratio\": 1.20"));
        assert!(json.contains("\"agg_sweep_devices\": 1000"));
        assert!(json.contains("\"agg_sweep_devices_per_second\": 34000"));
        assert!(json.contains("\"agg_sweep_per_device_op_devices_per_second\": 30000"));
        assert!(json.contains("\"agg_client_driven_devices_per_second\": 17000"));
        // 34000 aggregated over the interleaved 17000 baseline above.
        assert!(json.contains("\"agg_vs_loopback_ratio\": 2.00"));
        assert!(json.contains("\"agg_roots_verified\": 16"));
        assert!(json.contains("\"agg_shards\": 16"));
        assert!(json.contains("\"agg_short_circuited\": 1000"));
        assert!(json.starts_with('{') && json.ends_with("}\n"));
    }
}
