//! Table IV harness: compile-time, binary-size and run-time overhead of the
//! seven evaluation applications, original vs. EILID.
//!
//! Compile times are wall-clock averages over a configurable number of
//! iterations (the paper uses 50). Run times are simulated cycles converted
//! to microseconds at the configured clock (the paper uses 100 MHz Vivado
//! behavioural simulation), so they are fully deterministic.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use eilid::{DeviceBuilder, EilidConfig, InstrumentedBuild, Runtime};
use eilid_casu::{CasuPolicy, MemoryLayout};
use eilid_workloads::{Workload, WorkloadId};

use crate::paper_reference::{paper_table4, PaperTable4Row};

/// Measurement knobs for the Table IV harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Options {
    /// Number of compile iterations to average over (the paper uses 50).
    pub compile_iterations: u32,
    /// Cycle budget per simulated run.
    pub max_cycles: u64,
    /// EILID configuration used for the protected build.
    pub config: EilidConfig,
}

impl Default for Table4Options {
    fn default() -> Self {
        Table4Options {
            compile_iterations: 50,
            max_cycles: 20_000_000,
            config: EilidConfig::default(),
        }
    }
}

impl Table4Options {
    /// Fast settings for unit/integration tests (fewer compile iterations).
    pub fn quick() -> Self {
        Table4Options {
            compile_iterations: 3,
            ..Table4Options::default()
        }
    }
}

/// One measured row of Table IV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Which application.
    pub workload: WorkloadId,
    /// Average wall-clock time of the baseline (single) build.
    pub original_compile: Duration,
    /// Average wall-clock time of the full EILID pipeline (three builds +
    /// instrumentation).
    pub eilid_compile: Duration,
    /// Application binary size without instrumentation (bytes).
    pub original_bytes: usize,
    /// Application binary size with instrumentation (bytes).
    pub eilid_bytes: usize,
    /// Simulated run time of the original application (microseconds).
    pub original_us: f64,
    /// Simulated run time of the EILID-protected application (microseconds).
    pub eilid_us: f64,
    /// Simulated cycles of the original application.
    pub original_cycles: u64,
    /// Simulated cycles of the EILID-protected application.
    pub eilid_cycles: u64,
}

impl Table4Row {
    /// Compile-time overhead fraction.
    pub fn compile_overhead(&self) -> f64 {
        if self.original_compile.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.eilid_compile.as_secs_f64() / self.original_compile.as_secs_f64() - 1.0
    }

    /// Binary-size overhead fraction.
    pub fn size_overhead(&self) -> f64 {
        if self.original_bytes == 0 {
            return 0.0;
        }
        self.eilid_bytes as f64 / self.original_bytes as f64 - 1.0
    }

    /// Run-time overhead fraction.
    pub fn runtime_overhead(&self) -> f64 {
        if self.original_us == 0.0 {
            return 0.0;
        }
        self.eilid_us / self.original_us - 1.0
    }

    /// The paper's row for the same workload.
    pub fn paper(&self) -> PaperTable4Row {
        paper_table4()
            .into_iter()
            .find(|r| r.workload == self.workload)
            .expect("every workload has a paper row")
    }
}

/// A complete Table IV measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4 {
    /// Per-workload rows in the paper's order.
    pub rows: Vec<Table4Row>,
    /// Options the measurement was taken with.
    pub options: Table4Options,
}

impl Table4 {
    /// Average compile-time overhead across all workloads.
    pub fn average_compile_overhead(&self) -> f64 {
        average(self.rows.iter().map(Table4Row::compile_overhead))
    }

    /// Average binary-size overhead across all workloads.
    pub fn average_size_overhead(&self) -> f64 {
        average(self.rows.iter().map(Table4Row::size_overhead))
    }

    /// Average run-time overhead across all workloads.
    pub fn average_runtime_overhead(&self) -> f64 {
        average(self.rows.iter().map(Table4Row::runtime_overhead))
    }

    /// Renders the table in the paper's layout, with the paper's reference
    /// values alongside the measured ones.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "Software          |      Compile-time      |      Binary size       |       Running time\n",
        );
        out.push_str(
            "                  |  orig(ms) EILID(ms)  % |  orig(B) EILID(B)    % |  orig(us)  EILID(us)   %  (paper %)\n",
        );
        for row in &self.rows {
            let paper = row.paper();
            out.push_str(&format!(
                "{:<18}| {:>8.1} {:>9.1} {:>4.1} | {:>7} {:>8} {:>5.1} | {:>9.1} {:>10.1} {:>4.1}  ({:>4.1})\n",
                row.workload.name(),
                row.original_compile.as_secs_f64() * 1e3,
                row.eilid_compile.as_secs_f64() * 1e3,
                row.compile_overhead() * 100.0,
                row.original_bytes,
                row.eilid_bytes,
                row.size_overhead() * 100.0,
                row.original_us,
                row.eilid_us,
                row.runtime_overhead() * 100.0,
                paper.runtime_overhead() * 100.0,
            ));
        }
        out.push_str(&format!(
            "Average overhead: compile {:.2}%  size {:.2}%  runtime {:.2}%  (paper: 34.30% / 10.78% / 7.35%)\n",
            self.average_compile_overhead() * 100.0,
            self.average_size_overhead() * 100.0,
            self.average_runtime_overhead() * 100.0,
        ));
        out
    }
}

fn average(values: impl Iterator<Item = f64>) -> f64 {
    let collected: Vec<f64> = values.collect();
    if collected.is_empty() {
        return 0.0;
    }
    collected.iter().sum::<f64>() / collected.len() as f64
}

/// Measures one workload.
///
/// # Panics
///
/// Panics if the workload fails to build or does not run to completion —
/// both indicate a broken reproduction rather than a measurement outcome.
pub fn measure_workload(workload: &Workload, options: &Table4Options) -> Table4Row {
    let layout = MemoryLayout::default();
    let policy = CasuPolicy::default();
    let runtime = Runtime::build(&options.config, &layout, &policy)
        .expect("runtime builds for the default configuration");
    let pipeline = InstrumentedBuild::new(options.config.clone());

    // Compile-time measurement, averaged over the configured iterations.
    let mut original_compile = Duration::ZERO;
    let mut eilid_compile = Duration::ZERO;
    let mut artifacts = None;
    for _ in 0..options.compile_iterations.max(1) {
        let run = pipeline
            .run(&workload.source, &runtime)
            .expect("workload instruments");
        original_compile += run.metrics.original_compile_time;
        eilid_compile += run.metrics.instrumented_compile_time;
        artifacts = Some(run);
    }
    let iterations = options.compile_iterations.max(1);
    original_compile /= iterations;
    eilid_compile /= iterations;
    let artifacts = artifacts.expect("at least one compile iteration ran");

    // Run-time measurement (deterministic, one run each).
    let builder = DeviceBuilder::new().config(options.config.clone());
    let mut baseline = builder
        .build_baseline(&workload.source)
        .expect("baseline builds");
    let base_outcome = baseline.run_for(options.max_cycles);
    assert!(
        base_outcome.is_completed(),
        "{} baseline did not complete: {base_outcome}",
        workload.name
    );
    let mut protected = builder
        .build_eilid(&workload.source)
        .expect("EILID device builds");
    let eilid_outcome = protected.run_for(options.max_cycles);
    assert!(
        eilid_outcome.is_completed(),
        "{} EILID run did not complete: {eilid_outcome}",
        workload.name
    );

    let clock = options.config.clock_hz;
    Table4Row {
        workload: workload.id,
        original_compile,
        eilid_compile,
        original_bytes: artifacts.metrics.original_binary_bytes,
        eilid_bytes: artifacts.metrics.instrumented_binary_bytes,
        original_us: base_outcome.micros(clock),
        eilid_us: eilid_outcome.micros(clock),
        original_cycles: base_outcome.cycles(),
        eilid_cycles: eilid_outcome.cycles(),
    }
}

/// Measures all seven workloads (the full Table IV).
pub fn measure_all(options: &Table4Options) -> Table4 {
    let rows = eilid_workloads::all()
        .iter()
        .map(|w| measure_workload(w, options))
        .collect();
    Table4 {
        rows,
        options: options.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_workload_measurement_has_consistent_overheads() {
        let options = Table4Options::quick();
        let workload = WorkloadId::LightSensor.workload();
        let row = measure_workload(&workload, &options);
        assert!(row.eilid_bytes > row.original_bytes);
        assert!(row.eilid_us > row.original_us);
        assert!(row.compile_overhead() > 0.0);
        assert!(row.runtime_overhead() > 0.0 && row.runtime_overhead() < 0.30);
        assert_eq!(row.paper().workload, WorkloadId::LightSensor);
    }

    #[test]
    fn rendering_contains_all_columns() {
        let options = Table4Options::quick();
        let workload = WorkloadId::LightSensor.workload();
        let row = measure_workload(&workload, &options);
        let table = Table4 {
            rows: vec![row],
            options,
        };
        let rendered = table.render();
        assert!(rendered.contains("LightSensor"));
        assert!(rendered.contains("Average overhead"));
    }
}
