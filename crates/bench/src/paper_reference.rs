//! Reference numbers reported by the paper, used for side-by-side
//! comparison in the harness output and in `EXPERIMENTS.md`.
//!
//! Absolute values are not expected to match this reproduction (different
//! host CPU for compile times, an ISA simulator instead of Vivado behavioural
//! simulation for run times); they are reproduced here so every harness can
//! print "paper vs. measured" rows and so the shape checks (who wins, by
//! roughly what factor) have an explicit target.

use serde::{Deserialize, Serialize};

use eilid_workloads::WorkloadId;

/// One row of the paper's Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperTable4Row {
    /// Which application.
    pub workload: WorkloadId,
    /// Original compile time in milliseconds.
    pub original_compile_ms: f64,
    /// EILID compile time in milliseconds.
    pub eilid_compile_ms: f64,
    /// Original binary size in bytes.
    pub original_bytes: u32,
    /// EILID binary size in bytes.
    pub eilid_bytes: u32,
    /// Original running time in microseconds.
    pub original_us: f64,
    /// EILID running time in microseconds.
    pub eilid_us: f64,
}

impl PaperTable4Row {
    /// Compile-time overhead fraction reported by the paper.
    pub fn compile_overhead(&self) -> f64 {
        self.eilid_compile_ms / self.original_compile_ms - 1.0
    }

    /// Binary-size overhead fraction reported by the paper.
    pub fn size_overhead(&self) -> f64 {
        f64::from(self.eilid_bytes) / f64::from(self.original_bytes) - 1.0
    }

    /// Run-time overhead fraction reported by the paper.
    pub fn runtime_overhead(&self) -> f64 {
        self.eilid_us / self.original_us - 1.0
    }
}

/// The paper's Table IV, row by row.
pub fn paper_table4() -> Vec<PaperTable4Row> {
    vec![
        PaperTable4Row {
            workload: WorkloadId::LightSensor,
            original_compile_ms: 321.0,
            eilid_compile_ms: 419.0,
            original_bytes: 233,
            eilid_bytes: 246,
            original_us: 251.0,
            eilid_us: 277.0,
        },
        PaperTable4Row {
            workload: WorkloadId::UltrasonicRanger,
            original_compile_ms: 334.0,
            eilid_compile_ms: 423.0,
            original_bytes: 296,
            eilid_bytes: 349,
            original_us: 2_094.0,
            eilid_us: 2_303.0,
        },
        PaperTable4Row {
            workload: WorkloadId::FireSensor,
            original_compile_ms: 341.0,
            eilid_compile_ms: 484.0,
            original_bytes: 465,
            eilid_bytes: 565,
            original_us: 4_105.0,
            eilid_us: 4_648.0,
        },
        PaperTable4Row {
            workload: WorkloadId::SyringePump,
            original_compile_ms: 318.0,
            eilid_compile_ms: 458.0,
            original_bytes: 274,
            eilid_bytes: 308,
            original_us: 2_151.0,
            eilid_us: 2_265.0,
        },
        PaperTable4Row {
            workload: WorkloadId::TempSensor,
            original_compile_ms: 351.0,
            eilid_compile_ms: 465.0,
            original_bytes: 305,
            eilid_bytes: 325,
            original_us: 1_257.0,
            eilid_us: 1_327.0,
        },
        PaperTable4Row {
            workload: WorkloadId::Charlieplexing,
            original_compile_ms: 360.0,
            eilid_compile_ms: 455.0,
            original_bytes: 325,
            eilid_bytes: 342,
            original_us: 4_930.0,
            eilid_us: 5_146.0,
        },
        PaperTable4Row {
            workload: WorkloadId::LcdSensor,
            original_compile_ms: 370.0,
            eilid_compile_ms: 474.0,
            original_bytes: 604,
            eilid_bytes: 642,
            original_us: 4_877.0,
            eilid_us: 5_005.0,
        },
    ]
}

/// Paper-reported average overheads (bottom row of Table IV).
pub struct PaperAverages {
    /// Average compile-time overhead fraction.
    pub compile: f64,
    /// Average binary-size overhead fraction.
    pub size: f64,
    /// Average run-time overhead fraction.
    pub runtime: f64,
}

/// The paper's averages: 34.30 % compile time, 10.78 % binary size, 7.35 %
/// run time.
pub fn paper_averages() -> PaperAverages {
    PaperAverages {
        compile: 0.3430,
        size: 0.1078,
        runtime: 0.0735,
    }
}

/// Paper-reported micro-costs (§VI): ~25.2 µs per instrumented call or
/// interrupt, split into ~11.8 µs for storing and ~13.4 µs for checking,
/// with 26 and 29 introduced instructions respectively.
pub struct PaperMicroCosts {
    /// Total per-call/interrupt overhead in microseconds.
    pub per_call_us: f64,
    /// Store-path cost in microseconds.
    pub store_us: f64,
    /// Check-path cost in microseconds.
    pub check_us: f64,
    /// Instructions on the store path.
    pub store_instructions: u32,
    /// Instructions on the check path.
    pub check_instructions: u32,
}

/// The paper's micro-cost figures.
pub fn paper_micro_costs() -> PaperMicroCosts {
    PaperMicroCosts {
        per_call_us: 25.2,
        store_us: 11.8,
        check_us: 13.4,
        store_instructions: 26,
        check_instructions: 29,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_cover_all_workloads_in_order() {
        let rows = paper_table4();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].workload, WorkloadId::LightSensor);
        assert_eq!(rows[6].workload, WorkloadId::LcdSensor);
    }

    #[test]
    fn paper_overheads_match_the_published_percentages() {
        let rows = paper_table4();
        let light = &rows[0];
        assert!((light.runtime_overhead() - 0.1036).abs() < 0.002);
        assert!((light.size_overhead() - 0.0558).abs() < 0.002);
        assert!((light.compile_overhead() - 0.3053).abs() < 0.002);

        let fire = rows
            .iter()
            .find(|r| r.workload == WorkloadId::FireSensor)
            .unwrap();
        assert!((fire.runtime_overhead() - 0.1323).abs() < 0.002);

        let lcd = rows
            .iter()
            .find(|r| r.workload == WorkloadId::LcdSensor)
            .unwrap();
        assert!((lcd.runtime_overhead() - 0.0262).abs() < 0.002);
    }

    #[test]
    fn fire_sensor_has_the_highest_and_lcd_the_lowest_runtime_overhead() {
        let rows = paper_table4();
        let max = rows
            .iter()
            .max_by(|a, b| a.runtime_overhead().total_cmp(&b.runtime_overhead()))
            .unwrap();
        let min = rows
            .iter()
            .min_by(|a, b| a.runtime_overhead().total_cmp(&b.runtime_overhead()))
            .unwrap();
        assert_eq!(max.workload, WorkloadId::FireSensor);
        assert_eq!(min.workload, WorkloadId::LcdSensor);
    }

    #[test]
    fn averages_and_micro_costs_are_recorded() {
        let avg = paper_averages();
        assert!((avg.runtime - 0.0735).abs() < 1e-9);
        let micro = paper_micro_costs();
        assert!((micro.store_us + micro.check_us - micro.per_call_us).abs() < 0.1);
        assert_eq!(micro.store_instructions, 26);
        assert_eq!(micro.check_instructions, 29);
    }
}
