//! Prints the instrumentation templates of Figures 3-8 by instrumenting a
//! miniature program with one site of every kind.

fn main() {
    println!("{}", eilid_bench::render_instrumentation_templates());
}
