//! Prints Table I: qualitative comparison of CFA and CFI techniques.

fn main() {
    println!("{}", eilid_hwcost::render_table1());
}
