//! Prints Table IV: EILID software overhead on the seven evaluation
//! applications (compile time, binary size, running time).
//!
//! Pass `--quick` to use 3 compile iterations instead of the paper's 50.

use eilid_bench::{measure_all, Table4Options};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let options = if quick {
        Table4Options::quick()
    } else {
        Table4Options::default()
    };
    eprintln!(
        "measuring {} workloads with {} compile iterations each...",
        eilid_workloads::WorkloadId::ALL.len(),
        options.compile_iterations
    );
    let table = measure_all(&options);
    println!("{}", table.render());
}
