//! Prints the §VI micro-costs: per-call store/check overhead of EILIDsw.

use eilid_bench::measure_micro_costs;

fn main() {
    let costs = measure_micro_costs(&eilid::EilidConfig::default());
    println!("{}", costs.render());
}
