//! Networked attestation throughput scenario.
//!
//! Measures (1) the persistent worker pool against the retained
//! `thread::scope` baseline on in-memory sweeps, and (2) full-protocol
//! networked sweeps over the in-memory pipe and loopback TCP, then
//! writes `BENCH_net.json` — the recorded perf baseline later PRs
//! regress against.
//!
//! ```text
//! net [--devices N] [--threads N] [--clients N] [--window N]
//!     [--json PATH] [--min-pool-ratio X] [--min-in-memory N]
//!     [--min-loopback N] [--min-campaign N] [--min-cluster-ratio X]
//!     [--min-obs-ratio X] [--min-agg-ratio X] [--quick]
//! ```
//!
//! `--quick` runs a smaller configuration (the CI smoke mode) and does
//! not write the baseline unless `--json` is explicit.
//! `--min-pool-ratio X` exits non-zero when the pool falls below `X`
//! times the scoped baseline's throughput — the regression gate for
//! "the persistent pool is no slower than per-sweep spawning".
//! `--min-in-memory N` / `--min-loopback N` are absolute floors in
//! devices/s on the two transport paths — the no-regression gates for
//! the reactor + batching work (the loopback floor of 40 000 in `make
//! net-bench` is ≥ 2× the PR 3 recorded baseline of ~19 000).
//! `--window N` sets the client pipelining window (exchanges in flight
//! per connection). `--min-campaign N` is the floor in devices/s for
//! the staged campaign driven over loopback TCP through the gateway's
//! operator plane (update + probe + smoke per device — hence orders of
//! magnitude below sweep throughput). `--min-cluster-ratio X` exits
//! non-zero when fan-out sweeps across the widest measured cluster (4
//! gateways) fall below `X` times the single-gateway cluster sweep —
//! the gate bounding fan-out coordination overhead (on a single-core
//! box with hardware SHA-256 the four reactor threads honestly cost
//! 5-40% run to run, so `make net-bench` sets the floor at 0.5).
//! `--min-obs-ratio X` exits non-zero when the latency-observed
//! loopback sweep falls below `X` times the bare loopback sweep — the
//! gate for "telemetry recording is (nearly) free on the hot path".
//! `--min-agg-ratio X` exits non-zero when the aggregated
//! (collective-attestation) sweep falls below `X` times the per-device
//! client-driven loopback sweep — the gate for "folding evidence into
//! per-shard aggregate roots beats shipping per-device verdicts".

use std::process::ExitCode;

use eilid_bench::net::{
    compare_schedulers, measure_aggregated_sweeps, measure_campaigns, measure_cluster_sweeps,
    measure_transport_sweeps, render_net_bench_json,
};

/// Parses `--flag value`; a missing flag yields `default`, an
/// unparseable value is a hard error (never a silent fallback that
/// would record a baseline for a different configuration).
fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse::<T>()
            .map_err(|_| format!("invalid {flag} value: {}", args[i + 1])),
        None => Ok(default),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let devices = flag_value(&args, "--devices", if quick { 256 } else { 1000 })?;
    let threads = flag_value(&args, "--threads", 4)?;
    let clients = flag_value(&args, "--clients", 8)?;
    let window = flag_value(&args, "--window", eilid_net::DEFAULT_PIPELINE_WINDOW)?;
    let rounds = if quick { 2 } else { 5 };
    let min_pool_ratio: f64 = flag_value(&args, "--min-pool-ratio", 0.0)?;
    let min_in_memory: f64 = flag_value(&args, "--min-in-memory", 0.0)?;
    let min_loopback: f64 = flag_value(&args, "--min-loopback", 0.0)?;
    let min_campaign: f64 = flag_value(&args, "--min-campaign", 0.0)?;
    let min_cluster_ratio: f64 = flag_value(&args, "--min-cluster-ratio", 0.0)?;
    let min_obs_ratio: f64 = flag_value(&args, "--min-obs-ratio", 0.0)?;
    let min_agg_ratio: f64 = flag_value(&args, "--min-agg-ratio", 0.0)?;
    // `--quick` runs a smaller, non-comparable configuration, so it
    // must never silently overwrite the recorded full-size baseline.
    // A `--json` with its value missing is a hard error like every
    // other flag, not a silent no-write.
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(i) => Some(
            args.get(i + 1)
                .ok_or_else(|| "--json needs a value".to_string())?
                .clone(),
        ),
        None => (!quick).then(|| "BENCH_net.json".to_string()),
    };

    println!("scheduler head-to-head: {devices} devices, {threads} threads, best of {rounds}");
    let schedulers = compare_schedulers(devices, threads, rounds);
    println!(
        "  persistent pool   {:>9.0} devices/s",
        schedulers.pool.devices_per_second
    );
    println!(
        "  scoped baseline   {:>9.0} devices/s",
        schedulers.scoped.devices_per_second
    );
    println!("  pool/scoped       {:>9.2}x", schedulers.pool_ratio());

    println!(
        "transport head-to-head: {devices} devices, {clients} client connections, \
         pipeline window {window}"
    );
    let transports = measure_transport_sweeps(devices, clients, window, rounds);
    println!(
        "  in-memory pipe    {:>9.0} devices/s",
        transports.in_memory.devices_per_second
    );
    println!(
        "  loopback TCP      {:>9.0} devices/s  ({} reactor, batch {})",
        transports.loopback.devices_per_second,
        transports.poller_backend.name(),
        transports.batch_size,
    );
    println!(
        "  loopback observed {:>9.0} devices/s  ({:.2}x bare; p50 {}µs, p99 {}µs per exchange)",
        transports.loopback_observed.devices_per_second,
        transports.obs_ratio(),
        transports.p50_latency_us,
        transports.p99_latency_us,
    );

    println!(
        "operator-plane campaign: {} devices (staged canary→full, update + probe + smoke per device)",
        if quick { 128 } else { 1000 }
    );
    let campaigns = measure_campaigns(if quick { 128 } else { 1000 }, clients.min(8));
    println!(
        "  in-process        {:>9.0} devices/s  ({:.2}s)",
        campaigns.in_process.devices_per_second, campaigns.in_process.seconds
    );
    println!(
        "  over loopback TCP {:>9.0} devices/s  ({:.2}s, {} agents)",
        campaigns.over_tcp.devices_per_second, campaigns.over_tcp.seconds, campaigns.agents
    );
    println!(
        "  delta wire bytes  {:>9.3}x full image  ({} of {} bytes, ~1%-dirty image campaign)",
        campaigns.delta_bytes_ratio(),
        campaigns.update_bytes_wire,
        campaigns.update_bytes_full,
    );
    println!(
        "  probes            {:>9} executed, {} memoized",
        campaigns.probes_executed, campaigns.probes_memoized,
    );

    let cluster_devices = if quick { 128 } else { 512 };
    println!(
        "cluster fan-out sweep: {cluster_devices} devices placed across 1/2/4 gateway reactors"
    );
    let clusters = measure_cluster_sweeps(cluster_devices, &[1, 2, 4], 2, rounds);
    for row in &clusters.rows {
        println!(
            "  {} gateway{}        {:>9.0} devices/s",
            row.gateways,
            if row.gateways == 1 { " " } else { "s" },
            row.devices_per_second
        );
    }
    println!("  widest/single     {:>9.2}x", clusters.scaling_ratio());

    println!("collective attestation: {devices} devices, aggregated vs per-device operator sweeps");
    let aggs = measure_aggregated_sweeps(devices, clients.min(8), window, rounds);
    println!(
        "  aggregated sweep  {:>9.0} devices/s  ({} aggregate roots verified, {} short-circuited)",
        aggs.aggregated.devices_per_second, aggs.roots_verified, aggs.short_circuited,
    );
    println!(
        "  per-device OpSweep{:>9.0} devices/s  ({:.2}x aggregated/per-device)",
        aggs.per_device.devices_per_second,
        aggs.op_ratio(),
    );
    println!(
        "  client-driven     {:>9.0} devices/s  (interleaved loopback baseline; {:.2}x aggregated/client)",
        aggs.client_driven.devices_per_second,
        aggs.loopback_ratio(),
    );

    if let Some(json_path) = json_path {
        let json = render_net_bench_json(&schedulers, &transports, &campaigns, &clusters, &aggs);
        std::fs::write(&json_path, &json)
            .map_err(|e| format!("cannot write `{json_path}`: {e}"))?;
        println!("wrote {json_path}");
    }

    if schedulers.pool_ratio() < min_pool_ratio {
        return Err(format!(
            "pool throughput regression: {:.2}x the scoped baseline is below the accepted {min_pool_ratio}x",
            schedulers.pool_ratio()
        ));
    }
    if transports.in_memory.devices_per_second < min_in_memory {
        return Err(format!(
            "in-memory transport regression: {:.0} devices/s is below the accepted floor of {min_in_memory:.0}",
            transports.in_memory.devices_per_second
        ));
    }
    if transports.loopback.devices_per_second < min_loopback {
        return Err(format!(
            "loopback TCP regression: {:.0} devices/s is below the accepted floor of {min_loopback:.0}",
            transports.loopback.devices_per_second
        ));
    }
    if campaigns.over_tcp.devices_per_second < min_campaign {
        return Err(format!(
            "campaign-over-TCP regression: {:.0} devices/s is below the accepted floor of {min_campaign:.0}",
            campaigns.over_tcp.devices_per_second
        ));
    }
    if transports.obs_ratio() < min_obs_ratio {
        return Err(format!(
            "telemetry overhead regression: the observed loopback sweep runs at {:.2}x the bare \
             sweep, below the accepted {min_obs_ratio}x",
            transports.obs_ratio()
        ));
    }
    if aggs.loopback_ratio() < min_agg_ratio {
        return Err(format!(
            "aggregated sweep regression: {:.2}x the per-device loopback sweep is below the \
             accepted {min_agg_ratio}x",
            aggs.loopback_ratio()
        ));
    }
    if clusters.scaling_ratio() < min_cluster_ratio {
        return Err(format!(
            "cluster fan-out regression: widest cluster sweeps at {:.2}x the single-gateway rate, \
             below the accepted {min_cluster_ratio}x",
            clusters.scaling_ratio()
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
