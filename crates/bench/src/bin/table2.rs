//! Prints Table II: control-flow instruction sets of low-end platforms.

use eilid::PlatformIsa;

fn main() {
    println!(
        "{:<18} {:<8} {:<8} {:<22} Indirect Call",
        "Platform", "Call", "Return", "Return from Interrupt"
    );
    for row in PlatformIsa::table() {
        println!(
            "{:<18} {:<8} {:<8} {:<22} {}",
            row.platform.name(),
            row.call.join(", ").to_uppercase(),
            row.ret.join(", ").to_uppercase(),
            row.reti.join(", ").to_uppercase(),
            row.indirect_call.join(", ").to_uppercase()
        );
    }
}
