//! Prints Table III: registers reserved for EILID.

use eilid::ReservedRegisters;

fn main() {
    println!("{:<10} Description", "Registers");
    for (reg, description) in ReservedRegisters::default().table_rows() {
        println!("{:<10} {}", reg.to_string(), description);
    }
}
