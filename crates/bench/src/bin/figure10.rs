//! Prints Figure 10: hardware overhead of EILID vs. prior CFI/CFA work.

use eilid_bench::{render_figure10a, render_figure10b};
use eilid_hwcost::{eilid_monitor_cost, openmsp430_baseline};

fn main() {
    println!("{}", render_figure10a());
    println!("{}", render_figure10b());
    let cost = eilid_monitor_cost(
        &eilid_casu::CasuPolicy::default(),
        &eilid::EilidConfig::default(),
    );
    let (lut_pct, reg_pct) = cost.percent_of(&openmsp430_baseline());
    println!(
        "EILID over baseline openMSP430: +{} LUTs ({:.1}%), +{} registers ({:.1}%)",
        cost.luts, lut_pct, cost.registers, reg_pct
    );
    println!("(paper: +99 LUTs (5.3%), +34 registers (4.9%))");
}
