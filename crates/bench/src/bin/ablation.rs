//! Prints the design-choice ablations: register-resident shadow-stack index,
//! forward-edge protection, and shadow-stack sizing.

use eilid_bench::{
    forward_edge_ablation, index_register_ablation, render_ablation, shadow_stack_sizing,
};
use eilid_workloads::WorkloadId;

fn main() {
    let rows = index_register_ablation(&[WorkloadId::LightSensor, WorkloadId::FireSensor]);
    println!(
        "{}",
        render_ablation(
            "Shadow-stack index in r5 vs. secure memory (SS-B, paper SS V-B)",
            &rows
        )
    );
    let rows = forward_edge_ablation(&[WorkloadId::Charlieplexing]);
    println!(
        "{}",
        render_ablation("Forward-edge (P3) protection on vs. off", &rows)
    );
    println!("Shadow-stack sizing (paper default: 256 bytes of secure DMEM):");
    for row in shadow_stack_sizing(&[16, 32, 64, 112, 128, 192]) {
        println!(
            "  capacity {:>3} entries -> {:>4} bytes of secure DMEM {}",
            row.capacity,
            row.secure_dmem_bytes,
            if row.fits_default_region {
                "(fits)"
            } else {
                "(exceeds default region)"
            }
        );
    }
}
