//! Fleet attestation-throughput scenario.
//!
//! Prints a sweep-throughput matrix (both measurement schemes at several
//! fleet sizes and thread counts), then runs the flat-vs-incremental
//! head-to-head on a mostly-clean fleet and writes the result to
//! `BENCH_fleet.json` — the recorded perf baseline later PRs regress
//! against.
//!
//! ```text
//! fleet [--devices N] [--threads N] [--json PATH] [--min-speedup X] [--quick]
//! ```
//!
//! `--quick` skips the matrix and runs only the (smaller) head-to-head —
//! the CI smoke mode. `--min-speedup X` exits non-zero when the
//! incremental-vs-flat speedup falls below `X`, turning the CI step into
//! an actual regression gate.

use std::process::ExitCode;

use eilid_bench::fleet::{
    compare_sweep_throughput, measure_sweep_throughput, render_bench_json, render_fleet_throughput,
};
use eilid_casu::MeasurementScheme;

/// Parses `--flag value`; a missing flag yields `default`, an
/// unparseable value is a hard error (never a silent fallback that would
/// record a baseline for a different configuration than requested).
fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse::<T>()
            .map_err(|_| format!("invalid {flag} value: {}", args[i + 1])),
        None => Ok(default),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let devices = flag_value(&args, "--devices", if quick { 256 } else { 1000 })?;
    let threads = flag_value(&args, "--threads", 4)?;
    let min_speedup: f64 = flag_value(&args, "--min-speedup", 0.0)?;
    // `--quick` runs a smaller, non-comparable configuration, so it must
    // never silently overwrite the recorded full-size baseline: without
    // an explicit `--json` it does not write at all.
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| (!quick).then(|| "BENCH_fleet.json".to_string()));

    if !quick {
        let mut rows = Vec::new();
        for &devices in &[64usize, 256, 1024] {
            for &threads in &[1usize, 4] {
                for scheme in [MeasurementScheme::FlatSha256, MeasurementScheme::Merkle] {
                    rows.push(measure_sweep_throughput(devices, threads, scheme));
                }
            }
        }
        print!("{}", render_fleet_throughput(&rows));
        println!();
    }

    println!("head-to-head: {devices} devices, {threads} threads, ~1% dirtied between sweeps");
    let comparison = compare_sweep_throughput(devices, threads);
    println!(
        "  flat        {:>9.0} devices/s",
        comparison.flat.devices_per_second
    );
    println!(
        "  incremental {:>9.0} devices/s",
        comparison.incremental.devices_per_second
    );
    println!("  speedup     {:>9.2}x", comparison.speedup());

    if let Some(json_path) = json_path {
        let json = render_bench_json(&comparison);
        std::fs::write(&json_path, &json)
            .map_err(|error| format!("could not write {json_path}: {error}"))?;
        println!("wrote {json_path}");
    }

    if comparison.speedup() < min_speedup {
        return Err(format!(
            "incremental speedup {:.2}x is below the required {min_speedup:.2}x",
            comparison.speedup()
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
