//! Prints the fleet attestation-throughput scenario: one full sweep at
//! several fleet sizes and thread counts.

use eilid_bench::fleet::{measure_attestation_throughput, render_fleet_throughput};

fn main() {
    let mut rows = Vec::new();
    for &devices in &[64usize, 256, 1024] {
        for &threads in &[1usize, 2, 4, 8] {
            rows.push(measure_attestation_throughput(devices, threads));
        }
    }
    print!("{}", render_fleet_throughput(&rows));
}
