//! # eilid-bench — the experiment harness
//!
//! One module (and one binary under `src/bin/`) per table and figure of the
//! EILID paper:
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Table I (CFI/CFA comparison) | [`eilid_hwcost::table1`] | `table1` |
//! | Table II (platform instruction sets) | [`eilid::instrument::platform`] | `table2` |
//! | Table III (reserved registers) | [`eilid::sw::dispatch`] | `table3` |
//! | Table IV (software overhead) | [`table4`] | `table4` |
//! | Figures 3–8 (instrumentation templates) | [`figures`] | `templates` |
//! | Figure 10 (hardware overhead) | [`figures`], [`eilid_hwcost`] | `figure10` |
//! | §VI micro-costs | [`micro`] | `micro` |
//! | Design-choice ablations | [`ablation`] | `ablation` |
//! | Fleet attestation throughput (beyond the paper) | [`fleet`] | `fleet` |
//!
//! The Criterion benches under `benches/` exercise the same code paths with
//! statistical timing; the binaries print the tables in the paper's layout
//! (with the paper's reference numbers alongside) and are what
//! `EXPERIMENTS.md` is generated from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod figures;
pub mod fleet;
pub mod micro;
pub mod net;
pub mod paper_reference;
pub mod table4;

pub use ablation::{
    forward_edge_ablation, index_register_ablation, render_ablation, shadow_stack_sizing,
    AblationRow, ShadowSizingRow,
};
pub use figures::{render_figure10a, render_figure10b, render_instrumentation_templates};
pub use fleet::{
    compare_sweep_throughput, measure_attestation_throughput, measure_sweep_throughput,
    render_bench_json, render_fleet_throughput, FleetThroughputRow, SweepComparison,
};
pub use micro::{measure_micro_costs, MicroCosts};
pub use paper_reference::{paper_averages, paper_micro_costs, paper_table4, PaperTable4Row};
pub use table4::{measure_all, measure_workload, Table4, Table4Options, Table4Row};
