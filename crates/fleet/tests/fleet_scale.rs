//! Fleet integration tests: batched attestation, violation telemetry,
//! staged OTA campaigns with halt-and-rollback, and the release-mode
//! 1 000-device scale test.

use std::time::Instant;

use eilid_casu::{DeviceKey, UpdateAuthority};
use eilid_fleet::fixtures::{
    benign_patch, bricking_patch, BENIGN_PATCH_TARGET, BRICKING_PATCH_TARGET,
};
use eilid_fleet::{
    CampaignConfig, CampaignOutcome, FleetBuilder, FleetOps, HealthClass, LedgerEvent, LocalOps,
    OpsError,
};
use eilid_workloads::WorkloadId;

const ROOT: &[u8] = b"fleet-root-key-0123456789abcdef";

fn root_key() -> DeviceKey {
    DeviceKey::new(ROOT).unwrap()
}

#[test]
fn fresh_fleet_attests_clean() {
    let (mut fleet, mut verifier) = FleetBuilder::new(root_key())
        .devices(14)
        .threads(2)
        .build()
        .unwrap();
    assert_eq!(fleet.len(), 14);
    // Round-robin over all seven workloads → two devices per cohort.
    assert_eq!(fleet.cohort_ids().len(), 7);

    let report = verifier.sweep(&mut fleet);
    assert_eq!(report.count(HealthClass::Attested), 14);
    assert_eq!(report.count(HealthClass::Tampered), 0);
    assert!(report.devices_per_second() > 0.0);
}

#[test]
fn tampered_pmem_is_flagged_by_the_sweep() {
    let (mut fleet, mut verifier) = FleetBuilder::new(root_key())
        .devices(8)
        .threads(2)
        .workloads(&[WorkloadId::LightSensor])
        .build()
        .unwrap();

    // A physical attacker flips one instruction byte on two devices.
    for &victim in &[2usize, 5] {
        let device = &mut fleet.devices_mut()[victim];
        let memory = &mut device.device_mut().cpu_mut().memory;
        let original = memory.read_byte(0xE010);
        memory.write_byte(0xE010, original ^ 0x01);
    }

    let report = verifier.sweep(&mut fleet);
    assert_eq!(report.count(HealthClass::Attested), 6);
    assert_eq!(report.count(HealthClass::Tampered), 2);
    assert_eq!(report.devices_in(HealthClass::Tampered), vec![2, 5]);
    // Flagged devices land in the ledger.
    assert!(fleet
        .ledger()
        .events()
        .iter()
        .any(|e| matches!(e, LedgerEvent::AttestationFlagged { device: 2, .. })));
}

#[test]
fn violation_telemetry_records_reset_and_recovery() {
    let (mut fleet, verifier) = FleetBuilder::new(root_key())
        .devices(4)
        .threads(1)
        .workloads(&[WorkloadId::LightSensor])
        .build()
        .unwrap();

    // Tamper device 1's entry point so execution jumps into DMEM.
    {
        let device = &mut fleet.devices_mut()[1];
        let memory = &mut device.device_mut().cpu_mut().memory;
        memory.load(0xE000, &bricking_patch()).unwrap();
    }

    let report = fleet.run_slice(5_000_000);
    assert_eq!(report.completed, 3);
    assert_eq!(report.violations, 1);
    assert_eq!(fleet.ledger().violation_resets(1), 1);
    assert_eq!(fleet.ledger().total_violation_resets(), 1);

    // Repair the device through the authenticated update path (the same
    // bytes an untampered sibling holds), reboot, and watch it recover.
    {
        let span = 0xE000..0xE000 + bricking_patch().len();
        let good_bytes: Vec<u8> = fleet.devices()[0]
            .device()
            .cpu()
            .memory
            .slice(span)
            .to_vec();
        let key = verifier.device_key(1);
        let device = &mut fleet.devices_mut()[1];
        let mut authority =
            UpdateAuthority::with_key_resuming(&key, device.engine().last_nonce() + 1);
        let request = authority.authorize(0xE000, &good_bytes);
        device.apply_update(&request).unwrap();
        device.reboot();
    }

    let report = fleet.run_slice(5_000_000);
    assert_eq!(report.completed, 4);
    assert_eq!(report.violations, 0);
    assert_eq!(fleet.ledger().recovered_devices(), vec![1]);

    // Recovery is recorded once, not on every later slice.
    fleet.run_slice(5_000_000);
    fleet.run_slice(5_000_000);
    assert_eq!(fleet.ledger().recovered_devices(), vec![1]);
}

#[test]
fn campaign_patch_past_address_space_is_rejected_not_a_panic() {
    let (mut fleet, mut verifier) = FleetBuilder::new(root_key())
        .devices(2)
        .threads(1)
        .workloads(&[WorkloadId::LightSensor])
        .build()
        .unwrap();
    let config = CampaignConfig::new(WorkloadId::LightSensor, 0xFFFE, vec![0; 8]);
    let result = LocalOps::new(&mut fleet, &mut verifier).run_campaign(&config);
    assert!(
        matches!(
            result,
            Err(OpsError::Fleet(eilid_fleet::FleetError::InvalidCampaign(_)))
        ),
        "got {result:?}"
    );
}

#[test]
fn good_campaign_completes_and_new_firmware_attests() {
    let (mut fleet, mut verifier) = FleetBuilder::new(root_key())
        .devices(10)
        .threads(2)
        .workloads(&[WorkloadId::LightSensor])
        .build()
        .unwrap();

    let config = CampaignConfig::new(WorkloadId::LightSensor, BENIGN_PATCH_TARGET, benign_patch());
    let report = LocalOps::new(&mut fleet, &mut verifier)
        .run_campaign(&config)
        .unwrap();

    assert!(report.is_completed(), "outcome: {:?}", report.outcome);
    assert_eq!(report.outcome, CampaignOutcome::Completed { updated: 10 });
    // Canary wave (10% of 10 = 1 device) then the rest.
    assert_eq!(report.waves.len(), 2);
    assert_eq!(report.waves[0].size, 1);
    assert_eq!(report.waves[1].size, 9);
    assert_eq!(report.waves.iter().map(|w| w.failures).sum::<usize>(), 0);

    // The new firmware is now golden: everyone attests clean against it.
    let sweep = verifier.sweep(&mut fleet);
    assert_eq!(sweep.count(HealthClass::Attested), 10);

    // And the devices still work after the patch + reboot.
    let slice = fleet.run_slice(5_000_000);
    assert_eq!(slice.completed, 10);
}

/// A wave that passes the failure threshold must still not leave its
/// individual probe-failed devices on the new firmware: each one is
/// rolled back, excluded from the campaign's `updated` count, and
/// flagged by later sweeps.
#[test]
fn probe_failed_devices_are_rolled_back_when_the_wave_passes() {
    let (mut fleet, mut verifier) = FleetBuilder::new(root_key())
        .devices(10)
        .threads(2)
        .workloads(&[WorkloadId::LightSensor])
        .build()
        .unwrap();

    // Pre-tamper two non-canary devices in the unused PMEM gap, outside
    // the patch range: the update still applies and the smoke run still
    // completes, but the post-update attestation probe fails on exactly
    // these devices — 2 of 9 in the full wave, under the 25% threshold.
    for &victim in &[3u64, 5] {
        let device = &mut fleet.devices_mut()[victim as usize];
        let memory = &mut device.device_mut().cpu_mut().memory;
        let original = memory.read_byte(0xF680);
        memory.write_byte(0xF680, original ^ 0x01);
    }

    let config = CampaignConfig::new(WorkloadId::LightSensor, BENIGN_PATCH_TARGET, benign_patch());
    let report = LocalOps::new(&mut fleet, &mut verifier)
        .run_campaign(&config)
        .unwrap();

    // The campaign completes, but the two quarantined devices are not
    // counted as updated — and the report names them directly.
    assert_eq!(report.outcome, CampaignOutcome::Completed { updated: 8 });
    assert_eq!(report.waves.len(), 2);
    assert_eq!(report.waves[1].failures, 2);
    assert_eq!(report.quarantined, vec![3, 5]);
    assert!(report.rollback_incomplete.is_empty());

    // The ledger records the probe failures and the per-device rollbacks.
    let events = fleet.ledger().events();
    for victim in [3u64, 5] {
        assert!(events
            .iter()
            .any(|e| matches!(e, LedgerEvent::ProbeFailed { device } if *device == victim)));
        assert!(events
            .iter()
            .any(|e| matches!(e, LedgerEvent::RolledBack { device } if *device == victim)));
    }

    // Rolled-back devices no longer match the promoted golden (nor, with
    // their tampered byte, the previous one) and are flagged by the next
    // sweep; the other eight attest clean against the new firmware.
    let sweep = verifier.sweep(&mut fleet);
    assert_eq!(sweep.count(HealthClass::Attested), 8);
    assert_eq!(sweep.devices_in(HealthClass::Tampered), vec![3, 5]);
}

/// A campaign that "completes" with every updated device individually
/// rolled back (possible with a permissive failure threshold) must not
/// promote the new golden: no device runs the new firmware.
#[test]
fn zero_retained_campaign_does_not_promote_the_golden_measurement() {
    let (mut fleet, mut verifier) = FleetBuilder::new(root_key())
        .devices(4)
        .threads(2)
        .workloads(&[WorkloadId::LightSensor])
        .build()
        .unwrap();
    let before = verifier
        .expected_measurement(WorkloadId::LightSensor)
        .unwrap();

    // Pre-tamper every device outside the patch range so each
    // post-update attestation probe fails, and set the threshold to 1.0
    // so every wave still "passes" (rate 1.0 is not > 1.0).
    for device in fleet.devices_mut() {
        let memory = &mut device.device_mut().cpu_mut().memory;
        let original = memory.read_byte(0xF680);
        memory.write_byte(0xF680, original ^ 0x01);
    }
    let mut config =
        CampaignConfig::new(WorkloadId::LightSensor, BENIGN_PATCH_TARGET, benign_patch());
    config.failure_threshold = 1.0;
    let report = LocalOps::new(&mut fleet, &mut verifier)
        .run_campaign(&config)
        .unwrap();

    assert_eq!(report.outcome, CampaignOutcome::Completed { updated: 0 });
    assert_eq!(
        verifier.expected_measurement(WorkloadId::LightSensor),
        Some(before),
        "a campaign no device retained must not change the golden"
    );
}

/// A bad patch whose violating store lands *outside* its own range used
/// to corrupt memory before the reset (the simulator committed the
/// write), leaving rollbacks incomplete. The bus-level pre-commit veto
/// closes that gap: the store never reaches the memory array, so rolling
/// back just the patch range restores the device byte-for-byte.
#[test]
fn out_of_range_violating_write_is_vetoed_and_rollback_is_clean() {
    let (mut fleet, mut verifier) = FleetBuilder::new(root_key())
        .devices(10)
        .threads(2)
        .workloads(&[WorkloadId::LightSensor])
        .build()
        .unwrap();
    let write_target = eilid_fleet::fixtures::BRICKING_WRITE_TARGET;
    let before = fleet.devices()[0]
        .device()
        .cpu()
        .memory
        .read_word(write_target);

    // The bricking patch stores to BRICKING_WRITE_TARGET — PMEM far
    // outside the 8-byte patch range at 0xE000.
    let config = CampaignConfig::new(
        WorkloadId::LightSensor,
        BRICKING_PATCH_TARGET,
        bricking_patch(),
    );
    let report = LocalOps::new(&mut fleet, &mut verifier)
        .run_campaign(&config)
        .unwrap();

    match report.outcome {
        CampaignOutcome::HaltedAndRolledBack { rolled_back, .. } => {
            assert_eq!(
                rolled_back, 1,
                "the vetoed write leaves nothing to corrupt: rollback restores the canary"
            );
        }
        other => panic!("bad campaign was not halted: {other:?}"),
    }
    assert!(
        report.rollback_incomplete.is_empty(),
        "no rollback can be incomplete when the violating write never committed"
    );
    assert!(!fleet
        .ledger()
        .events()
        .iter()
        .any(|e| matches!(e, LedgerEvent::RollbackIncomplete { .. })));

    // The out-of-range target still holds its original bytes on every
    // device, the canary's violating run was vetoed at the bus, and the
    // whole fleet attests clean after rollback.
    for device in fleet.devices() {
        assert_eq!(device.device().cpu().memory.read_word(write_target), before);
    }
    assert!(fleet.devices()[0].device().cpu().vetoed_writes() >= 1);
    let sweep = verifier.sweep(&mut fleet);
    assert_eq!(sweep.count(HealthClass::Attested), 10);
}

#[test]
fn bad_campaign_halts_on_the_canary_wave_and_rolls_back() {
    let (mut fleet, mut verifier) = FleetBuilder::new(root_key())
        .devices(20)
        .threads(2)
        .workloads(&[WorkloadId::LightSensor])
        .build()
        .unwrap();

    // The patch bricks the entry point: canary devices violate W⊕X on
    // their post-update smoke run.
    let config = CampaignConfig::new(
        WorkloadId::LightSensor,
        BRICKING_PATCH_TARGET,
        bricking_patch(),
    );
    let report = LocalOps::new(&mut fleet, &mut verifier)
        .run_campaign(&config)
        .unwrap();

    match report.outcome {
        CampaignOutcome::HaltedAndRolledBack {
            wave,
            failure_rate,
            rolled_back,
        } => {
            assert_eq!(wave, 0, "the canary wave must catch the bad firmware");
            assert!(failure_rate > 0.99, "failure rate {failure_rate}");
            assert_eq!(rolled_back, 2, "10% canary of 20 devices");
        }
        other => panic!("bad campaign was not halted: {other:?}"),
    }
    // Only the canary was ever updated.
    assert_eq!(report.waves.len(), 1);

    // Rollback restored the original firmware fleet-wide: everyone
    // attests clean against the unchanged golden measurement and runs.
    let sweep = verifier.sweep(&mut fleet);
    assert_eq!(sweep.count(HealthClass::Attested), 20);
    let slice = fleet.run_slice(5_000_000);
    assert_eq!(slice.completed, 20);
    assert_eq!(slice.violations, 0);

    // The ledger tells the whole story.
    let events = fleet.ledger().events();
    assert!(events
        .iter()
        .any(|e| matches!(e, LedgerEvent::CampaignHalted { wave: 0, .. })));
    assert_eq!(
        events
            .iter()
            .filter(|e| matches!(e, LedgerEvent::RolledBack { .. }))
            .count(),
        2
    );
}

/// The acceptance-scale test: ≥ 1 000 heterogeneous devices, a full
/// A partially-updated cohort must be reported `Stale`, not `Tampered`
/// (and not `Attested`): devices running the *previous* golden firmware
/// are authentic but missed the update.
///
/// The partial cohort is built the way an operator would: a completed
/// campaign promotes the new golden, then an authorized per-device
/// downgrade (e.g. triaging a field regression) returns a few devices to
/// the previous image through the authenticated update path.
#[test]
fn partially_updated_cohort_reports_stale_not_tampered() {
    let (mut fleet, mut verifier) = FleetBuilder::new(root_key())
        .devices(10)
        .threads(2)
        .workloads(&[WorkloadId::LightSensor])
        .build()
        .unwrap();

    // The bytes the previous firmware holds in the patch range.
    let span = usize::from(BENIGN_PATCH_TARGET)..usize::from(BENIGN_PATCH_TARGET) + 8;
    let old_bytes: Vec<u8> = fleet.devices()[0]
        .device()
        .cpu()
        .memory
        .slice(span)
        .to_vec();

    // Everyone updates; the patched image becomes golden, the previous
    // image is demoted to "stale but authentic".
    let config = CampaignConfig::new(WorkloadId::LightSensor, BENIGN_PATCH_TARGET, benign_patch());
    let report = LocalOps::new(&mut fleet, &mut verifier)
        .run_campaign(&config)
        .unwrap();
    assert_eq!(report.outcome, CampaignOutcome::Completed { updated: 10 });

    // Authorized downgrade of three devices back to the previous bytes.
    let downgraded = [1u64, 4, 7];
    for &id in &downgraded {
        let key = verifier.device_key(id);
        let device = &mut fleet.devices_mut()[id as usize];
        let mut authority =
            UpdateAuthority::with_key_resuming(&key, device.engine().last_nonce() + 1);
        let request = authority.authorize(BENIGN_PATCH_TARGET, &old_bytes);
        device.apply_update(&request).unwrap();
        device.reboot();
    }

    // The sweep distinguishes all three classes correctly: downgraded
    // devices are stale (authentic previous firmware), the rest attest
    // against the new golden, and nothing is misreported as tampered.
    let sweep = verifier.sweep(&mut fleet);
    assert_eq!(sweep.count(HealthClass::Attested), 7);
    assert_eq!(sweep.devices_in(HealthClass::Stale), downgraded);
    assert_eq!(sweep.count(HealthClass::Tampered), 0);
    assert_eq!(sweep.count(HealthClass::Unverified), 0);

    // Stale devices are flagged in the ledger for operator follow-up.
    for &id in &downgraded {
        assert!(fleet.ledger().events().iter().any(|e| matches!(
            e,
            LedgerEvent::AttestationFlagged {
                device,
                class: HealthClass::Stale
            } if *device == id
        )));
    }

    // A stale device differs from a tampered one: flip a byte on one
    // downgraded device and it stops being stale.
    {
        let device = &mut fleet.devices_mut()[4];
        let memory = &mut device.device_mut().cpu_mut().memory;
        let original = memory.read_byte(0xE030);
        memory.write_byte(0xE030, original ^ 0x01);
    }
    let sweep = verifier.sweep(&mut fleet);
    assert_eq!(sweep.devices_in(HealthClass::Stale), vec![1, 7]);
    assert_eq!(sweep.devices_in(HealthClass::Tampered), vec![4]);
}

/// attestation sweep, a staged OTA campaign with an injected bad wave
/// (halts + rolls back), a good campaign (completes), and tampered
/// devices flagged — all in well under 60 s in release mode.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-mode scale test; run with `cargo test --release -p eilid_fleet`"
)]
fn thousand_device_fleet_sweep_and_staged_campaign() {
    let start = Instant::now();
    const DEVICES: usize = 1_000;

    let (mut fleet, mut verifier) = FleetBuilder::new(root_key())
        .devices(DEVICES)
        .threads(8)
        .build()
        .unwrap();
    assert_eq!(fleet.len(), DEVICES);

    // 1. Baseline sweep: every device healthy.
    let sweep = verifier.sweep(&mut fleet);
    assert_eq!(sweep.count(HealthClass::Attested), DEVICES);
    println!("baseline sweep: {sweep}");

    // 2. Injected bad wave: a bricking patch for the LightSensor cohort
    //    must halt on the canary and roll back.
    let cohort = WorkloadId::LightSensor;
    let cohort_size = fleet.cohort_members(cohort).len();
    let bad = CampaignConfig::new(cohort, BRICKING_PATCH_TARGET, bricking_patch());
    let bad_report = LocalOps::new(&mut fleet, &mut verifier)
        .run_campaign(&bad)
        .unwrap();
    match bad_report.outcome {
        CampaignOutcome::HaltedAndRolledBack {
            wave, rolled_back, ..
        } => {
            assert_eq!(wave, 0);
            let canary = bad_report.waves[0].size;
            assert!(
                canary >= cohort_size / 12 && canary <= cohort_size / 8,
                "canary wave of {canary} is not ~10% of {cohort_size}"
            );
            assert_eq!(
                rolled_back, canary,
                "every updated canary device rolls back"
            );
        }
        other => panic!("bad wave was not halted: {other:?}"),
    }

    // 3. Good campaign on the same cohort completes in two waves.
    let good = CampaignConfig::new(cohort, BENIGN_PATCH_TARGET, benign_patch());
    let good_report = LocalOps::new(&mut fleet, &mut verifier)
        .run_campaign(&good)
        .unwrap();
    assert_eq!(
        good_report.outcome,
        CampaignOutcome::Completed {
            updated: cohort_size
        }
    );

    // 4. Physical tampering on a handful of devices in another cohort.
    let tampered: Vec<u64> = fleet
        .cohort_members(WorkloadId::FireSensor)
        .into_iter()
        .take(5)
        .collect();
    for &id in &tampered {
        let device = &mut fleet.devices_mut()[id as usize];
        let memory = &mut device.device_mut().cpu_mut().memory;
        let original = memory.read_byte(0xE020);
        memory.write_byte(0xE020, original ^ 0x80);
    }

    // 5. Final sweep: healthy devices attest (including the whole updated
    //    cohort against its new golden), tampered devices are flagged.
    let final_sweep = verifier.sweep(&mut fleet);
    assert_eq!(final_sweep.count(HealthClass::Tampered), tampered.len());
    assert_eq!(
        final_sweep.count(HealthClass::Attested),
        DEVICES - tampered.len()
    );
    assert_eq!(
        final_sweep.devices_in(HealthClass::Tampered),
        tampered,
        "exactly the tampered devices are flagged"
    );
    println!("final sweep: {final_sweep}");

    let elapsed = start.elapsed();
    println!("scale test wall time: {elapsed:?}");
    assert!(
        elapsed.as_secs() < 60,
        "scale test took {elapsed:?}, budget is 60s"
    );
}
