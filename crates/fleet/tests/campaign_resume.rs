//! Resumable-campaign tests: pause between waves, persist the state as
//! bytes, resume, and end up bit-for-bit where an uninterrupted run
//! would have — plus the rollback-verification path that only a
//! *physical* mid-campaign attacker can still trigger now that the
//! bus-level pre-commit veto stops software from corrupting PMEM.

use eilid_casu::DeviceKey;
use eilid_fleet::fixtures::{benign_patch, BENIGN_PATCH_TARGET};
use eilid_fleet::{
    Campaign, CampaignConfig, CampaignOutcome, CampaignStatus, FleetBuilder, FleetOps, HealthClass,
    LedgerEvent, PausedCampaign,
};
use eilid_workloads::WorkloadId;

const ROOT: &[u8] = b"fleet-root-key-0123456789abcdef";

fn root_key() -> DeviceKey {
    DeviceKey::new(ROOT).unwrap()
}

fn build(devices: usize) -> (eilid_fleet::Fleet, eilid_fleet::Verifier) {
    FleetBuilder::new(root_key())
        .devices(devices)
        .threads(2)
        .workloads(&[WorkloadId::LightSensor])
        .build()
        .unwrap()
}

/// A campaign paused after the canary wave, serialised to bytes,
/// deserialised and resumed must produce exactly the report (and leave
/// the fleet in exactly the sweep-visible state) of an uninterrupted
/// run on an identical fleet.
#[test]
fn paused_then_resumed_campaign_matches_uninterrupted_run() {
    let config = CampaignConfig::new(WorkloadId::LightSensor, BENIGN_PATCH_TARGET, benign_patch());

    // Reference: uninterrupted run (through the operator plane).
    let (mut fleet_a, mut verifier_a) = build(10);
    let report_a = eilid_fleet::LocalOps::new(&mut fleet_a, &mut verifier_a)
        .run_campaign(&config)
        .unwrap();
    assert_eq!(report_a.outcome, CampaignOutcome::Completed { updated: 10 });

    // Same campaign on an identical fleet, paused + persisted between
    // the canary wave and the full wave.
    let (mut fleet_b, mut verifier_b) = build(10);
    let campaign = Campaign::new(config).unwrap();
    let mut run = campaign.begin(&mut fleet_b, &mut verifier_b).unwrap();
    assert_eq!(run.wave_cursor(), 0);
    let status = run.step(&mut fleet_b, &mut verifier_b).unwrap();
    assert_eq!(status, CampaignStatus::InProgress { next_wave: 1 });

    let paused = run.pause();
    assert_eq!(paused.wave_cursor(), 1, "the wave cursor is persisted");
    let bytes = paused.to_bytes();
    let restored = PausedCampaign::from_bytes(&bytes).unwrap();
    assert_eq!(restored, paused, "byte round-trip is lossless");

    let mut resumed = Campaign::resume(restored);
    while resumed.step(&mut fleet_b, &mut verifier_b).unwrap() != CampaignStatus::Finished {}
    let report_b = resumed.report().unwrap();

    assert_eq!(
        report_b, report_a,
        "a paused-then-resumed campaign must report exactly like an uninterrupted one"
    );

    // And the fleets are observably identical afterwards: same golden,
    // same sweep classification.
    assert_eq!(
        verifier_a.expected_measurement(WorkloadId::LightSensor),
        verifier_b.expected_measurement(WorkloadId::LightSensor)
    );
    let sweep_a = verifier_a.sweep(&mut fleet_a);
    let sweep_b = verifier_b.sweep(&mut fleet_b);
    assert_eq!(sweep_a.count(HealthClass::Attested), 10);
    assert_eq!(sweep_b.count(HealthClass::Attested), 10);
}

/// Pausing immediately (before any wave) and resuming is also lossless.
#[test]
fn pause_before_the_first_wave_resumes_from_the_start() {
    let config = CampaignConfig::new(WorkloadId::LightSensor, BENIGN_PATCH_TARGET, benign_patch());
    let (mut fleet, mut verifier) = build(6);
    let campaign = Campaign::new(config).unwrap();
    let run = campaign.begin(&mut fleet, &mut verifier).unwrap();
    let paused = run.pause();
    assert_eq!(paused.wave_cursor(), 0);
    let restored = PausedCampaign::from_bytes(&paused.to_bytes()).unwrap();
    let mut resumed = Campaign::resume(restored);
    while resumed.step(&mut fleet, &mut verifier).unwrap() != CampaignStatus::Finished {}
    assert_eq!(
        resumed.report().unwrap().outcome,
        CampaignOutcome::Completed { updated: 6 }
    );
}

/// Corrupt bytes are a typed error, never a panic.
#[test]
fn malformed_paused_campaign_bytes_are_rejected() {
    let config = CampaignConfig::new(WorkloadId::LightSensor, BENIGN_PATCH_TARGET, benign_patch());
    let (mut fleet, mut verifier) = build(4);
    let paused = Campaign::new(config)
        .unwrap()
        .begin(&mut fleet, &mut verifier)
        .unwrap()
        .pause();
    let bytes = paused.to_bytes();

    // Truncations at every plausible boundary.
    for cut in [0usize, 3, 4, 17, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            PausedCampaign::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} must be rejected"
        );
    }
    // Wrong magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    assert!(PausedCampaign::from_bytes(&bad).is_err());
    // Trailing garbage.
    let mut bad = bytes.clone();
    bad.push(0);
    assert!(PausedCampaign::from_bytes(&bad).is_err());
    // Unknown cohort index.
    let mut bad = bytes;
    bad[4] = 0xEE;
    assert!(PausedCampaign::from_bytes(&bad).is_err());
}

/// With the pre-commit veto, campaign firmware can no longer corrupt
/// PMEM outside its patch range — but a *physical* attacker striking
/// while a campaign is paused still can. The rollback verification must
/// catch exactly that: the tampered device's post-rollback measurement
/// differs from its pre-update snapshot, so it is reported
/// `RollbackIncomplete` while untampered devices roll back clean.
#[test]
fn mid_pause_physical_tamper_is_reported_rollback_incomplete() {
    let (mut fleet, mut verifier) = build(10);

    // Pre-tamper three non-canary devices in the unused PMEM gap: their
    // post-update probes will fail, pushing the full wave's failure rate
    // (3/9) over the 0.25 threshold — the campaign halts and rolls back.
    for &victim in &[3u64, 5, 7] {
        let device = &mut fleet.devices_mut()[victim as usize];
        let memory = &mut device.device_mut().cpu_mut().memory;
        let original = memory.read_byte(0xF680);
        memory.write_byte(0xF680, original ^ 0x01);
    }

    let config = CampaignConfig::new(WorkloadId::LightSensor, BENIGN_PATCH_TARGET, benign_patch());
    let campaign = Campaign::new(config).unwrap();
    let mut run = campaign.begin(&mut fleet, &mut verifier).unwrap();

    // Canary wave (device 0) passes.
    assert_eq!(
        run.step(&mut fleet, &mut verifier).unwrap(),
        CampaignStatus::InProgress { next_wave: 1 }
    );
    let paused = run.pause();

    // While the campaign is paused, a physical attacker flips a byte on
    // the already-updated canary, *outside* the patch range. Its
    // pre-update snapshot was taken before the tamper, so no rollback of
    // the patch range can restore that measurement.
    {
        let device = &mut fleet.devices_mut()[0];
        let memory = &mut device.device_mut().cpu_mut().memory;
        let original = memory.read_byte(0xF680);
        memory.write_byte(0xF680, original ^ 0x01);
    }

    let mut resumed = Campaign::resume(PausedCampaign::from_bytes(&paused.to_bytes()).unwrap());
    while resumed.step(&mut fleet, &mut verifier).unwrap() != CampaignStatus::Finished {}
    let report = resumed.report().unwrap();

    match report.outcome {
        CampaignOutcome::HaltedAndRolledBack {
            wave, rolled_back, ..
        } => {
            assert_eq!(wave, 1, "the full wave trips the threshold");
            // All 10 devices updated; 9 roll back verified, the tampered
            // canary cannot be restored to its snapshot.
            assert_eq!(rolled_back, 9);
        }
        other => panic!("campaign was not halted: {other:?}"),
    }
    assert_eq!(
        report.rollback_incomplete,
        vec![0],
        "the mid-pause-tampered canary must be named"
    );
    assert!(fleet
        .ledger()
        .events()
        .iter()
        .any(|e| matches!(e, LedgerEvent::RollbackIncomplete { device: 0 })));

    // The next sweep flags exactly the physically tampered devices
    // (canary + the three pre-tampered ones); the rest attest clean.
    let sweep = verifier.sweep(&mut fleet);
    assert_eq!(sweep.devices_in(HealthClass::Tampered), vec![0, 3, 5, 7]);
    assert_eq!(sweep.count(HealthClass::Attested), 6);
}
