//! The in-process `FleetOps` backend: trait semantics (lifecycle
//! errors, pause/resume through the byte record, health queries) and
//! equivalence with the raw `Campaign` engine it wraps.

use eilid_casu::DeviceKey;
use eilid_fleet::fixtures::{benign_patch, BENIGN_PATCH_TARGET};
use eilid_fleet::{
    Campaign, CampaignConfig, CampaignOutcome, CampaignPhase, CampaignStatus, FleetBuilder,
    FleetOps, HealthClass, LocalOps, OpsError,
};
use eilid_workloads::WorkloadId;

const ROOT: &[u8] = b"fleet-root-key-0123456789abcdef";

fn build(devices: usize) -> (eilid_fleet::Fleet, eilid_fleet::Verifier) {
    FleetBuilder::new(DeviceKey::new(ROOT).unwrap())
        .devices(devices)
        .threads(2)
        .workloads(&[WorkloadId::LightSensor])
        .build()
        .unwrap()
}

fn config() -> CampaignConfig {
    CampaignConfig::new(WorkloadId::LightSensor, BENIGN_PATCH_TARGET, benign_patch())
}

/// `run_campaign` through the trait equals the raw engine's report.
#[test]
fn run_campaign_matches_the_raw_engine() {
    let (mut fleet_a, mut verifier_a) = build(10);
    let mut run = Campaign::new(config())
        .unwrap()
        .begin(&mut fleet_a, &mut verifier_a)
        .unwrap();
    while run.step(&mut fleet_a, &mut verifier_a).unwrap() != CampaignStatus::Finished {}
    let report_engine = run.report().unwrap();

    let (mut fleet_b, mut verifier_b) = build(10);
    let report_trait = LocalOps::new(&mut fleet_b, &mut verifier_b)
        .run_campaign(&config())
        .unwrap();

    assert_eq!(report_trait, report_engine);
    assert_eq!(
        report_trait.outcome,
        CampaignOutcome::Completed { updated: 10 }
    );
}

/// The sweep summary agrees with the verifier's full report.
#[test]
fn sweep_summary_matches_the_full_report() {
    let (mut fleet, mut verifier) = build(8);
    // Tamper one device so the flagged list is non-trivial.
    {
        let device = &mut fleet.devices_mut()[3];
        let memory = &mut device.device_mut().cpu_mut().memory;
        let original = memory.read_byte(0xE010);
        memory.write_byte(0xE010, original ^ 0x01);
    }
    let reference = verifier.sweep(&mut fleet);
    let summary = LocalOps::new(&mut fleet, &mut verifier).sweep().unwrap();
    assert_eq!(summary.devices, 8);
    assert_eq!(summary.count(HealthClass::Attested), 7);
    assert_eq!(summary.count(HealthClass::Tampered), 1);
    assert_eq!(summary.flagged, vec![(3, HealthClass::Tampered)]);
    assert_eq!(
        summary.count(HealthClass::Attested),
        reference.count(HealthClass::Attested)
    );
    assert_eq!(
        summary.count(HealthClass::Tampered),
        reference.count(HealthClass::Tampered)
    );
}

/// The campaign slot lifecycle: begin/step/status/report transitions
/// and their typed error cases.
#[test]
fn campaign_slot_lifecycle_and_errors() {
    let (mut fleet, mut verifier) = build(10);
    let mut ops = LocalOps::new(&mut fleet, &mut verifier);

    // Nothing loaded yet.
    assert_eq!(ops.campaign_status().unwrap(), CampaignPhase::Idle);
    assert!(matches!(ops.campaign_step(), Err(OpsError::NoCampaign)));
    assert!(matches!(ops.campaign_report(), Err(OpsError::NoCampaign)));
    assert!(matches!(ops.campaign_pause(), Err(OpsError::NoCampaign)));

    // Load, double-begin refused.
    ops.campaign_begin(&config()).unwrap();
    assert_eq!(
        ops.campaign_status().unwrap(),
        CampaignPhase::InProgress { next_wave: 0 }
    );
    assert!(matches!(
        ops.campaign_begin(&config()),
        Err(OpsError::CampaignActive)
    ));

    // Step to completion.
    assert_eq!(
        ops.campaign_step().unwrap(),
        CampaignStatus::InProgress { next_wave: 1 }
    );
    assert_eq!(ops.campaign_step().unwrap(), CampaignStatus::Finished);
    assert_eq!(ops.campaign_status().unwrap(), CampaignPhase::Finished);
    let report = ops.campaign_report().unwrap();
    assert_eq!(report.outcome, CampaignOutcome::Completed { updated: 10 });

    // A finished run cannot be paused (same refusal as the gateway
    // backend), and its report stays readable afterwards.
    assert!(matches!(ops.campaign_pause(), Err(OpsError::NoCampaign)));
    assert_eq!(ops.campaign_report().unwrap(), report);

    // Health reflects fleet + slot state.
    let health = ops.health().unwrap();
    assert_eq!(health.devices, 10);
    assert_eq!(health.campaign, CampaignPhase::Finished);
    assert!(health.ledger_events > 0);
}

/// Pause hands the caller the `PausedCampaign` bytes; resuming them on
/// the same backend finishes bit-for-bit like an uninterrupted run.
#[test]
fn pause_resume_through_the_trait_is_lossless() {
    let (mut fleet_a, mut verifier_a) = build(10);
    let report_reference = LocalOps::new(&mut fleet_a, &mut verifier_a)
        .run_campaign(&config())
        .unwrap();

    let (mut fleet_b, mut verifier_b) = build(10);
    let mut ops = LocalOps::new(&mut fleet_b, &mut verifier_b);
    ops.campaign_begin(&config()).unwrap();
    assert_eq!(
        ops.campaign_step().unwrap(),
        CampaignStatus::InProgress { next_wave: 1 }
    );
    let paused = ops.campaign_pause().unwrap();
    // The slot is empty while the caller owns the bytes.
    assert_eq!(ops.campaign_status().unwrap(), CampaignPhase::Idle);
    assert!(matches!(ops.campaign_step(), Err(OpsError::NoCampaign)));

    ops.campaign_resume(&paused).unwrap();
    assert_eq!(
        ops.campaign_status().unwrap(),
        CampaignPhase::InProgress { next_wave: 1 }
    );
    while ops.campaign_step().unwrap() != CampaignStatus::Finished {}
    assert_eq!(ops.campaign_report().unwrap(), report_reference);

    // Malformed bytes are a typed error.
    assert!(matches!(
        ops.campaign_resume(b"not a paused campaign"),
        Err(OpsError::CampaignActive) // still loaded from above
    ));
    let _ = ops.campaign_report().unwrap();
}

/// Invalid configs and unknown cohorts surface as `OpsError::Fleet`.
#[test]
fn invalid_campaigns_are_typed_fleet_errors() {
    let (mut fleet, mut verifier) = build(4);
    let mut ops = LocalOps::new(&mut fleet, &mut verifier);

    let mut bad = config();
    bad.payload.clear();
    assert!(matches!(ops.campaign_begin(&bad), Err(OpsError::Fleet(_))));

    let mut foreign = config();
    foreign.cohort = WorkloadId::FireSensor; // not in this fleet
    assert!(matches!(
        ops.campaign_begin(&foreign),
        Err(OpsError::Fleet(_))
    ));

    // Rejected begins leave the slot clean.
    assert_eq!(ops.campaign_status().unwrap(), CampaignPhase::Idle);
}
