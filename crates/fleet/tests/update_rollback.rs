//! Anti-rollback at the fleet layer: a device's monotonic version
//! counter survives reboots, kills replayed update requests and
//! version downgrades *device-side*, and a downgrade campaign is
//! rejected by every device with the refusals recorded in the fleet
//! ledger — the operator sees exactly why nothing was installed.

use eilid_casu::{DeviceKey, UpdateAuthority, UpdateError};
use eilid_fleet::fixtures::{benign_patch, BENIGN_PATCH_TARGET};
use eilid_fleet::{
    CampaignConfig, CampaignOutcome, Fleet, FleetBuilder, FleetOps, LedgerEvent, LocalOps, Verifier,
};
use eilid_workloads::WorkloadId;

const ROOT: &[u8] = b"fleet-root-key-0123456789abcdef";
const COHORT: WorkloadId = WorkloadId::LightSensor;

fn build(devices: usize) -> (Fleet, Verifier) {
    FleetBuilder::new(DeviceKey::new(ROOT).unwrap())
        .devices(devices)
        .threads(2)
        .workloads(&[COHORT])
        .build()
        .unwrap()
}

fn config(version: u64) -> CampaignConfig {
    let mut config = CampaignConfig::new(COHORT, BENIGN_PATCH_TARGET, benign_patch());
    config.smoke_cycles = 200_000;
    config.version = version;
    config
}

/// A replayed `UpdateRequest` — bit-for-bit the one the device already
/// accepted — is refused as stale, and the refusal survives a reboot:
/// the nonce floor is engine state, not boot-session state.
#[test]
fn replayed_update_request_is_rejected_across_reboot() {
    let (mut fleet, verifier) = build(2);
    let key = verifier.device_key(0);
    let device = &mut fleet.devices_mut()[0];
    let mut authority =
        UpdateAuthority::with_key_resuming(&key, device.engine().last_nonce() + 1).with_version(2);

    let request = authority.authorize(BENIGN_PATCH_TARGET, &benign_patch());
    device.apply_update(&request).unwrap();
    assert_eq!(device.engine().last_version(), 2);

    // Same request again, same boot: stale.
    assert!(matches!(
        device.apply_update(&request),
        Err(UpdateError::StaleNonce { .. })
    ));

    // And after a reboot — the replay window never reopens.
    device.reboot();
    assert!(matches!(
        device.apply_update(&request),
        Err(UpdateError::StaleNonce { .. })
    ));
    assert_eq!(device.engine().updates_applied(), 1);
}

/// A correctly MACed, fresh-nonced request carrying an *older* firmware
/// version is a downgrade: refused before and after a reboot, with the
/// version floor intact.
#[test]
fn version_downgrade_is_rejected_across_reboot() {
    let (mut fleet, verifier) = build(2);
    let key = verifier.device_key(0);
    let device = &mut fleet.devices_mut()[0];
    let mut authority =
        UpdateAuthority::with_key_resuming(&key, device.engine().last_nonce() + 1).with_version(3);
    let request = authority.authorize(BENIGN_PATCH_TARGET, &benign_patch());
    device.apply_update(&request).unwrap();

    // Downgrade attempt: fresh nonce, valid MAC, version 1 < 3.
    authority.set_version(1);
    let downgrade = authority.authorize(BENIGN_PATCH_TARGET, &[0xD0; 8]);
    assert_eq!(
        device.apply_update(&downgrade),
        Err(UpdateError::RollbackVersion {
            presented: 1,
            current: 3,
        })
    );

    device.reboot();
    // Re-issue under yet another fresh nonce after the reboot; the
    // floor persists.
    let downgrade = authority.authorize(BENIGN_PATCH_TARGET, &[0xD0; 8]);
    assert_eq!(
        device.apply_update(&downgrade),
        Err(UpdateError::RollbackVersion {
            presented: 1,
            current: 3,
        })
    );
    assert_eq!(device.engine().last_version(), 3);
    // The refused bytes never landed.
    assert_ne!(
        device.device().cpu().memory.read_byte(BENIGN_PATCH_TARGET),
        0xD0
    );
}

/// A whole *campaign* carrying an older version is refused by every
/// device, halts at the canary, and the ledger records each device's
/// `RollbackVersion` refusal — the fleet-wide audit trail of the
/// downgrade attempt.
#[test]
fn downgrade_campaign_halts_and_is_ledger_recorded() {
    let (mut fleet, mut verifier) = build(8);

    let report = LocalOps::new(&mut fleet, &mut verifier)
        .run_campaign(&config(2))
        .unwrap();
    assert_eq!(report.outcome, CampaignOutcome::Completed { updated: 8 });

    let report = LocalOps::new(&mut fleet, &mut verifier)
        .run_campaign(&config(1))
        .unwrap();
    assert!(
        matches!(
            report.outcome,
            CampaignOutcome::HaltedAndRolledBack {
                wave: 0,
                rolled_back: 0,
                ..
            }
        ),
        "a downgrade campaign must die at the canary with nothing installed: {:?}",
        report.outcome
    );

    let rejections: Vec<_> = fleet
        .ledger()
        .events()
        .iter()
        .filter_map(|event| match event {
            LedgerEvent::UpdateRejected {
                device,
                error: UpdateError::RollbackVersion { presented, current },
            } => Some((*device, *presented, *current)),
            _ => None,
        })
        .collect();
    assert!(
        !rejections.is_empty(),
        "the ledger must carry the downgrade refusals"
    );
    assert!(
        rejections
            .iter()
            .all(|(_, presented, current)| *presented == 1 && *current == 2),
        "every refusal names the downgrade: {rejections:?}"
    );
}
