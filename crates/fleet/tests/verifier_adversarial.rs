//! Adversarial tests against the *optimised* verifier path: the sharded
//! sweep with cached device keys and the incremental (Merkle) device
//! measurers. Every optimisation is a place where stale state could leak
//! into a trust decision; these tests pin down that none does:
//!
//! * stale-cache attack — tamper a device's PMEM *between* sweeps and
//!   assert the next incremental sweep classifies it `Tampered` (the
//!   device-side Merkle cache must be invalidated by the write, and the
//!   verifier must never echo a previous sweep's verdict);
//! * cross-device replay — present device A's honestly produced report
//!   as device B's answer and assert the cached-key verifier rejects it
//!   (per-device keys, challenge binding).

use eilid_casu::{AttestError, AttestationVerifier, Attestor, DeviceKey, MeasurementScheme};
use eilid_fleet::{FleetBuilder, HealthClass};
use eilid_workloads::WorkloadId;

const ROOT: &[u8] = b"fleet-root-key-0123456789abcdef";

fn root_key() -> DeviceKey {
    DeviceKey::new(ROOT).unwrap()
}

/// Tampering after a clean sweep must flip the device to `Tampered` on
/// the next sweep — across repeated sweeps (warm key caches, warm Merkle
/// trees), and back to `Attested` after an authenticated repair.
#[test]
fn stale_cache_attack_is_flagged_on_the_next_sweep() {
    let (mut fleet, mut verifier) = FleetBuilder::new(root_key())
        .devices(8)
        .threads(2)
        .workloads(&[WorkloadId::LightSensor])
        .build()
        .unwrap();
    assert_eq!(fleet.scheme(), MeasurementScheme::Merkle);

    // Several clean sweeps first: key caches and Merkle trees are warm,
    // and the devices' measurers have served cached roots repeatedly.
    for _ in 0..3 {
        let report = verifier.sweep(&mut fleet);
        assert_eq!(report.count(HealthClass::Attested), 8);
    }
    assert_eq!(verifier.cached_keys(), 8);
    let clean_stats = *fleet.devices()[3].measurer_stats().unwrap();
    assert_eq!(
        clean_stats.leaves_rehashed, 0,
        "clean sweeps must not re-hash any leaf"
    );

    // The attacker flips one byte on device 3 *after* the sweeps.
    {
        let device = &mut fleet.devices_mut()[3];
        let memory = &mut device.device_mut().cpu_mut().memory;
        let original = memory.read_byte(0xE010);
        memory.write_byte(0xE010, original ^ 0x01);
    }

    let report = verifier.sweep(&mut fleet);
    assert_eq!(report.count(HealthClass::Attested), 7);
    assert_eq!(report.devices_in(HealthClass::Tampered), vec![3]);
    // Detection cost: exactly the one dirtied leaf was re-hashed.
    let stats = *fleet.devices()[3].measurer_stats().unwrap();
    assert_eq!(stats.leaves_rehashed, 1);

    // The flag is sticky across further sweeps (the engine keeps
    // reporting the tampered content, never a cached pre-tamper root).
    let again = verifier.sweep(&mut fleet);
    assert_eq!(again.devices_in(HealthClass::Tampered), vec![3]);

    // Authenticated repair through the update path clears it.
    {
        let good: Vec<u8> = fleet.devices()[0]
            .device()
            .cpu()
            .memory
            .slice(0xE010..0xE011)
            .to_vec();
        let key = verifier.device_key(3);
        let device = &mut fleet.devices_mut()[3];
        let mut authority =
            eilid_casu::UpdateAuthority::with_key_resuming(&key, device.engine().last_nonce() + 1);
        let request = authority.authorize(0xE010, &good);
        device.apply_update(&request).unwrap();
    }
    let healed = verifier.sweep(&mut fleet);
    assert_eq!(healed.count(HealthClass::Attested), 8);
}

/// Device A's honest report must never verify as device B's: the shard
/// key cache hands back *B's* key for B's challenge, under which A's MAC
/// is garbage — and the challenge binding catches mismatched nonces
/// first when the attacker replays wholesale.
#[test]
fn cross_device_report_replay_is_rejected() {
    let (mut fleet, mut verifier) = FleetBuilder::new(root_key())
        .devices(4)
        .threads(2)
        .workloads(&[WorkloadId::LightSensor])
        .build()
        .unwrap();
    // Warm the verifier's key caches so the replay hits cached keys.
    verifier.sweep(&mut fleet);
    assert_eq!(verifier.cached_keys(), 4);

    let key_a = verifier.device_key(0);
    let key_b = verifier.device_key(1);
    let verifier_b = AttestationVerifier::with_key(&key_b);
    let layout = fleet.devices()[0].device().layout().clone();

    // The verifier challenges device B; the attacker answers with a
    // report honestly produced by (clean) device A under A's key.
    let challenge_b = verifier_b.challenge_pmem(&layout, 10_001);
    let report_a = fleet.devices_mut()[0].attest(challenge_b);
    assert_eq!(
        verifier_b.verify(&challenge_b, &report_a, None),
        Err(AttestError::BadMac),
        "a report MACed under device A's key must not verify as device B"
    );

    // Wholesale replay of A's *previous* report (answering A's own
    // challenge) against B's fresh challenge dies on challenge binding
    // even before the MAC check.
    let attestor_a = Attestor::with_key(&key_a);
    let challenge_a = AttestationVerifier::with_key(&key_a).challenge_pmem(&layout, 10_000);
    let recorded_a = attestor_a.attest(&fleet.devices()[0].device().cpu().memory, challenge_a);
    assert_eq!(
        verifier_b.verify(&challenge_b, &recorded_a, None),
        Err(AttestError::ChallengeMismatch)
    );

    // And the sweep as a whole still attests the untampered fleet clean:
    // replay attempts leave no residue in cached state.
    let report = verifier.sweep(&mut fleet);
    assert_eq!(report.count(HealthClass::Attested), 4);
}

/// Regression test for the sweep thread-count guard: shard assignment is
/// keyed by the verifier's *fixed* shard count, never by the requested
/// parallelism, so changing the worker count between sweeps (1 → 4 → 2)
/// must reuse every cached key — zero re-derivations — and keep
/// classifications exact.
#[test]
fn changing_parallelism_between_sweeps_never_orphans_cached_keys() {
    const DEVICES: usize = 24;
    let (mut fleet, mut verifier) = FleetBuilder::new(root_key())
        .devices(DEVICES)
        .threads(1)
        .workloads(&[WorkloadId::LightSensor])
        .build()
        .unwrap();

    assert_eq!(verifier.parallelism(), 1);
    let report = verifier.sweep(&mut fleet);
    assert_eq!(report.count(HealthClass::Attested), DEVICES);
    assert_eq!(verifier.cached_keys(), DEVICES);
    assert_eq!(
        verifier.key_derivations(),
        DEVICES as u64,
        "first sweep derives each key exactly once"
    );

    // Tamper one device so later sweeps must prove they still verify
    // against real per-device keys, not stale aggregate state.
    {
        let device = &mut fleet.devices_mut()[7];
        let memory = &mut device.device_mut().cpu_mut().memory;
        let original = memory.read_byte(0xE010);
        memory.write_byte(0xE010, original ^ 0x01);
    }

    for workers in [4usize, 2] {
        verifier.set_parallelism(workers);
        assert_eq!(verifier.parallelism(), workers);
        let report = verifier.sweep(&mut fleet);
        assert_eq!(report.count(HealthClass::Attested), DEVICES - 1);
        assert_eq!(report.devices_in(HealthClass::Tampered), vec![7]);
        assert_eq!(
            verifier.cached_keys(),
            DEVICES,
            "cache size is stable across parallelism changes"
        );
        assert_eq!(
            verifier.key_derivations(),
            DEVICES as u64,
            "re-sweeping at {workers} workers must not re-derive any key"
        );
    }
}

/// The key cache must be populated lazily and shard-stably: sweeping a
/// subset caches only that subset's keys, and re-sweeping reuses them
/// (correctness witnessed by classifications staying exact).
#[test]
fn subset_sweeps_cache_lazily_and_stay_correct() {
    let (mut fleet, mut verifier) = FleetBuilder::new(root_key())
        .devices(6)
        .threads(3)
        .workloads(&[WorkloadId::LightSensor])
        .build()
        .unwrap();

    let subset = [0u64, 2, 4];
    let report = verifier.sweep_devices(&mut fleet, &subset);
    assert_eq!(report.devices.len(), 3);
    assert_eq!(report.count(HealthClass::Attested), 3);
    assert_eq!(verifier.cached_keys(), 3);

    // Unknown ids are surfaced as missing, not silently dropped, and do
    // not pollute the cache.
    let report = verifier.sweep_devices(&mut fleet, &[1, 99]);
    assert_eq!(report.count(HealthClass::Attested), 1);
    assert_eq!(report.missing, vec![99]);
    assert_eq!(verifier.cached_keys(), 4);

    // Full sweep: the four cached keys are reused, two more derived.
    let report = verifier.sweep(&mut fleet);
    assert_eq!(report.count(HealthClass::Attested), 6);
    assert_eq!(verifier.cached_keys(), 6);
}
