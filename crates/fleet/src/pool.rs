//! Persistent worker pool with shard-affine dispatch.
//!
//! PR 2 made attestation sweeps cheap enough (~270 k devices/s) that the
//! dominant multi-thread cost at fleet scale became *thread spawning*:
//! every `Verifier::sweep` paid a `thread::scope` spawn/join cycle per
//! shard. This pool replaces that with long-lived workers:
//!
//! * **Persistent threads** — workers are spawned once and reused across
//!   sweeps (and by the `eilid_net` gateway across requests), so the
//!   per-sweep cost is a channel send per shard batch, not a spawn.
//! * **Shard-affine dispatch** — work is submitted *to a shard*, and a
//!   shard always maps to the same worker queue for a given worker
//!   count. Jobs for one shard execute in submission order, which is
//!   what lets callers hand exclusive `&mut` shard state to one job at
//!   a time without locks.
//! * **Stable shard count, resizable workers** — the shard count is
//!   fixed at construction and survives [`WorkerPool::set_workers`];
//!   only the shard→worker routing changes. Callers key long-lived
//!   caches (the verifier's device-key shards) by shard index, so
//!   changing the worker count can never orphan cached state.
//! * **Bounded queues / backpressure** — each worker owns a bounded
//!   queue. [`WorkerPool::try_submit`] fails fast with [`PoolBusy`]
//!   when the target queue is full (the gateway turns that into a
//!   `Busy` protocol error), while [`WorkerPool::submit`] and the
//!   scoped API block, which is the natural backpressure for batch
//!   callers.
//!
//! The scoped API ([`WorkerPool::scope`]) is what lets the *persistent*
//! threads run jobs that borrow from the caller's stack (the sweep's
//! `&mut SimDevice` batches): job closures are lifetime-erased before
//! being queued, and a receive-side guard guarantees — even on unwind —
//! that `scope` does not return while any erased job is still live.
//! That invariant is exactly the one `std::thread::scope` enforces by
//! joining, and it is what makes the single `unsafe` block below sound.

// The lifetime-erasure transmute in `scope` is the one place the fleet
// crate needs unsafe code; it is documented and encapsulated here.
#![allow(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use std::{fmt, mem, thread};

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Error returned by [`WorkerPool::try_submit`] when the target worker's
/// queue is full — the caller should shed load or retry later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolBusy {
    /// The shard whose worker queue was full.
    pub shard: usize,
}

impl fmt::Display for PoolBusy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker queue for shard {} is full", self.shard)
    }
}

impl std::error::Error for PoolBusy {}

struct Worker {
    sender: SyncSender<Job>,
    handle: Option<JoinHandle<()>>,
    /// Work currently queued or running on this worker, in *weight*
    /// units (reports for the gateway's batched jobs, 1 for plain
    /// jobs). This is what makes backpressure honest for batch
    /// submitters: a batch of 64 reports consumes 64 units of the
    /// budget, not one queue slot.
    in_flight: Arc<AtomicUsize>,
}

/// Decrements a worker's in-flight weight when the job finishes — via
/// `Drop`, so a panicking job releases its budget too.
struct WeightGuard {
    counter: Arc<AtomicUsize>,
    weight: usize,
}

impl Drop for WeightGuard {
    fn drop(&mut self) {
        self.counter.fetch_sub(self.weight, Ordering::Release);
    }
}

/// Long-lived, shard-affine worker pool. See the module docs.
pub struct WorkerPool {
    workers: Vec<Worker>,
    shard_count: usize,
    queue_depth: usize,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("shard_count", &self.shard_count)
            .field("queue_depth", &self.queue_depth)
            .finish()
    }
}

fn spawn_workers(count: usize, queue_depth: usize) -> Vec<Worker> {
    (0..count)
        .map(|index| {
            let (sender, receiver): (SyncSender<Job>, Receiver<Job>) =
                mpsc::sync_channel(queue_depth);
            let handle = thread::Builder::new()
                .name(format!("eilid-pool-{index}"))
                .spawn(move || {
                    // Drain until every sender is gone. Jobs handle their
                    // own panics (the scoped API forwards payloads to the
                    // caller); a stray panic from a fire-and-forget job
                    // must not take the worker down with it.
                    while let Ok(job) = receiver.recv() {
                        let _ = catch_unwind(AssertUnwindSafe(job));
                    }
                })
                .expect("spawning a pool worker thread");
            Worker {
                sender,
                handle: Some(handle),
                in_flight: Arc::new(AtomicUsize::new(0)),
            }
        })
        .collect()
}

impl WorkerPool {
    /// Creates a pool of `workers` persistent threads serving
    /// `shard_count` shards, each worker with a bounded queue of
    /// `queue_depth` jobs. All three are clamped to at least 1.
    pub fn new(workers: usize, shard_count: usize, queue_depth: usize) -> Self {
        let workers = workers.max(1);
        let queue_depth = queue_depth.max(1);
        WorkerPool {
            workers: spawn_workers(workers, queue_depth),
            shard_count: shard_count.max(1),
            queue_depth,
        }
    }

    /// Number of persistent worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The fixed shard count (stable across [`WorkerPool::set_workers`]).
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The worker index serving `shard` under the current worker count.
    pub fn worker_of(&self, shard: usize) -> usize {
        shard % self.workers.len()
    }

    /// Replaces the worker threads with `workers` fresh ones. Queued
    /// jobs on the old workers are drained before they exit; the shard
    /// count — and therefore any shard-keyed caller state — is
    /// untouched, only the shard→worker routing changes.
    pub fn set_workers(&mut self, workers: usize) {
        let workers = workers.max(1);
        if workers == self.workers.len() {
            return;
        }
        let old = mem::replace(&mut self.workers, spawn_workers(workers, self.queue_depth));
        for mut worker in old {
            drop(worker.sender);
            if let Some(handle) = worker.handle.take() {
                handle.join().expect("pool worker panicked");
            }
        }
    }

    /// Queues `job` on `shard`'s worker, failing fast when the queue is
    /// full.
    ///
    /// # Errors
    ///
    /// Returns [`PoolBusy`] when the worker's bounded queue is at
    /// capacity — the backpressure signal for request-driven callers.
    pub fn try_submit(
        &self,
        shard: usize,
        job: impl FnOnce() + Send + 'static,
    ) -> Result<(), PoolBusy> {
        self.try_submit_weighted(shard, 1, job)
    }

    /// Queues a *batch* job of `weight` work units on `shard`'s worker,
    /// failing fast when the worker's weight budget is exhausted.
    ///
    /// The budget is `queue_depth + 1` units per worker (the `+ 1`
    /// models the job the worker is currently running). A single job
    /// heavier than the whole budget is still accepted when the worker
    /// is otherwise idle, so oversized batches degrade to serialized
    /// execution instead of permanent starvation. The weight is
    /// released when the job finishes — on panic too.
    ///
    /// # Errors
    ///
    /// Returns [`PoolBusy`] when admitting the job would exceed the
    /// worker's weight budget (or, rarely, its queue-slot bound).
    pub fn try_submit_weighted(
        &self,
        shard: usize,
        weight: usize,
        job: impl FnOnce() + Send + 'static,
    ) -> Result<(), PoolBusy> {
        let weight = weight.max(1);
        let worker = &self.workers[self.worker_of(shard)];
        let budget = self.queue_depth + 1;
        // Reserve the weight first, so concurrent submitters cannot
        // jointly overshoot the budget.
        let mut current = worker.in_flight.load(Ordering::Acquire);
        loop {
            if current > 0 && current + weight > budget {
                return Err(PoolBusy { shard });
            }
            match worker.in_flight.compare_exchange_weak(
                current,
                current + weight,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(now) => current = now,
            }
        }
        let guard = WeightGuard {
            counter: Arc::clone(&worker.in_flight),
            weight,
        };
        let wrapped = move || {
            let _guard = guard;
            job();
        };
        worker
            .sender
            .try_send(Box::new(wrapped))
            .map_err(|err| match err {
                // The dropped job's WeightGuard released the reserved
                // weight already.
                TrySendError::Full(_) => PoolBusy { shard },
                // Workers only exit when their sender is dropped, which
                // cannot happen while `&self` is alive.
                TrySendError::Disconnected(_) => unreachable!("pool worker exited while pool live"),
            })
    }

    /// Work (in weight units) currently queued or running on the worker
    /// serving `shard`.
    pub fn shard_load(&self, shard: usize) -> usize {
        self.workers[self.worker_of(shard)]
            .in_flight
            .load(Ordering::Acquire)
    }

    /// Queues `job` on `shard`'s worker, blocking while the queue is
    /// full (backpressure for batch callers).
    pub fn submit(&self, shard: usize, job: impl FnOnce() + Send + 'static) {
        self.submit_boxed(shard, Box::new(job));
    }

    fn submit_boxed(&self, shard: usize, job: Job) {
        let worker = &self.workers[self.worker_of(shard)];
        worker
            .sender
            .send(job)
            .unwrap_or_else(|_| unreachable!("pool worker exited while pool live"));
    }

    /// Runs a batch of borrowing jobs on the persistent workers and
    /// returns their results in submission order, blocking until every
    /// job has finished.
    ///
    /// Each entry is `(shard, job)`; jobs for one shard run on one
    /// worker in submission order, so a caller that submits **at most
    /// one job per shard** may freely move `&mut` shard state into that
    /// job. A panicking job does not poison the pool: the panic is
    /// re-raised on the calling thread after the whole batch has
    /// drained.
    ///
    /// This is the persistent-pool replacement for `thread::scope`: the
    /// receive-side guard below gives the same "nothing borrowed
    /// outlives the call" guarantee that scope's implicit join does.
    pub fn scope<'env, R: Send + 'env>(
        &self,
        jobs: Vec<(usize, Box<dyn FnOnce() -> R + Send + 'env>)>,
    ) -> Vec<R> {
        let total = jobs.len();
        let (tx, rx) = mpsc::channel::<(usize, thread::Result<R>)>();
        // The guard's Drop blocks until `total` completions arrived —
        // even if this function unwinds — so no erased job can still be
        // running (or queued) once the borrowed environment dies.
        let mut guard = ScopeGuard {
            rx,
            outstanding: total,
        };

        for (index, (shard, job)) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(job));
                // The receiver only disappears if the caller's thread is
                // tearing down in a panic storm; dropping the result is
                // then the right thing.
                let _ = tx.send((index, result));
            });
            // SAFETY: `wrapped` borrows data living for `'env`. The only
            // way it reaches a worker is through this queue, and the
            // `guard` above does not let this stack frame die — by
            // return *or* unwind — until the worker has executed the
            // job and sent its completion. Everything `wrapped` still
            // touches after that send (its own drop glue: a channel
            // sender clone) is `'static`-safe. Hence the erased closure
            // never outlives the borrows it captures, which is the same
            // contract `std::thread::scope` enforces by joining.
            let erased: Job = unsafe {
                mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send + 'static>>(
                    wrapped,
                )
            };
            self.submit_boxed(shard, erased);
        }
        drop(tx);

        let mut results: Vec<Option<R>> = (0..total).map(|_| None).collect();
        let mut panic_payload = None;
        for _ in 0..total {
            let (index, result) = guard.recv();
            match result {
                Ok(value) => results[index] = Some(value),
                Err(payload) => panic_payload = Some(payload),
            }
        }
        debug_assert_eq!(guard.outstanding, 0);
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every completed job reported a result"))
            .collect()
    }
}

/// Receive-side completion guard for [`WorkerPool::scope`]: tracks how
/// many submitted jobs have not yet reported completion and, on drop,
/// blocks until they all have. This is what makes the lifetime erasure
/// sound even when the scope body unwinds.
struct ScopeGuard<R> {
    rx: Receiver<(usize, thread::Result<R>)>,
    outstanding: usize,
}

impl<R> ScopeGuard<R> {
    fn recv(&mut self) -> (usize, thread::Result<R>) {
        let message = self
            .rx
            .recv()
            .expect("pool worker vanished with jobs outstanding");
        self.outstanding -= 1;
        message
    }
}

impl<R> Drop for ScopeGuard<R> {
    fn drop(&mut self) {
        while self.outstanding > 0 {
            // Block until the stragglers finish; bail out only if the
            // workers are provably gone (at which point nothing can be
            // executing borrowed jobs anymore either).
            match self.rx.recv_timeout(Duration::from_secs(60)) {
                Ok(_) => self.outstanding -= 1,
                Err(RecvTimeoutError::Disconnected) => break,
                Err(RecvTimeoutError::Timeout) => continue,
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            // Closing the channel lets the worker drain and exit.
            let (closed, _) = mpsc::sync_channel(1);
            let sender = mem::replace(&mut worker.sender, closed);
            drop(sender);
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Shared handle to a [`WorkerPool`] plus interior mutability for
/// resizing: what long-lived services (the verifier, the gateway) hold.
pub type SharedPool = Arc<Mutex<WorkerPool>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Barrier};

    #[test]
    fn scope_runs_borrowing_jobs_and_preserves_order() {
        let pool = WorkerPool::new(4, 16, 8);
        let mut data: Vec<u64> = (0..16).collect();
        let jobs: Vec<(usize, Box<dyn FnOnce() -> u64 + Send + '_>)> = data
            .iter_mut()
            .enumerate()
            .map(|(shard, value)| {
                let job: Box<dyn FnOnce() -> u64 + Send + '_> = Box::new(move || {
                    *value *= 2;
                    *value
                });
                (shard, job)
            })
            .collect();
        let results = pool.scope(jobs);
        assert_eq!(results, (0..16).map(|v| v * 2).collect::<Vec<u64>>());
        assert_eq!(data[15], 30);
    }

    #[test]
    fn scope_reuses_the_same_threads_across_batches() {
        let pool = WorkerPool::new(2, 4, 8);
        let mut first: Vec<std::thread::ThreadId> = Vec::new();
        for round in 0..3 {
            let ids = pool.scope(
                (0..4)
                    .map(|shard| {
                        let job: Box<dyn FnOnce() -> std::thread::ThreadId + Send> =
                            Box::new(|| std::thread::current().id());
                        (shard, job)
                    })
                    .collect(),
            );
            if round == 0 {
                first = ids;
            } else {
                assert_eq!(ids, first, "workers must persist across batches");
            }
        }
    }

    #[test]
    fn panicking_job_propagates_after_the_batch_drains() {
        let pool = WorkerPool::new(2, 4, 8);
        let completed = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<(usize, Box<dyn FnOnce() + Send>)> = (0..4)
            .map(|shard| {
                let completed = Arc::clone(&completed);
                let job: Box<dyn FnOnce() + Send> = Box::new(move || {
                    if shard == 1 {
                        panic!("job 1 exploded");
                    }
                    completed.fetch_add(1, Ordering::SeqCst);
                });
                (shard, job)
            })
            .collect();
        let result = catch_unwind(AssertUnwindSafe(|| pool.scope(jobs)));
        assert!(result.is_err(), "the panic must reach the caller");
        assert_eq!(completed.load(Ordering::SeqCst), 3);

        // The pool survives and keeps working.
        let sum: usize = pool
            .scope(
                (0..4)
                    .map(|shard| {
                        let job: Box<dyn FnOnce() -> usize + Send> = Box::new(move || shard);
                        (shard, job)
                    })
                    .collect(),
            )
            .into_iter()
            .sum();
        assert_eq!(sum, 6);
    }

    #[test]
    fn try_submit_reports_backpressure_when_the_queue_fills() {
        let pool = WorkerPool::new(1, 1, 1);
        let gate = Arc::new(Barrier::new(2));
        // First job parks the single worker...
        let parked = Arc::clone(&gate);
        pool.submit(0, move || {
            parked.wait();
        });
        // ...one more fits in the depth-1 queue...
        let queued = loop {
            match pool.try_submit(0, || {}) {
                Ok(()) => break true,
                Err(PoolBusy { .. }) => continue,
            }
        };
        assert!(queued);
        // ...after which the queue is full.
        let mut saw_busy = false;
        for _ in 0..100 {
            if pool.try_submit(0, || {}) == Err(PoolBusy { shard: 0 }) {
                saw_busy = true;
                break;
            }
        }
        assert!(saw_busy, "a bounded queue must eventually report Busy");
        gate.wait();
    }

    #[test]
    fn set_workers_keeps_the_shard_count_and_keeps_working() {
        let mut pool = WorkerPool::new(1, 8, 4);
        assert_eq!(pool.shard_count(), 8);
        let run = |pool: &WorkerPool| -> Vec<usize> {
            pool.scope(
                (0..8)
                    .map(|shard| {
                        let job: Box<dyn FnOnce() -> usize + Send> = Box::new(move || shard * 10);
                        (shard, job)
                    })
                    .collect(),
            )
        };
        let expected: Vec<usize> = (0..8).map(|s| s * 10).collect();
        assert_eq!(run(&pool), expected);
        pool.set_workers(4);
        assert_eq!(pool.workers(), 4);
        assert_eq!(pool.shard_count(), 8, "shards are stable across resizes");
        assert_eq!(run(&pool), expected);
        pool.set_workers(2);
        assert_eq!(run(&pool), expected);
    }

    #[test]
    fn fire_and_forget_submit_executes() {
        let pool = WorkerPool::new(2, 4, 8);
        let counter = Arc::new(AtomicUsize::new(0));
        for shard in 0..4 {
            let counter = Arc::clone(&counter);
            pool.submit(shard, move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Dropping the pool joins the workers, draining the queues.
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn weighted_submission_respects_the_weight_budget() {
        // 1 worker, budget = queue_depth + 1 = 9 weight units.
        let pool = WorkerPool::new(1, 4, 8);
        let gate = Arc::new(Barrier::new(2));
        let parked = Arc::clone(&gate);
        // Park the worker under a weight-4 batch.
        pool.try_submit_weighted(0, 4, move || {
            parked.wait();
        })
        .unwrap();
        // A weight-5 batch still fits (4 + 5 = 9 ≤ 9)...
        pool.try_submit_weighted(1, 5, || {}).unwrap();
        assert_eq!(pool.shard_load(0), 9);
        // ...after which even a weight-1 job is refused.
        assert_eq!(
            pool.try_submit_weighted(2, 1, || {}),
            Err(PoolBusy { shard: 2 })
        );
        gate.wait();
        // Draining releases the weight and admission resumes.
        let drained = loop {
            match pool.try_submit_weighted(3, 8, || {}) {
                Ok(()) => break true,
                Err(PoolBusy { .. }) => std::thread::yield_now(),
            }
        };
        assert!(drained);
    }

    #[test]
    fn oversized_batch_is_accepted_on_an_idle_worker() {
        let pool = WorkerPool::new(1, 1, 2);
        let ran = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&ran);
        let gate = Arc::new(Barrier::new(2));
        let parked = Arc::clone(&gate);
        // Weight 100 dwarfs the budget of 3, but the worker is idle:
        // refusing forever would starve the caller.
        pool.try_submit_weighted(0, 100, move || {
            counter.fetch_add(1, Ordering::SeqCst);
            parked.wait();
        })
        .unwrap();
        // While it is pending/running, everything else is refused.
        assert!(pool.try_submit_weighted(0, 1, || {}).is_err());
        gate.wait();
        drop(pool);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn panicking_weighted_job_releases_its_weight() {
        let pool = WorkerPool::new(1, 1, 4);
        pool.try_submit_weighted(0, 5, || panic!("batch job exploded"))
            .unwrap();
        // Once the panicked job drains, the full budget is back.
        let readmitted = loop {
            match pool.try_submit_weighted(0, 5, || {}) {
                Ok(()) => break true,
                Err(PoolBusy { .. }) => std::thread::yield_now(),
            }
        };
        assert!(readmitted);
    }

    #[test]
    fn shard_routing_is_deterministic() {
        let pool = WorkerPool::new(3, 16, 4);
        for shard in 0..16 {
            assert_eq!(pool.worker_of(shard), shard % 3);
        }
    }
}
