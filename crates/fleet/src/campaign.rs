//! Staged OTA campaigns: canary wave → full rollout, with automatic
//! halt-and-rollback.
//!
//! A campaign pushes one authenticated firmware patch to every device of
//! one cohort. Devices are partitioned into waves (a canary fraction
//! first, then the remainder). After each wave the engine probes the
//! updated devices — a post-update attestation against the *expected*
//! post-patch golden measurement plus a bounded smoke run from reset —
//! and halts the campaign, rolling every already-updated device back to
//! the previous firmware, when the wave's failure rate exceeds the
//! configured threshold.

use eilid::RunOutcome;
use eilid_casu::{measure_pmem, AttestationVerifier, Challenge, MemoryLayout, UpdateAuthority};
use eilid_workloads::WorkloadId;

use crate::device::{DeviceId, SimDevice};
use crate::error::FleetError;
use crate::exec::parallel_map_mut;
use crate::fleet::Fleet;
use crate::report::LedgerEvent;
use crate::verifier::Verifier;

/// Configuration of one staged OTA campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The firmware cohort to update.
    pub cohort: WorkloadId,
    /// First PMEM address the patch writes.
    pub target: u16,
    /// The patch bytes.
    pub payload: Vec<u8>,
    /// Fraction of the cohort updated in the canary wave (default 0.1).
    pub canary_fraction: f64,
    /// Post-update failure rate above which the campaign halts and rolls
    /// back (default 0.25).
    pub failure_threshold: f64,
    /// Cycle budget for the post-update smoke run (default 2 million).
    pub smoke_cycles: u64,
}

impl CampaignConfig {
    /// A campaign for `cohort` writing `payload` at `target` with default
    /// staging parameters.
    pub fn new(cohort: WorkloadId, target: u16, payload: Vec<u8>) -> Self {
        CampaignConfig {
            cohort,
            target,
            payload,
            canary_fraction: 0.1,
            failure_threshold: 0.25,
            smoke_cycles: 2_000_000,
        }
    }

    fn validate(&self) -> Result<(), FleetError> {
        if self.payload.is_empty() {
            return Err(FleetError::InvalidCampaign("empty payload".into()));
        }
        if !(0.0..=1.0).contains(&self.canary_fraction) || self.canary_fraction <= 0.0 {
            return Err(FleetError::InvalidCampaign(format!(
                "canary fraction {} outside (0, 1]",
                self.canary_fraction
            )));
        }
        if !(0.0..=1.0).contains(&self.failure_threshold) {
            return Err(FleetError::InvalidCampaign(format!(
                "failure threshold {} outside [0, 1]",
                self.failure_threshold
            )));
        }
        Ok(())
    }
}

/// Outcome of one wave.
#[derive(Debug, Clone)]
pub struct WaveReport {
    /// Wave index (0 = canary).
    pub wave: usize,
    /// Devices the wave attempted to update.
    pub size: usize,
    /// Devices that accepted and applied the update.
    pub updated: usize,
    /// Devices for which the rollout failed: the update was rejected
    /// (`updated < size`) or a post-update health probe (attestation or
    /// smoke run) failed. The ledger's `UpdateRejected`/`ProbeFailed`
    /// events distinguish the two.
    pub failures: usize,
}

impl WaveReport {
    /// The wave's post-update failure rate in `[0, 1]`.
    pub fn failure_rate(&self) -> f64 {
        if self.size == 0 {
            return 0.0;
        }
        self.failures as f64 / self.size as f64
    }
}

/// How a campaign ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignOutcome {
    /// Every wave passed; the new firmware is the cohort's golden image.
    Completed {
        /// Total devices updated.
        updated: usize,
    },
    /// A wave exceeded the failure threshold; every updated device was
    /// rolled back to the previous firmware.
    HaltedAndRolledBack {
        /// Index of the failing wave.
        wave: usize,
        /// The observed failure rate.
        failure_rate: f64,
        /// Devices that were rolled back.
        rolled_back: usize,
    },
}

/// Full record of one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// How the campaign ended.
    pub outcome: CampaignOutcome,
    /// Per-wave statistics, in rollout order.
    pub waves: Vec<WaveReport>,
}

impl CampaignReport {
    /// `true` when the rollout completed on every wave.
    pub fn is_completed(&self) -> bool {
        matches!(self.outcome, CampaignOutcome::Completed { .. })
    }
}

/// The staged-rollout engine.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
}

impl Campaign {
    /// Creates a campaign from a validated config.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidCampaign`] for out-of-range staging
    /// parameters or an empty payload.
    pub fn new(config: CampaignConfig) -> Result<Self, FleetError> {
        config.validate()?;
        Ok(Campaign { config })
    }

    /// Runs the campaign over `fleet`, drawing authenticated update
    /// requests from per-device authorities derived from the verifier's
    /// root key.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::UnknownCohort`] if no fleet device runs the
    /// configured cohort firmware.
    pub fn run(
        &self,
        fleet: &mut Fleet,
        verifier: &mut Verifier,
    ) -> Result<CampaignReport, FleetError> {
        let cohort = self.config.cohort;
        let members = fleet.cohort_members(cohort);
        if members.is_empty() {
            return Err(FleetError::UnknownCohort(cohort));
        }

        let layout = MemoryLayout::default();
        let golden = &fleet.cohort(cohort).expect("cohort exists").golden;

        // Range-check before slicing the golden image: Memory::slice
        // panics past the 64 KiB address space.
        let start = usize::from(self.config.target);
        let end = start + self.config.payload.len();
        if end > 0x1_0000 {
            return Err(FleetError::InvalidCampaign(format!(
                "patch of {} bytes at {:#06x} runs past the 64 KiB address space",
                self.config.payload.len(),
                self.config.target
            )));
        }

        // Rollback payload: the bytes the patch overwrites, taken from
        // the golden pre-update image.
        let rollback_payload = golden.slice(start..end).to_vec();

        // Expected post-patch measurement, computed on a golden copy.
        let mut patched_golden = golden.clone();
        patched_golden
            .load(self.config.target, &self.config.payload)
            .map_err(|e| FleetError::InvalidCampaign(e.to_string()))?;
        let expected_after = measure_pmem(&patched_golden, &layout);

        let waves = fleet.wave_partition(cohort, &[self.config.canary_fraction, 1.0]);
        let threads = fleet.threads();
        let root = verifier.root().clone();
        let smoke_cycles = self.config.smoke_cycles;
        let target = self.config.target;
        let payload = self.config.payload.clone();

        let mut wave_reports: Vec<WaveReport> = Vec::new();
        let mut updated_so_far: Vec<DeviceId> = Vec::new();

        for (wave_index, wave_ids) in waves.iter().enumerate() {
            if wave_ids.is_empty() {
                continue;
            }
            let (events, updated, failures) = {
                let mut devices = fleet.devices_by_ids_mut(wave_ids);
                roll_out_wave(
                    &mut devices,
                    threads,
                    &root,
                    target,
                    &payload,
                    expected_after,
                    smoke_cycles,
                )
            };
            for event in events {
                fleet.ledger_mut().record(event);
            }
            updated_so_far.extend(&updated);

            let report = WaveReport {
                wave: wave_index,
                size: wave_ids.len(),
                updated: updated.len(),
                failures,
            };
            fleet.ledger_mut().record(LedgerEvent::WaveCompleted {
                wave: wave_index,
                updated: report.updated,
                failures: report.failures,
            });
            let failure_rate = report.failure_rate();
            wave_reports.push(report);

            if failure_rate > self.config.failure_threshold {
                fleet.ledger_mut().record(LedgerEvent::CampaignHalted {
                    wave: wave_index,
                    failure_rate,
                });
                let rolled_back = self.roll_back(
                    fleet,
                    &root,
                    &updated_so_far,
                    target,
                    &rollback_payload,
                    threads,
                );
                return Ok(CampaignReport {
                    outcome: CampaignOutcome::HaltedAndRolledBack {
                        wave: wave_index,
                        failure_rate,
                        rolled_back,
                    },
                    waves: wave_reports,
                });
            }
        }

        // Every wave passed: promote the patched image to golden so
        // future attestation sweeps expect the new firmware.
        fleet.cohort_mut(cohort).expect("cohort exists").golden = patched_golden;
        verifier.promote_measurement(cohort, expected_after);
        Ok(CampaignReport {
            outcome: CampaignOutcome::Completed {
                updated: updated_so_far.len(),
            },
            waves: wave_reports,
        })
    }

    /// Rolls `devices` back to the pre-campaign firmware bytes.
    fn roll_back(
        &self,
        fleet: &mut Fleet,
        root: &eilid_casu::DeviceKey,
        ids: &[DeviceId],
        target: u16,
        rollback_payload: &[u8],
        threads: usize,
    ) -> usize {
        let events = {
            let mut devices = fleet.devices_by_ids_mut(ids);
            parallel_map_mut(&mut devices, threads, |device| {
                let key = root.derive(device.id());
                let mut authority = resumed_authority(&key, device);
                let request = authority.authorize(target, rollback_payload);
                let result = device.apply_update(&request);
                device.reboot();
                match result {
                    Ok(()) => Some(LedgerEvent::RolledBack {
                        device: device.id(),
                    }),
                    Err(error) => Some(LedgerEvent::UpdateRejected {
                        device: device.id(),
                        error,
                    }),
                }
            })
        };
        let mut rolled_back = 0;
        for event in events.into_iter().flatten() {
            if matches!(event, LedgerEvent::RolledBack { .. }) {
                rolled_back += 1;
            }
            fleet.ledger_mut().record(event);
        }
        rolled_back
    }
}

/// Builds an update authority for `device` whose nonce resumes above the
/// device engine's last accepted nonce. The real verifier persists this
/// state; re-deriving it from the (trusted, device-reported) engine state
/// keeps the simulation honest without a database.
fn resumed_authority(key: &eilid_casu::DeviceKey, device: &SimDevice) -> UpdateAuthority {
    UpdateAuthority::with_key_resuming(key, device.engine().last_nonce() + 1)
}

/// Applies the patch, reboots and probes one wave of devices. Returns the
/// ledger events plus the updated ids and failure count.
fn roll_out_wave(
    devices: &mut [&mut SimDevice],
    threads: usize,
    root: &eilid_casu::DeviceKey,
    target: u16,
    payload: &[u8],
    expected_after: [u8; 32],
    smoke_cycles: u64,
) -> (Vec<LedgerEvent>, Vec<DeviceId>, usize) {
    let results = parallel_map_mut(devices, threads, |device| {
        let key = root.derive(device.id());
        let mut authority = resumed_authority(&key, device);
        let request = authority.authorize(target, payload);
        let nonce = request.nonce;
        let mut events = Vec::new();

        match device.apply_update(&request) {
            Ok(()) => events.push(LedgerEvent::UpdateApplied {
                device: device.id(),
                nonce,
            }),
            Err(error) => {
                events.push(LedgerEvent::UpdateRejected {
                    device: device.id(),
                    error,
                });
                return (events, None, true);
            }
        }

        // Post-update health probe 1: attest against the expected
        // post-patch measurement.
        let layout = device.device().layout();
        let challenge = Challenge {
            nonce: nonce ^ 0x4F54_4121, // decorrelate from update nonces
            start: *layout.pmem.start(),
            end: *layout.pmem.end(),
        };
        let report = device.attest(challenge);
        let attested = AttestationVerifier::with_key(&key)
            .verify(&challenge, &report, Some(&expected_after))
            .is_ok();

        // Post-update health probe 2: reboot into the new firmware and
        // smoke-run it. Completion and still-running are healthy;
        // violations and faults are not.
        device.reboot();
        let outcome = device.run_slice(smoke_cycles);
        let healthy_run = matches!(
            outcome,
            RunOutcome::Completed { .. } | RunOutcome::Timeout { .. }
        );

        let failed = !(attested && healthy_run);
        if failed {
            events.push(LedgerEvent::ProbeFailed {
                device: device.id(),
            });
        }
        (events, Some(device.id()), failed)
    });

    let mut events = Vec::new();
    let mut updated = Vec::new();
    let mut failures = 0;
    for (device_events, id, failed) in results {
        events.extend(device_events);
        if let Some(id) = id {
            updated.push(id);
        }
        if failed {
            failures += 1;
        }
    }
    (events, updated, failures)
}
