//! Staged OTA campaigns: canary wave → full rollout, with automatic
//! halt-and-rollback and pause/resume between waves.
//!
//! A campaign pushes one authenticated firmware patch to every device of
//! one cohort. Devices are partitioned into waves (a canary fraction
//! first, then the remainder). After each wave the engine probes the
//! updated devices — a post-update attestation against the *expected*
//! post-patch golden measurement plus a bounded smoke run from reset —
//! and halts the campaign, rolling every already-updated device back to
//! the previous firmware, when the wave's failure rate exceeds the
//! configured threshold.
//!
//! # The executor seam
//!
//! Since the operator-plane unification, the campaign engine is split in
//! two layers:
//!
//! * **Decision logic** — wave cursor, failure threshold, quarantine,
//!   rollback ordering, golden promotion — lives in [`CampaignRun`] and
//!   is *transport-agnostic*: [`Campaign::begin_with`] /
//!   [`CampaignRun::step_with`] drive any [`WaveExecutor`].
//! * **Mechanism** — how a wave's updates, probes and rollbacks actually
//!   reach devices — lives behind the [`WaveExecutor`] trait. The
//!   in-process [`LocalExecutor`] calls devices directly (today's
//!   behaviour, verbatim); `eilid_net`'s gateway implements the same
//!   trait by pushing `UpdateRequest`/`ProbeRequest` frames to connected
//!   device clients.
//!
//! Because both backends share the decision layer, a wire-driven
//! campaign's [`CampaignReport`] matches the in-process one wave for
//! wave — a property the `eilid_net` equivalence suite pins.
//!
//! # Resumable campaigns
//!
//! [`Campaign::run`] drives a rollout to completion in one call, but the
//! engine underneath is a stateful driver: [`Campaign::begin`] returns a
//! [`CampaignRun`] whose [`CampaignRun::step`] executes exactly one
//! wave. Between waves the run can be [paused](CampaignRun::pause) into
//! a [`PausedCampaign`] — a self-contained, byte-serialisable record
//! (persisted wave cursor, accumulated wave reports, per-device
//! pre-update snapshots, the patched golden image) — and later resumed
//! with [`Campaign::resume`], producing bit-for-bit the same
//! [`CampaignReport`] an uninterrupted run would have produced. Nonces
//! keep flowing from the verifier's single challenge-nonce domain, so a
//! resumed campaign is also cryptographically indistinguishable from an
//! uninterrupted one. The same bytes survive a *gateway* restart: the
//! networked operator plane pauses into, and resumes from, this exact
//! record.
//!
//! # Quarantine and rollback verification
//!
//! When a wave *passes* the threshold, any individual devices whose
//! probe still failed are not left running the new firmware: each is
//! rolled back to its pre-campaign state and excluded from the
//! campaign's `updated` count, and named in [`CampaignReport::quarantined`].
//! Rollbacks restore the *device's own* pre-update bytes (snapshotted
//! just before each update is applied, as an A/B-slot update routine
//! would) rather than the cohort golden image, and each rollback is
//! verified against the device's pre-campaign PMEM measurement; a
//! device whose memory was corrupted outside the patched range (by a
//! physical attacker — the bus-level pre-commit veto stops software
//! from doing it) is recorded `RollbackIncomplete` instead of
//! `RolledBack`.

use std::collections::BTreeMap;

use eilid::RunOutcome;
use eilid_casu::wire::{self, CodecError, Reader};
use eilid_casu::{
    AttestationVerifier, DeltaUpdateRequest, DeviceKey, MeasurementScheme, MemoryLayout,
    UpdateAuthority,
};
use eilid_msp430::{Memory, ADDRESS_SPACE};
use eilid_workloads::WorkloadId;

use crate::device::{DeviceId, SimDevice};
use crate::error::FleetError;
use crate::exec::parallel_map_mut;
use crate::fleet::Fleet;
use crate::report::LedgerEvent;
use crate::verifier::Verifier;

/// Configuration of one staged OTA campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// The firmware cohort to update.
    pub cohort: WorkloadId,
    /// First PMEM address the patch writes.
    pub target: u16,
    /// The patch bytes.
    pub payload: Vec<u8>,
    /// Fraction of the cohort updated in the canary wave (default 0.1).
    pub canary_fraction: f64,
    /// Post-update failure rate above which the campaign halts and rolls
    /// back (default 0.25).
    pub failure_threshold: f64,
    /// Cycle budget for the post-update smoke run (default 2 million).
    pub smoke_cycles: u64,
    /// Firmware version the patch carries. Devices enforce a monotonic
    /// anti-rollback counter: an update whose version is below the
    /// device's last applied version is rejected with
    /// [`UpdateError::RollbackVersion`](eilid_casu::UpdateError)
    /// regardless of MAC and nonce (default 0).
    pub version: u64,
    /// Ship the patch as a sparse delta against the cohort golden
    /// (default `true`). Devices whose base bytes were tampered with
    /// fail the delta's MAC and automatically fall back to the full
    /// image under the same nonce, so reports are bit-for-bit equal to
    /// a full-image campaign either way.
    pub delta: bool,
}

impl CampaignConfig {
    /// A campaign for `cohort` writing `payload` at `target` with default
    /// staging parameters.
    pub fn new(cohort: WorkloadId, target: u16, payload: Vec<u8>) -> Self {
        CampaignConfig {
            cohort,
            target,
            payload,
            canary_fraction: 0.1,
            failure_threshold: 0.25,
            smoke_cycles: 2_000_000,
            version: 0,
            delta: true,
        }
    }

    pub(crate) fn validate(&self) -> Result<(), FleetError> {
        if self.payload.is_empty() {
            return Err(FleetError::InvalidCampaign("empty payload".into()));
        }
        if self.payload.len() > wire::MAX_UPDATE_PAYLOAD {
            return Err(FleetError::InvalidCampaign(format!(
                "payload of {} bytes exceeds the wire maximum {}",
                self.payload.len(),
                wire::MAX_UPDATE_PAYLOAD
            )));
        }
        if !(0.0..=1.0).contains(&self.canary_fraction) || self.canary_fraction <= 0.0 {
            return Err(FleetError::InvalidCampaign(format!(
                "canary fraction {} outside (0, 1]",
                self.canary_fraction
            )));
        }
        if !(0.0..=1.0).contains(&self.failure_threshold) {
            return Err(FleetError::InvalidCampaign(format!(
                "failure threshold {} outside [0, 1]",
                self.failure_threshold
            )));
        }
        Ok(())
    }
}

/// Outcome of one wave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaveReport {
    /// Wave index (0 = canary).
    pub wave: usize,
    /// Devices the wave attempted to update.
    pub size: usize,
    /// Devices that accepted and applied the update.
    pub updated: usize,
    /// Devices for which the rollout failed: the update was rejected
    /// (`updated < size`) or a post-update health probe (attestation or
    /// smoke run) failed. The ledger's `UpdateRejected`/`ProbeFailed`
    /// events distinguish the two.
    pub failures: usize,
}

impl WaveReport {
    /// The wave's post-update failure rate in `[0, 1]`.
    pub fn failure_rate(&self) -> f64 {
        if self.size == 0 {
            return 0.0;
        }
        self.failures as f64 / self.size as f64
    }
}

/// How a campaign ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignOutcome {
    /// Every wave passed; the new firmware is the cohort's golden image
    /// (unless `updated` is 0 — when every device was individually
    /// rolled back, the previous golden is kept).
    Completed {
        /// Devices updated and still healthy. Devices whose post-update
        /// probe failed were individually rolled back and are excluded.
        updated: usize,
    },
    /// A wave exceeded the failure threshold; every updated device was
    /// rolled back to the previous firmware.
    HaltedAndRolledBack {
        /// Index of the failing wave.
        wave: usize,
        /// The observed failure rate.
        failure_rate: f64,
        /// Devices that were rolled back.
        rolled_back: usize,
    },
}

/// Full record of one campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// How the campaign ended.
    pub outcome: CampaignOutcome,
    /// Per-wave statistics, in rollout order.
    pub waves: Vec<WaveReport>,
    /// Devices rolled back individually because their post-update probe
    /// failed while their wave passed — verified restored to their
    /// pre-campaign state, and flagged by later sweeps whenever the
    /// campaign went on to promote a new golden measurement.
    pub quarantined: Vec<DeviceId>,
    /// Devices whose rollback (halt-path or quarantine) could not be
    /// verified complete: the rollback request was rejected or the
    /// post-rollback measurement still differs from the pre-campaign
    /// state. These still run campaign (or corrupted) firmware and need
    /// operator attention.
    pub rollback_incomplete: Vec<DeviceId>,
}

impl CampaignReport {
    /// `true` when the rollout completed on every wave.
    pub fn is_completed(&self) -> bool {
        matches!(self.outcome, CampaignOutcome::Completed { .. })
    }
}

/// What one [`CampaignRun::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignStatus {
    /// A wave was rolled out and passed; more waves remain.
    InProgress {
        /// Index of the next wave to roll out.
        next_wave: usize,
    },
    /// The campaign finished (completed or halted);
    /// [`CampaignRun::report`] is now available.
    Finished,
}

/// Splits `members` into waves: `fractions` are cumulative cut points in
/// `(0, 1]`, e.g. `[0.1, 1.0]` → a 10% canary wave and the remaining
/// 90%. This is the one wave-partition rule both campaign backends (the
/// in-process executor and the networked gateway) apply, so identical
/// member sets always produce identical waves.
pub fn partition_waves(members: &[DeviceId], fractions: &[f64]) -> Vec<Vec<DeviceId>> {
    let total = members.len();
    // Ceiling semantics: every non-empty cut point gets at least one
    // device, so a 10% canary of a six-device cohort is still one real
    // canary device rather than an empty wave.
    let cuts: Vec<usize> = fractions
        .iter()
        .map(|&cut| ((cut * total as f64).ceil() as usize).min(total))
        .collect();
    let mut waves: Vec<Vec<DeviceId>> = fractions.iter().map(|_| Vec::new()).collect();
    for (index, id) in members.iter().copied().enumerate() {
        let wave = cuts
            .iter()
            .position(|&cut| index < cut)
            .unwrap_or(fractions.len() - 1);
        waves[wave].push(id);
    }
    waves
}

/// What an executor knows about a cohort before a campaign starts.
#[derive(Debug, Clone)]
pub struct CohortInfo {
    /// Devices running the cohort firmware, in id order. The wave
    /// partition is computed over exactly this list.
    pub members: Vec<DeviceId>,
    /// The cohort's current golden memory image (the patch is applied to
    /// a copy of it to derive the expected post-patch measurement).
    pub golden: Memory,
    /// Memory layout the cohort's devices attest over.
    pub layout: MemoryLayout,
    /// Measurement scheme snapshots and probes are computed under.
    pub scheme: MeasurementScheme,
}

/// Everything an executor needs to roll out one wave besides the device
/// ids themselves.
#[derive(Debug, Clone, Copy)]
pub struct WaveSpec<'a> {
    /// The cohort being updated.
    pub cohort: WorkloadId,
    /// First PMEM address the patch writes.
    pub target: u16,
    /// The patch bytes.
    pub payload: &'a [u8],
    /// Expected post-patch golden measurement.
    pub expected_after: [u8; 32],
    /// Cycle budget for the post-update smoke run.
    pub smoke_cycles: u64,
    /// Firmware version the patch carries (anti-rollback counter).
    pub version: u64,
    /// Ship the patch as a sparse delta against the cohort golden.
    pub delta: bool,
}

/// Device state captured immediately before an update is applied — what
/// a real device's A/B-slot update routine would preserve. Rollbacks
/// restore `patch_range` and verify the result against `measurement`;
/// paused campaigns carry these snapshots across the pause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreUpdateSnapshot {
    /// The device's own bytes in the patch range, pre-update.
    pub patch_range: Vec<u8>,
    /// The device's full-PMEM measurement, pre-update.
    pub measurement: [u8; 32],
}

/// What one wave rollout produced.
#[derive(Debug, Default)]
pub struct WaveRollout {
    /// Ledger events, in device order.
    pub events: Vec<LedgerEvent>,
    /// Devices that accepted and applied the update.
    pub updated: Vec<DeviceId>,
    /// Subset of `updated` whose post-update probe failed.
    pub probe_failed: Vec<DeviceId>,
    /// Total failures: rejected updates + failed probes.
    pub failures: usize,
    /// Pre-update snapshot of every updated device, for rollback.
    pub snapshots: BTreeMap<DeviceId, PreUpdateSnapshot>,
    /// Post-update smoke runs actually executed on a device (the cohort
    /// reference plus every fallback probe).
    pub probes_executed: usize,
    /// Devices whose health verdict was inherited from the cohort
    /// reference instead of running their own smoke probe.
    pub probes_memoized: usize,
}

/// What a rollback pass achieved, per device.
#[derive(Debug, Default)]
pub struct RollbackOutcome {
    /// Ledger events, in device order.
    pub events: Vec<LedgerEvent>,
    /// Devices verified restored to their pre-campaign measurement.
    pub rolled_back: Vec<DeviceId>,
    /// Devices whose rollback was rejected or left them measuring
    /// differently from their pre-campaign state.
    pub incomplete: Vec<DeviceId>,
}

/// The mechanism half of the campaign engine: how updates, probes and
/// rollbacks actually reach devices. [`LocalExecutor`] applies them
/// in-process; `eilid_net`'s gateway implements the same trait by
/// pushing protocol frames to connected device clients. The decision
/// layer ([`CampaignRun::step_with`]) is identical above both, which is
/// what makes a wire-driven campaign report wave-for-wave equal to an
/// in-process one.
pub trait WaveExecutor {
    /// Describes `cohort` before the campaign starts: its members (the
    /// wave-partition input), golden image, layout and scheme.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownCohort`] when no reachable device runs the
    /// cohort firmware.
    fn cohort_info(&mut self, cohort: WorkloadId) -> Result<CohortInfo, FleetError>;

    /// Applies the patch to one wave of devices, probes each updated
    /// device (post-update attestation against `spec.expected_after`
    /// plus a bounded smoke run from reset), and snapshots every device
    /// just before its update so a rollback can restore it exactly.
    ///
    /// # Errors
    ///
    /// Backend-level failures only (transport loss, exhausted nonce
    /// blocks); per-device failures are reported inside the rollout.
    fn roll_out(
        &mut self,
        wave: &[DeviceId],
        spec: &WaveSpec<'_>,
    ) -> Result<WaveRollout, FleetError>;

    /// Rolls `ids` back to their own pre-campaign patch-range bytes
    /// (from `snapshots`) and verifies each device's post-rollback PMEM
    /// measurement against its pre-campaign value.
    ///
    /// # Errors
    ///
    /// Backend-level failures only; unverifiable rollbacks are reported
    /// inside the outcome.
    fn roll_back(
        &mut self,
        cohort: WorkloadId,
        ids: &[DeviceId],
        target: u16,
        snapshots: &BTreeMap<DeviceId, PreUpdateSnapshot>,
    ) -> Result<RollbackOutcome, FleetError>;

    /// Promotes `golden`/`measurement` to the cohort's current golden
    /// state (the previous golden becomes "stale but authentic").
    fn promote(&mut self, cohort: WorkloadId, golden: &Memory, measurement: [u8; 32]);

    /// Records campaign lifecycle events in the backend's ledger.
    fn record(&mut self, events: Vec<LedgerEvent>);
}

/// The in-process [`WaveExecutor`]: devices are called directly on the
/// fleet's worker threads, probe-challenge nonces come from the
/// verifier's single strictly-increasing nonce domain, and events land
/// in the fleet ledger.
#[derive(Debug)]
pub struct LocalExecutor<'a> {
    fleet: &'a mut Fleet,
    verifier: &'a mut Verifier,
}

impl<'a> LocalExecutor<'a> {
    /// Wraps the fleet and its verifier for in-process campaign driving.
    pub fn new(fleet: &'a mut Fleet, verifier: &'a mut Verifier) -> Self {
        LocalExecutor { fleet, verifier }
    }
}

impl WaveExecutor for LocalExecutor<'_> {
    fn cohort_info(&mut self, cohort: WorkloadId) -> Result<CohortInfo, FleetError> {
        let members = self.fleet.cohort_members(cohort);
        if members.is_empty() {
            return Err(FleetError::UnknownCohort(cohort));
        }
        let state = self.fleet.cohort(cohort).expect("cohort exists");
        Ok(CohortInfo {
            members,
            golden: state.golden.clone(),
            layout: state.layout.clone(),
            scheme: self.fleet.scheme(),
        })
    }

    fn roll_out(
        &mut self,
        wave: &[DeviceId],
        spec: &WaveSpec<'_>,
    ) -> Result<WaveRollout, FleetError> {
        let threads = self.fleet.threads();
        let root = self.verifier.root().clone();
        let scheme = self.fleet.scheme();
        // Delta updates are encoded against the cohort's *current*
        // golden bytes in the patch range (the base every untampered
        // device still holds — promotion happens only after the last
        // wave).
        let base = self
            .fleet
            .cohort(spec.cohort)
            .map(|state| {
                let start = usize::from(spec.target);
                state
                    .golden
                    .slice(start..start + spec.payload.len())
                    .to_vec()
            })
            .ok_or(FleetError::UnknownCohort(spec.cohort))?;
        // Probe-challenge nonces come from the verifier's single
        // strictly-increasing nonce domain (shared with sweeps), so no
        // attestation challenge to a device key ever repeats.
        let params = WaveParams {
            root: &root,
            target: spec.target,
            payload: spec.payload,
            expected_after: spec.expected_after,
            scheme,
            smoke_cycles: spec.smoke_cycles,
            version: spec.version,
            delta_base: spec.delta.then_some(base.as_slice()),
            probe_nonce_base: self.verifier.reserve_challenge_nonces(wave),
        };
        let mut devices = self.fleet.devices_by_ids_mut(wave);
        Ok(roll_out_wave(&mut devices, threads, &params))
    }

    fn roll_back(
        &mut self,
        _cohort: WorkloadId,
        ids: &[DeviceId],
        target: u16,
        snapshots: &BTreeMap<DeviceId, PreUpdateSnapshot>,
    ) -> Result<RollbackOutcome, FleetError> {
        let root = self.verifier.root().clone();
        let threads = self.fleet.threads();
        Ok(roll_back(
            self.fleet, &root, ids, target, snapshots, threads,
        ))
    }

    fn promote(&mut self, cohort: WorkloadId, golden: &Memory, measurement: [u8; 32]) {
        self.fleet.cohort_mut(cohort).expect("cohort exists").golden = golden.clone();
        self.verifier
            .promote_measurement(cohort, measurement, golden);
    }

    fn record(&mut self, events: Vec<LedgerEvent>) {
        for event in events {
            self.fleet.ledger_mut().record(event);
        }
    }
}

/// The staged-rollout engine.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
}

impl Campaign {
    /// Creates a campaign from a validated config.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidCampaign`] for out-of-range staging
    /// parameters or an empty payload.
    pub fn new(config: CampaignConfig) -> Result<Self, FleetError> {
        config.validate()?;
        Ok(Campaign { config })
    }

    /// Runs the campaign over `fleet` to completion, drawing
    /// authenticated update requests from per-device authorities derived
    /// from the verifier's root key.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::UnknownCohort`] if no fleet device runs the
    /// configured cohort firmware.
    #[deprecated(note = "drive campaigns through the unified operator plane: \
                `eilid_fleet::ops::FleetOps::run_campaign` on a \
                `LocalOps` (in-process) or `eilid_net` `RemoteOps` \
                (wire-driven) backend")]
    pub fn run(
        &self,
        fleet: &mut Fleet,
        verifier: &mut Verifier,
    ) -> Result<CampaignReport, FleetError> {
        let mut run = self.begin(fleet, verifier)?;
        while run.step(fleet, verifier)? != CampaignStatus::Finished {}
        Ok(run.report().expect("finished run has a report"))
    }

    /// Starts the campaign against any [`WaveExecutor`] and returns the
    /// stateful wave driver. Nothing is rolled out yet; call
    /// [`CampaignRun::step_with`] per wave.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::UnknownCohort`] if the executor reaches no
    /// device of the configured cohort, or
    /// [`FleetError::InvalidCampaign`] for a patch that does not fit the
    /// address space.
    pub fn begin_with(&self, exec: &mut dyn WaveExecutor) -> Result<CampaignRun, FleetError> {
        let cohort = self.config.cohort;
        let info = exec.cohort_info(cohort)?;

        // Range-check before any memory slicing (pre-update snapshots
        // slice the patch range too): Memory::slice panics past the
        // 64 KiB address space.
        let end = usize::from(self.config.target) + self.config.payload.len();
        if end > ADDRESS_SPACE {
            return Err(FleetError::InvalidCampaign(format!(
                "patch of {} bytes at {:#06x} runs past the 64 KiB address space",
                self.config.payload.len(),
                self.config.target
            )));
        }

        // Expected post-patch measurement, computed on a golden copy
        // under the backend's measurement scheme (devices running the
        // incremental engine attest Merkle roots, so the probe's
        // expected value must be one too). Golden images are measured
        // over the layout the cohort's devices were actually built with.
        let mut patched_golden = info.golden.clone();
        patched_golden
            .load(self.config.target, &self.config.payload)
            .map_err(|e| FleetError::InvalidCampaign(e.to_string()))?;
        let expected_after = info.scheme.measure_pmem(&patched_golden, &info.layout);

        let waves = partition_waves(&info.members, &[self.config.canary_fraction, 1.0]);
        Ok(CampaignRun {
            config: self.config.clone(),
            waves,
            cursor: 0,
            wave_reports: Vec::new(),
            updated_so_far: Vec::new(),
            quarantined: Vec::new(),
            rollback_incomplete: Vec::new(),
            snapshots: BTreeMap::new(),
            patched_golden,
            expected_after,
            outcome: None,
        })
    }

    /// [`Campaign::begin_with`] specialised to the in-process executor
    /// (the fleet's devices called directly, nonces from the verifier).
    ///
    /// # Errors
    ///
    /// As for [`Campaign::begin_with`].
    pub fn begin(
        &self,
        fleet: &mut Fleet,
        verifier: &mut Verifier,
    ) -> Result<CampaignRun, FleetError> {
        self.begin_with(&mut LocalExecutor::new(fleet, verifier))
    }

    /// Rebuilds the wave driver from a paused campaign. The executor
    /// later passed to [`CampaignRun::step_with`] must reach the same
    /// devices the campaign was started on (or restored equivalents):
    /// per-device nonces and snapshots refer to their state.
    pub fn resume(paused: PausedCampaign) -> CampaignRun {
        CampaignRun {
            config: paused.config,
            waves: paused.waves,
            cursor: paused.cursor,
            wave_reports: paused.wave_reports,
            updated_so_far: paused.updated_so_far,
            quarantined: paused.quarantined,
            rollback_incomplete: paused.rollback_incomplete,
            snapshots: paused.snapshots,
            patched_golden: paused.patched_golden,
            expected_after: paused.expected_after,
            outcome: paused.outcome,
        }
    }
}

/// In-flight state of a staged rollout, stepped one wave at a time.
#[derive(Debug)]
pub struct CampaignRun {
    config: CampaignConfig,
    /// Device ids per wave, fixed at [`Campaign::begin_with`].
    waves: Vec<Vec<DeviceId>>,
    /// Index of the next wave to roll out — the persisted wave cursor.
    cursor: usize,
    wave_reports: Vec<WaveReport>,
    updated_so_far: Vec<DeviceId>,
    quarantined: Vec<DeviceId>,
    rollback_incomplete: Vec<DeviceId>,
    /// Per-device state captured just before each update is applied;
    /// rollbacks restore and verify against it.
    snapshots: BTreeMap<DeviceId, PreUpdateSnapshot>,
    patched_golden: Memory,
    expected_after: [u8; 32],
    outcome: Option<CampaignOutcome>,
}

impl CampaignRun {
    /// Index of the next wave to roll out.
    pub fn wave_cursor(&self) -> usize {
        self.cursor
    }

    /// The cohort this campaign updates.
    pub fn cohort(&self) -> WorkloadId {
        self.config.cohort
    }

    /// `true` once the campaign completed or halted.
    pub fn is_finished(&self) -> bool {
        self.outcome.is_some()
    }

    /// The final report, once [`CampaignRun::is_finished`].
    pub fn report(&self) -> Option<CampaignReport> {
        self.outcome.clone().map(|outcome| CampaignReport {
            outcome,
            waves: self.wave_reports.clone(),
            quarantined: self.quarantined.clone(),
            rollback_incomplete: self.rollback_incomplete.clone(),
        })
    }

    /// Pauses the campaign between waves into a self-contained,
    /// serialisable record.
    pub fn pause(self) -> PausedCampaign {
        PausedCampaign {
            config: self.config,
            waves: self.waves,
            cursor: self.cursor,
            wave_reports: self.wave_reports,
            updated_so_far: self.updated_so_far,
            quarantined: self.quarantined,
            rollback_incomplete: self.rollback_incomplete,
            snapshots: self.snapshots,
            patched_golden: self.patched_golden,
            expected_after: self.expected_after,
            outcome: self.outcome,
        }
    }

    /// Rolls out the next wave (skipping empty ones) through any
    /// [`WaveExecutor`]. When the last wave passes, finalises the
    /// campaign: promotes the patched golden if any device retained it.
    ///
    /// # Errors
    ///
    /// Propagates executor-level failures (transport loss on the
    /// networked backend; infallible in practice in-process).
    pub fn step_with(&mut self, exec: &mut dyn WaveExecutor) -> Result<CampaignStatus, FleetError> {
        if self.outcome.is_some() {
            return Ok(CampaignStatus::Finished);
        }
        // Skip empty waves without consuming a step.
        while self.cursor < self.waves.len() && self.waves[self.cursor].is_empty() {
            self.cursor += 1;
        }
        if self.cursor >= self.waves.len() {
            self.finalize(exec);
            return Ok(CampaignStatus::Finished);
        }

        let wave_index = self.cursor;
        let wave_ids = self.waves[wave_index].clone();
        let spec = WaveSpec {
            cohort: self.config.cohort,
            target: self.config.target,
            payload: &self.config.payload,
            expected_after: self.expected_after,
            smoke_cycles: self.config.smoke_cycles,
            version: self.config.version,
            delta: self.config.delta,
        };
        let rollout = exec.roll_out(&wave_ids, &spec)?;
        exec.record(rollout.events);
        self.updated_so_far.extend(&rollout.updated);
        self.snapshots.extend(rollout.snapshots);

        let report = WaveReport {
            wave: wave_index,
            size: wave_ids.len(),
            updated: rollout.updated.len(),
            failures: rollout.failures,
        };
        exec.record(vec![LedgerEvent::WaveCompleted {
            wave: wave_index,
            updated: report.updated,
            failures: report.failures,
        }]);
        let failure_rate = report.failure_rate();
        self.wave_reports.push(report);

        if failure_rate > self.config.failure_threshold {
            exec.record(vec![LedgerEvent::CampaignHalted {
                wave: wave_index,
                failure_rate,
            }]);
            let result = exec.roll_back(
                self.config.cohort,
                &self.updated_so_far,
                self.config.target,
                &self.snapshots,
            )?;
            exec.record(result.events);
            self.rollback_incomplete.extend(result.incomplete);
            self.outcome = Some(CampaignOutcome::HaltedAndRolledBack {
                wave: wave_index,
                failure_rate,
                rolled_back: result.rolled_back.len(),
            });
            return Ok(CampaignStatus::Finished);
        }

        // The wave passed, but devices whose probe failed must not
        // silently keep the new firmware: roll each back to its
        // pre-campaign state individually. The report's `quarantined`
        // list and the `ProbeFailed`/`RolledBack` ledger entries flag
        // them for operator follow-up; if the campaign goes on to
        // promote a new golden, later sweeps flag them too.
        if !rollout.probe_failed.is_empty() {
            let result = exec.roll_back(
                self.config.cohort,
                &rollout.probe_failed,
                self.config.target,
                &self.snapshots,
            )?;
            exec.record(result.events);
            self.quarantined.extend(result.rolled_back);
            self.rollback_incomplete.extend(result.incomplete);
            self.updated_so_far
                .retain(|id| !rollout.probe_failed.contains(id));
        }

        self.cursor += 1;
        // Skip trailing empty waves so the last real wave finalises.
        while self.cursor < self.waves.len() && self.waves[self.cursor].is_empty() {
            self.cursor += 1;
        }
        if self.cursor >= self.waves.len() {
            self.finalize(exec);
            return Ok(CampaignStatus::Finished);
        }
        Ok(CampaignStatus::InProgress {
            next_wave: self.cursor,
        })
    }

    /// [`CampaignRun::step_with`] specialised to the in-process
    /// executor.
    ///
    /// # Errors
    ///
    /// As for [`CampaignRun::step_with`] (infallible in practice
    /// in-process).
    pub fn step(
        &mut self,
        fleet: &mut Fleet,
        verifier: &mut Verifier,
    ) -> Result<CampaignStatus, FleetError> {
        self.step_with(&mut LocalExecutor::new(fleet, verifier))
    }

    /// Every wave passed. Promote the patched image to golden — but
    /// only if some device actually retained the new firmware; when
    /// every updated device was individually rolled back, the old
    /// golden is still what the fleet runs.
    fn finalize(&mut self, exec: &mut dyn WaveExecutor) {
        if !self.updated_so_far.is_empty() {
            exec.promote(
                self.config.cohort,
                &self.patched_golden,
                self.expected_after,
            );
        }
        self.outcome = Some(CampaignOutcome::Completed {
            updated: self.updated_so_far.len(),
        });
    }
}

/// A campaign paused between waves: plain data, independent of any
/// fleet/verifier borrow, and serialisable with
/// [`PausedCampaign::to_bytes`] so an operator (or the networked
/// gateway) can persist the wave cursor — and everything else a resume
/// needs — across process restarts.
#[derive(Debug, Clone, PartialEq)]
pub struct PausedCampaign {
    config: CampaignConfig,
    waves: Vec<Vec<DeviceId>>,
    cursor: usize,
    wave_reports: Vec<WaveReport>,
    updated_so_far: Vec<DeviceId>,
    quarantined: Vec<DeviceId>,
    rollback_incomplete: Vec<DeviceId>,
    snapshots: BTreeMap<DeviceId, PreUpdateSnapshot>,
    patched_golden: Memory,
    expected_after: [u8; 32],
    outcome: Option<CampaignOutcome>,
}

/// Magic + version prefix of the paused-campaign byte format. `EPC2`
/// extended `EPC1` with the campaign's anti-rollback version counter
/// and delta-shipping flag.
const PAUSE_MAGIC: &[u8; 4] = b"EPC2";

impl PausedCampaign {
    /// Index of the next wave a resumed run will roll out.
    pub fn wave_cursor(&self) -> usize {
        self.cursor
    }

    /// The cohort the paused campaign updates.
    pub fn cohort(&self) -> WorkloadId {
        self.config.cohort
    }

    /// Serialises the paused state to a self-describing byte record
    /// (little-endian, `EPC1`-tagged).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ADDRESS_SPACE + 1024);
        out.extend_from_slice(PAUSE_MAGIC);
        out.push(self.config.cohort.index());
        out.extend_from_slice(&self.config.target.to_le_bytes());
        write_bytes(&mut out, &self.config.payload);
        out.extend_from_slice(&self.config.canary_fraction.to_bits().to_le_bytes());
        out.extend_from_slice(&self.config.failure_threshold.to_bits().to_le_bytes());
        out.extend_from_slice(&self.config.smoke_cycles.to_le_bytes());
        out.extend_from_slice(&self.config.version.to_le_bytes());
        out.push(u8::from(self.config.delta));

        out.extend_from_slice(&(self.waves.len() as u32).to_le_bytes());
        for wave in &self.waves {
            write_ids(&mut out, wave);
        }
        out.extend_from_slice(&(self.cursor as u32).to_le_bytes());

        out.extend_from_slice(&(self.wave_reports.len() as u32).to_le_bytes());
        for report in &self.wave_reports {
            out.extend_from_slice(&(report.wave as u32).to_le_bytes());
            out.extend_from_slice(&(report.size as u32).to_le_bytes());
            out.extend_from_slice(&(report.updated as u32).to_le_bytes());
            out.extend_from_slice(&(report.failures as u32).to_le_bytes());
        }

        write_ids(&mut out, &self.updated_so_far);
        write_ids(&mut out, &self.quarantined);
        write_ids(&mut out, &self.rollback_incomplete);

        out.extend_from_slice(&(self.snapshots.len() as u32).to_le_bytes());
        for (id, snapshot) in &self.snapshots {
            out.extend_from_slice(&id.to_le_bytes());
            write_bytes(&mut out, &snapshot.patch_range);
            out.extend_from_slice(&snapshot.measurement);
        }

        out.extend_from_slice(self.patched_golden.slice(0..ADDRESS_SPACE));
        out.extend_from_slice(&self.expected_after);

        match &self.outcome {
            None => out.push(0),
            Some(CampaignOutcome::Completed { updated }) => {
                out.push(1);
                out.extend_from_slice(&(*updated as u32).to_le_bytes());
            }
            Some(CampaignOutcome::HaltedAndRolledBack {
                wave,
                failure_rate,
                rolled_back,
            }) => {
                out.push(2);
                out.extend_from_slice(&(*wave as u32).to_le_bytes());
                out.extend_from_slice(&failure_rate.to_bits().to_le_bytes());
                out.extend_from_slice(&(*rolled_back as u32).to_le_bytes());
            }
        }
        out
    }

    /// Deserialises a paused campaign written by
    /// [`PausedCampaign::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidCampaign`] on any structural defect
    /// (bad magic, truncation, out-of-range fields) — never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, FleetError> {
        let invalid = |err: CodecError| FleetError::InvalidCampaign(err.to_string());
        let mut reader = Reader::new(bytes);
        let magic: [u8; 4] = reader.array().map_err(invalid)?;
        if &magic != PAUSE_MAGIC {
            return Err(FleetError::InvalidCampaign(format!(
                "bad paused-campaign magic {magic:02x?}"
            )));
        }
        let cohort = cohort_from_u8(reader.u8().map_err(invalid)?)?;
        let target = reader.u16().map_err(invalid)?;
        let payload = read_bytes(&mut reader).map_err(invalid)?;
        let canary_fraction = f64::from_bits(reader.u64().map_err(invalid)?);
        let failure_threshold = f64::from_bits(reader.u64().map_err(invalid)?);
        let smoke_cycles = reader.u64().map_err(invalid)?;
        let version = reader.u64().map_err(invalid)?;
        let delta = match reader.u8().map_err(invalid)? {
            0 => false,
            1 => true,
            tag => {
                return Err(FleetError::InvalidCampaign(format!(
                    "unknown delta flag {tag}"
                )))
            }
        };
        let config = CampaignConfig {
            cohort,
            target,
            payload,
            canary_fraction,
            failure_threshold,
            smoke_cycles,
            version,
            delta,
        };
        config.validate()?;

        // Count fields are validated against what the input could
        // possibly hold — a corrupt count is a hard typed error, never
        // a silent clamp (which would misparse everything after it)
        // and never an unbounded allocation.
        let checked_count = |count: u32, min_item_bytes: usize, remaining: usize, what: &str| {
            let count = count as usize;
            if count.saturating_mul(min_item_bytes) > remaining {
                return Err(FleetError::InvalidCampaign(format!(
                    "{what} count {count} exceeds what {remaining} remaining bytes can hold"
                )));
            }
            Ok(count)
        };

        let wave_count = checked_count(
            reader.u32().map_err(invalid)?,
            4,
            reader.remaining(),
            "wave",
        )?;
        let mut waves = Vec::with_capacity(wave_count);
        for _ in 0..wave_count {
            waves.push(read_ids(&mut reader).map_err(invalid)?);
        }
        let cursor = reader.u32().map_err(invalid)? as usize;
        if cursor > waves.len() {
            return Err(FleetError::InvalidCampaign(format!(
                "wave cursor {cursor} is outside the {} recorded waves",
                waves.len()
            )));
        }

        let report_count = checked_count(
            reader.u32().map_err(invalid)?,
            16,
            reader.remaining(),
            "wave report",
        )?;
        let mut wave_reports = Vec::with_capacity(report_count);
        for _ in 0..report_count {
            wave_reports.push(WaveReport {
                wave: reader.u32().map_err(invalid)? as usize,
                size: reader.u32().map_err(invalid)? as usize,
                updated: reader.u32().map_err(invalid)? as usize,
                failures: reader.u32().map_err(invalid)? as usize,
            });
        }

        let updated_so_far = read_ids(&mut reader).map_err(invalid)?;
        let quarantined = read_ids(&mut reader).map_err(invalid)?;
        let rollback_incomplete = read_ids(&mut reader).map_err(invalid)?;

        let snapshot_count = checked_count(
            reader.u32().map_err(invalid)?,
            8 + 4 + 32,
            reader.remaining(),
            "snapshot",
        )?;
        let mut snapshots = BTreeMap::new();
        for _ in 0..snapshot_count {
            let id = reader.u64().map_err(invalid)?;
            let patch_range = read_bytes(&mut reader).map_err(invalid)?;
            let measurement: [u8; 32] = reader.array().map_err(invalid)?;
            snapshots.insert(
                id,
                PreUpdateSnapshot {
                    patch_range,
                    measurement,
                },
            );
        }

        let golden_bytes = reader.take(ADDRESS_SPACE).map_err(invalid)?;
        let mut patched_golden = Memory::new();
        patched_golden
            .load(0, golden_bytes)
            .expect("a full 64 KiB image always fits");
        let expected_after: [u8; 32] = reader.array().map_err(invalid)?;

        let outcome = match reader.u8().map_err(invalid)? {
            0 => None,
            1 => Some(CampaignOutcome::Completed {
                updated: reader.u32().map_err(invalid)? as usize,
            }),
            2 => Some(CampaignOutcome::HaltedAndRolledBack {
                wave: reader.u32().map_err(invalid)? as usize,
                failure_rate: f64::from_bits(reader.u64().map_err(invalid)?),
                rolled_back: reader.u32().map_err(invalid)? as usize,
            }),
            tag => {
                return Err(FleetError::InvalidCampaign(format!(
                    "unknown outcome tag {tag}"
                )))
            }
        };
        if !reader.is_empty() {
            return Err(FleetError::InvalidCampaign(format!(
                "{} trailing bytes after paused campaign",
                reader.remaining()
            )));
        }

        Ok(PausedCampaign {
            config,
            waves,
            cursor,
            wave_reports,
            updated_so_far,
            quarantined,
            rollback_incomplete,
            snapshots,
            patched_golden,
            expected_after,
            outcome,
        })
    }
}

fn cohort_from_u8(raw: u8) -> Result<WorkloadId, FleetError> {
    WorkloadId::from_index(raw)
        .ok_or_else(|| FleetError::InvalidCampaign(format!("unknown cohort index {raw}")))
}

fn write_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn read_bytes(reader: &mut Reader<'_>) -> Result<Vec<u8>, CodecError> {
    let len = reader.u32()? as usize;
    Ok(reader.take(len)?.to_vec())
}

fn write_ids(out: &mut Vec<u8>, ids: &[DeviceId]) {
    out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
    for id in ids {
        out.extend_from_slice(&id.to_le_bytes());
    }
}

fn read_ids(reader: &mut Reader<'_>) -> Result<Vec<DeviceId>, CodecError> {
    let len = reader.u32()? as usize;
    // A count the remaining bytes cannot hold is rejected before any
    // allocation (8 bytes per id).
    if len.saturating_mul(8) > reader.remaining() {
        return Err(CodecError::Oversized {
            claimed: len,
            max: reader.remaining() / 8,
        });
    }
    let mut ids = Vec::with_capacity(len);
    for _ in 0..len {
        ids.push(reader.u64()?);
    }
    Ok(ids)
}

/// Rolls `ids` back to their own pre-campaign patch-range bytes (from
/// the per-device [`PreUpdateSnapshot`]s) and verifies each device's
/// post-rollback PMEM measurement against its pre-campaign value.
/// Devices whose rollback was rejected or whose measurement still
/// differs (memory corrupted outside the patch range) land in
/// `incomplete` and are recorded [`LedgerEvent::RollbackIncomplete`].
fn roll_back(
    fleet: &mut Fleet,
    root: &DeviceKey,
    ids: &[DeviceId],
    target: u16,
    snapshots: &BTreeMap<DeviceId, PreUpdateSnapshot>,
    threads: usize,
) -> RollbackOutcome {
    let scheme = fleet.scheme();
    let events = {
        let mut devices = fleet.devices_by_ids_mut(ids);
        parallel_map_mut(&mut devices, threads, |device| {
            let snapshot = snapshots
                .get(&device.id())
                .expect("rolled-back devices were updated and snapshotted");
            let key = root.derive(device.id());
            let mut authority = resumed_authority(&key, device);
            let request = authority.authorize(target, &snapshot.patch_range);
            let result = device.apply_update(&request);
            device.reboot();
            match result {
                Ok(()) => {
                    let layout = device.device().layout();
                    let restored = scheme.measure_pmem(&device.device().cpu().memory, layout)
                        == snapshot.measurement;
                    if restored {
                        vec![LedgerEvent::RolledBack {
                            device: device.id(),
                        }]
                    } else {
                        vec![LedgerEvent::RollbackIncomplete {
                            device: device.id(),
                        }]
                    }
                }
                // Should be unreachable (the authority holds the
                // right key, a fresh nonce and the range the update
                // already passed) — but if a rollback is ever
                // rejected the device keeps the campaign firmware,
                // so flag it for operator follow-up rather than
                // letting it vanish behind a generic rejection.
                Err(error) => vec![
                    LedgerEvent::UpdateRejected {
                        device: device.id(),
                        error,
                    },
                    LedgerEvent::RollbackIncomplete {
                        device: device.id(),
                    },
                ],
            }
        })
    };
    let mut result = RollbackOutcome::default();
    for event in events.into_iter().flatten() {
        match &event {
            LedgerEvent::RolledBack { device } => result.rolled_back.push(*device),
            LedgerEvent::RollbackIncomplete { device } => result.incomplete.push(*device),
            _ => {}
        }
        result.events.push(event);
    }
    result
}

/// Builds an update authority for `device` whose nonce resumes above the
/// device engine's last accepted nonce. The real verifier persists this
/// state; re-deriving it from the (trusted, device-reported) engine state
/// keeps the simulation honest without a database — and is exactly what
/// the networked backend does too, with the device *reporting* its last
/// nonce over the wire.
fn resumed_authority(key: &DeviceKey, device: &SimDevice) -> UpdateAuthority {
    // Rollbacks (and other re-issues) are stamped with the device's own
    // current version: the anti-rollback counter accepts equal versions
    // precisely so an operator can restore previous *bytes* without
    // presenting an older counter value.
    UpdateAuthority::with_key_resuming(key, device.engine().last_nonce() + 1)
        .with_version(device.engine().last_version())
}

/// Everything one in-process wave rollout needs besides the devices
/// themselves.
struct WaveParams<'a> {
    /// Fleet root key; per-device keys are derived from it.
    root: &'a DeviceKey,
    /// First PMEM address the patch writes.
    target: u16,
    /// The patch bytes.
    payload: &'a [u8],
    /// Expected post-patch golden measurement.
    expected_after: [u8; 32],
    /// Measurement scheme snapshots and probes are computed under.
    scheme: MeasurementScheme,
    /// Cycle budget for the post-update smoke run.
    smoke_cycles: u64,
    /// Firmware version the patch carries (anti-rollback counter).
    version: u64,
    /// When `Some`, ship sparse deltas encoded against these cohort
    /// golden bytes in the patch range; `None` ships full images.
    delta_base: Option<&'a [u8]>,
    /// Base of the nonce block reserved (from the verifier's challenge
    /// nonce domain) for this wave's probe challenges; device `id` uses
    /// `probe_nonce_base + id`.
    probe_nonce_base: u64,
}

/// Per-device outcome of the update-and-attest pass, before any smoke
/// probe has run.
struct UpdatePass {
    /// `UpdateApplied` or `UpdateRejected`, so far.
    events: Vec<LedgerEvent>,
    /// Pre-update snapshot; `Some` iff the update applied.
    snapshot: Option<PreUpdateSnapshot>,
    id: DeviceId,
    /// The update was accepted and applied.
    applied: bool,
    /// The post-update attestation matched `expected_after`.
    attested: bool,
    /// The device opted out of probe memoization.
    isolated: bool,
}

/// Applies the patch, reboots and probes one wave of devices.
///
/// The expensive post-update smoke run is *memoized per wave*: every
/// updated device attests against the expected post-patch measurement,
/// and devices whose attested state equals `expected_after` are running
/// byte-identical firmware — so the smoke run is executed once, on the
/// wave's first such device (the *reference*), and its deterministic
/// verdict is inherited by the rest. Devices whose measurement differs
/// (tampered, or a rejected-then-divergent state) and devices marked
/// [`SimDevice::probe_isolated`] never inherit: each runs its own full
/// smoke probe. Ledger events, verdicts and report fields are exactly
/// what the per-device path produces.
fn roll_out_wave(
    devices: &mut [&mut SimDevice],
    threads: usize,
    params: &WaveParams<'_>,
) -> WaveRollout {
    let patch_start = usize::from(params.target);
    let patch_end = patch_start + params.payload.len();

    // Pass 1 (parallel): snapshot, update (delta with same-nonce
    // full-image fallback), attest, reboot into the new firmware.
    let pass = parallel_map_mut(devices, threads, |device| {
        let key = params.root.derive(device.id());
        let mut authority = resumed_authority(&key, device).with_version(params.version);
        let request = authority.authorize(params.target, params.payload);
        let nonce = request.nonce;
        let mut events = Vec::new();

        // Snapshot the device's own pre-update state (patch-range bytes
        // plus full-PMEM measurement) so a rollback can restore and
        // verify exactly what this device held, not the cohort golden.
        // The measurement comes from the device's live incremental
        // measurer when it covers PMEM — only dirty granules re-hash —
        // instead of a from-scratch measure_pmem.
        let snapshot = PreUpdateSnapshot {
            measurement: device.measure_pmem_cached(params.scheme),
            patch_range: device
                .device()
                .cpu()
                .memory
                .slice(patch_start..patch_end)
                .to_vec(),
        };

        let result = match params.delta_base {
            Some(base) => {
                let delta = DeltaUpdateRequest::from_full(&request, base);
                match device.apply_delta_update(&delta) {
                    Ok(()) => Ok(()),
                    // A rejected request never advances the device's
                    // nonce or version, so a device whose base bytes
                    // diverged from the cohort golden (delta MAC
                    // failure) retries with the full image under the
                    // *same* nonce — the recorded outcome is bit-for-bit
                    // what the full-image path would have produced.
                    Err(_) => device.apply_update(&request),
                }
            }
            None => device.apply_update(&request),
        };
        match result {
            Ok(()) => events.push(LedgerEvent::UpdateApplied {
                device: device.id(),
                nonce,
            }),
            Err(error) => {
                events.push(LedgerEvent::UpdateRejected {
                    device: device.id(),
                    error,
                });
                return UpdatePass {
                    events,
                    snapshot: None,
                    id: device.id(),
                    applied: false,
                    attested: false,
                    isolated: device.probe_isolated(),
                };
            }
        }

        // Post-update health probe 1: attest against the expected
        // post-patch measurement, under a challenge nonce reserved from
        // the verifier's sweep nonce domain. This is also the
        // memoization gate: only devices whose attested measurement
        // *equals* the expected post-patch golden may inherit the
        // reference verdict.
        let attest_verifier = AttestationVerifier::with_key(&key);
        let challenge = attest_verifier.challenge_pmem(
            device.device().layout(),
            params.probe_nonce_base + device.id(),
        );
        let report = device.attest(challenge);
        let attested = attest_verifier
            .verify(&challenge, &report, Some(&params.expected_after))
            .is_ok();

        // Reboot into the new firmware; whether this device *runs* it
        // is decided by the probe pass.
        device.reboot();
        UpdatePass {
            events,
            snapshot: Some(snapshot),
            id: device.id(),
            applied: true,
            attested,
            isolated: device.probe_isolated(),
        }
    });

    // The reference device: first in wave order that applied the update
    // and attests byte-identical post-patch firmware, excluding
    // probe-isolated devices. Its smoke verdict is deterministic for
    // every device in the same attested state.
    let reference = pass
        .iter()
        .position(|p| p.applied && p.attested && !p.isolated);

    // Pass 2 (parallel): run the smoke probe on the devices that
    // actually need one — the reference, every measurement-mismatched
    // device and every probe-isolated device. Everyone else inherits.
    let needs_smoke: Vec<usize> = pass
        .iter()
        .enumerate()
        .filter(|(index, p)| {
            Some(*index) == reference || (p.applied && (!p.attested || p.isolated))
        })
        .map(|(index, _)| index)
        .collect();
    let mut smoke_devices: Vec<&mut SimDevice> = Vec::with_capacity(needs_smoke.len());
    {
        let mut wanted = needs_smoke.iter().copied().peekable();
        for (index, device) in devices.iter_mut().enumerate() {
            if wanted.peek() == Some(&index) {
                wanted.next();
                smoke_devices.push(&mut **device);
            }
        }
    }
    let smoke_results = parallel_map_mut(&mut smoke_devices, threads, |device| {
        let outcome = device.run_slice(params.smoke_cycles);
        matches!(
            outcome,
            RunOutcome::Completed { .. } | RunOutcome::Timeout { .. }
        )
    });
    let healthy_by_index: BTreeMap<usize, bool> =
        needs_smoke.into_iter().zip(smoke_results).collect();
    let reference_healthy = reference.map(|index| healthy_by_index[&index]);

    let mut rollout = WaveRollout::default();
    for (index, device_pass) in pass.into_iter().enumerate() {
        let UpdatePass {
            mut events,
            snapshot,
            id,
            applied,
            attested,
            ..
        } = device_pass;
        if !applied {
            rollout.failures += 1;
            rollout.events.append(&mut events);
            continue;
        }
        let failed = match healthy_by_index.get(&index) {
            Some(&healthy) => {
                rollout.probes_executed += 1;
                !(attested && healthy)
            }
            None => {
                rollout.probes_memoized += 1;
                !reference_healthy.expect("memoized devices imply a reference device")
            }
        };
        if failed {
            events.push(LedgerEvent::ProbeFailed { device: id });
            rollout.failures += 1;
            rollout.probe_failed.push(id);
        }
        rollout.updated.push(id);
        rollout
            .snapshots
            .insert(id, snapshot.expect("applied devices are snapshotted"));
        rollout.events.append(&mut events);
    }
    rollout
}
