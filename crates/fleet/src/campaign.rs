//! Staged OTA campaigns: canary wave → full rollout, with automatic
//! halt-and-rollback.
//!
//! A campaign pushes one authenticated firmware patch to every device of
//! one cohort. Devices are partitioned into waves (a canary fraction
//! first, then the remainder). After each wave the engine probes the
//! updated devices — a post-update attestation against the *expected*
//! post-patch golden measurement plus a bounded smoke run from reset —
//! and halts the campaign, rolling every already-updated device back to
//! the previous firmware, when the wave's failure rate exceeds the
//! configured threshold.
//!
//! When a wave *passes* the threshold, any individual devices whose
//! probe still failed are not left running the new firmware: each is
//! rolled back to its pre-campaign state and excluded from the
//! campaign's `updated` count, and named in [`CampaignReport::quarantined`].
//! Once the campaign promotes the new golden, such devices also stay
//! flagged by subsequent attestation sweeps (`Stale` when their restored
//! image matches the previous golden, `Tampered` when it does not); in
//! the zero-retained case (no promotion) the restored image still *is*
//! the golden, so the report and the `ProbeFailed`/`RolledBack` ledger
//! entries are the operator's signal, not the sweep.
//!
//! Rollbacks restore the *device's own* pre-update bytes (snapshotted
//! just before each update is applied, as an A/B-slot update routine
//! would) rather than the cohort golden image, and each rollback is
//! verified against the device's pre-campaign PMEM measurement; a
//! device whose memory was corrupted outside the patched range is
//! recorded `RollbackIncomplete` instead of `RolledBack`.

use std::collections::BTreeMap;

use eilid::RunOutcome;
use eilid_casu::{AttestationVerifier, DeviceKey, MeasurementScheme, UpdateAuthority};
use eilid_workloads::WorkloadId;

use crate::device::{DeviceId, SimDevice};
use crate::error::FleetError;
use crate::exec::parallel_map_mut;
use crate::fleet::Fleet;
use crate::report::LedgerEvent;
use crate::verifier::Verifier;

/// Configuration of one staged OTA campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The firmware cohort to update.
    pub cohort: WorkloadId,
    /// First PMEM address the patch writes.
    pub target: u16,
    /// The patch bytes.
    pub payload: Vec<u8>,
    /// Fraction of the cohort updated in the canary wave (default 0.1).
    pub canary_fraction: f64,
    /// Post-update failure rate above which the campaign halts and rolls
    /// back (default 0.25).
    pub failure_threshold: f64,
    /// Cycle budget for the post-update smoke run (default 2 million).
    pub smoke_cycles: u64,
}

impl CampaignConfig {
    /// A campaign for `cohort` writing `payload` at `target` with default
    /// staging parameters.
    pub fn new(cohort: WorkloadId, target: u16, payload: Vec<u8>) -> Self {
        CampaignConfig {
            cohort,
            target,
            payload,
            canary_fraction: 0.1,
            failure_threshold: 0.25,
            smoke_cycles: 2_000_000,
        }
    }

    fn validate(&self) -> Result<(), FleetError> {
        if self.payload.is_empty() {
            return Err(FleetError::InvalidCampaign("empty payload".into()));
        }
        if !(0.0..=1.0).contains(&self.canary_fraction) || self.canary_fraction <= 0.0 {
            return Err(FleetError::InvalidCampaign(format!(
                "canary fraction {} outside (0, 1]",
                self.canary_fraction
            )));
        }
        if !(0.0..=1.0).contains(&self.failure_threshold) {
            return Err(FleetError::InvalidCampaign(format!(
                "failure threshold {} outside [0, 1]",
                self.failure_threshold
            )));
        }
        Ok(())
    }
}

/// Outcome of one wave.
#[derive(Debug, Clone)]
pub struct WaveReport {
    /// Wave index (0 = canary).
    pub wave: usize,
    /// Devices the wave attempted to update.
    pub size: usize,
    /// Devices that accepted and applied the update.
    pub updated: usize,
    /// Devices for which the rollout failed: the update was rejected
    /// (`updated < size`) or a post-update health probe (attestation or
    /// smoke run) failed. The ledger's `UpdateRejected`/`ProbeFailed`
    /// events distinguish the two.
    pub failures: usize,
}

impl WaveReport {
    /// The wave's post-update failure rate in `[0, 1]`.
    pub fn failure_rate(&self) -> f64 {
        if self.size == 0 {
            return 0.0;
        }
        self.failures as f64 / self.size as f64
    }
}

/// How a campaign ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignOutcome {
    /// Every wave passed; the new firmware is the cohort's golden image
    /// (unless `updated` is 0 — when every device was individually
    /// rolled back, the previous golden is kept).
    Completed {
        /// Devices updated and still healthy. Devices whose post-update
        /// probe failed were individually rolled back and are excluded.
        updated: usize,
    },
    /// A wave exceeded the failure threshold; every updated device was
    /// rolled back to the previous firmware.
    HaltedAndRolledBack {
        /// Index of the failing wave.
        wave: usize,
        /// The observed failure rate.
        failure_rate: f64,
        /// Devices that were rolled back.
        rolled_back: usize,
    },
}

/// Full record of one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// How the campaign ended.
    pub outcome: CampaignOutcome,
    /// Per-wave statistics, in rollout order.
    pub waves: Vec<WaveReport>,
    /// Devices rolled back individually because their post-update probe
    /// failed while their wave passed — verified restored to their
    /// pre-campaign state, and flagged by later sweeps whenever the
    /// campaign went on to promote a new golden measurement.
    pub quarantined: Vec<DeviceId>,
    /// Devices whose rollback (halt-path or quarantine) could not be
    /// verified complete: the rollback request was rejected or the
    /// post-rollback measurement still differs from the pre-campaign
    /// state. These still run campaign (or corrupted) firmware and need
    /// operator attention.
    pub rollback_incomplete: Vec<DeviceId>,
}

impl CampaignReport {
    /// `true` when the rollout completed on every wave.
    pub fn is_completed(&self) -> bool {
        matches!(self.outcome, CampaignOutcome::Completed { .. })
    }
}

/// The staged-rollout engine.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
}

impl Campaign {
    /// Creates a campaign from a validated config.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidCampaign`] for out-of-range staging
    /// parameters or an empty payload.
    pub fn new(config: CampaignConfig) -> Result<Self, FleetError> {
        config.validate()?;
        Ok(Campaign { config })
    }

    /// Runs the campaign over `fleet`, drawing authenticated update
    /// requests from per-device authorities derived from the verifier's
    /// root key.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::UnknownCohort`] if no fleet device runs the
    /// configured cohort firmware.
    pub fn run(
        &self,
        fleet: &mut Fleet,
        verifier: &mut Verifier,
    ) -> Result<CampaignReport, FleetError> {
        let cohort = self.config.cohort;
        let members = fleet.cohort_members(cohort);
        if members.is_empty() {
            return Err(FleetError::UnknownCohort(cohort));
        }

        // Measure golden images over the layout the cohort's devices were
        // actually built with, so the expected measurement matches what
        // the devices attest even for non-default layouts.
        let layout = fleet.cohort(cohort).expect("cohort exists").layout.clone();
        let golden = &fleet.cohort(cohort).expect("cohort exists").golden;

        // Range-check before any memory slicing (pre-update snapshots
        // slice the patch range too): Memory::slice panics past the
        // 64 KiB address space.
        let end = usize::from(self.config.target) + self.config.payload.len();
        if end > 0x1_0000 {
            return Err(FleetError::InvalidCampaign(format!(
                "patch of {} bytes at {:#06x} runs past the 64 KiB address space",
                self.config.payload.len(),
                self.config.target
            )));
        }

        // Expected post-patch measurement, computed on a golden copy
        // under the fleet's measurement scheme (devices running the
        // incremental engine attest Merkle roots, so the probe's
        // expected value must be one too).
        let scheme = fleet.scheme();
        let mut patched_golden = golden.clone();
        patched_golden
            .load(self.config.target, &self.config.payload)
            .map_err(|e| FleetError::InvalidCampaign(e.to_string()))?;
        let expected_after = scheme.measure_pmem(&patched_golden, &layout);

        let waves = fleet.wave_partition(cohort, &[self.config.canary_fraction, 1.0]);
        let threads = fleet.threads();
        let root = verifier.root().clone();
        let smoke_cycles = self.config.smoke_cycles;
        let target = self.config.target;
        let payload = self.config.payload.clone();

        let mut wave_reports: Vec<WaveReport> = Vec::new();
        let mut updated_so_far: Vec<DeviceId> = Vec::new();
        let mut quarantined: Vec<DeviceId> = Vec::new();
        let mut rollback_incomplete: Vec<DeviceId> = Vec::new();
        // Per-device state captured just before each update is applied;
        // rollbacks restore and verify against it.
        let mut snapshots: BTreeMap<DeviceId, PreUpdateSnapshot> = BTreeMap::new();

        for (wave_index, wave_ids) in waves.iter().enumerate() {
            if wave_ids.is_empty() {
                continue;
            }
            // Probe-challenge nonces come from the verifier's single
            // strictly-increasing nonce domain (shared with sweeps), so
            // no attestation challenge to a device key ever repeats.
            let params = WaveParams {
                root: &root,
                target,
                payload: &payload,
                expected_after,
                scheme,
                smoke_cycles,
                probe_nonce_base: verifier.reserve_challenge_nonces(wave_ids),
            };
            let rollout = {
                let mut devices = fleet.devices_by_ids_mut(wave_ids);
                roll_out_wave(&mut devices, threads, &params)
            };
            for event in rollout.events {
                fleet.ledger_mut().record(event);
            }
            updated_so_far.extend(&rollout.updated);
            snapshots.extend(rollout.snapshots);

            let report = WaveReport {
                wave: wave_index,
                size: wave_ids.len(),
                updated: rollout.updated.len(),
                failures: rollout.failures,
            };
            fleet.ledger_mut().record(LedgerEvent::WaveCompleted {
                wave: wave_index,
                updated: report.updated,
                failures: report.failures,
            });
            let failure_rate = report.failure_rate();
            wave_reports.push(report);

            if failure_rate > self.config.failure_threshold {
                fleet.ledger_mut().record(LedgerEvent::CampaignHalted {
                    wave: wave_index,
                    failure_rate,
                });
                let result =
                    self.roll_back(fleet, &root, &updated_so_far, target, &snapshots, threads);
                rollback_incomplete.extend(result.incomplete);
                return Ok(CampaignReport {
                    outcome: CampaignOutcome::HaltedAndRolledBack {
                        wave: wave_index,
                        failure_rate,
                        rolled_back: result.rolled_back.len(),
                    },
                    waves: wave_reports,
                    quarantined,
                    rollback_incomplete,
                });
            }

            // The wave passed, but devices whose probe failed must not
            // silently keep the new firmware: roll each back to its
            // pre-campaign state individually. The report's `quarantined`
            // list and the `ProbeFailed`/`RolledBack` ledger entries flag
            // them for operator follow-up; if the campaign goes on to
            // promote a new golden, later sweeps flag them too.
            if !rollout.probe_failed.is_empty() {
                let result = self.roll_back(
                    fleet,
                    &root,
                    &rollout.probe_failed,
                    target,
                    &snapshots,
                    threads,
                );
                quarantined.extend(result.rolled_back);
                rollback_incomplete.extend(result.incomplete);
                updated_so_far.retain(|id| !rollout.probe_failed.contains(id));
            }
        }

        // Every wave passed. Promote the patched image to golden — but
        // only if some device actually retained the new firmware; when
        // every updated device was individually rolled back, the old
        // golden is still what the fleet runs.
        if !updated_so_far.is_empty() {
            fleet.cohort_mut(cohort).expect("cohort exists").golden = patched_golden;
            verifier.promote_measurement(cohort, expected_after);
        }
        Ok(CampaignReport {
            outcome: CampaignOutcome::Completed {
                updated: updated_so_far.len(),
            },
            waves: wave_reports,
            quarantined,
            rollback_incomplete,
        })
    }

    /// Rolls `devices` back to their own pre-campaign patch-range bytes
    /// (from the per-device [`PreUpdateSnapshot`]s) and verifies each
    /// device's post-rollback PMEM measurement against its pre-campaign
    /// value. Devices whose rollback was rejected or whose measurement
    /// still differs (memory corrupted outside the patch range) land in
    /// `incomplete` and are recorded [`LedgerEvent::RollbackIncomplete`].
    fn roll_back(
        &self,
        fleet: &mut Fleet,
        root: &DeviceKey,
        ids: &[DeviceId],
        target: u16,
        snapshots: &BTreeMap<DeviceId, PreUpdateSnapshot>,
        threads: usize,
    ) -> RollbackResult {
        let scheme = fleet.scheme();
        let events = {
            let mut devices = fleet.devices_by_ids_mut(ids);
            parallel_map_mut(&mut devices, threads, |device| {
                let snapshot = snapshots
                    .get(&device.id())
                    .expect("rolled-back devices were updated and snapshotted");
                let key = root.derive(device.id());
                let mut authority = resumed_authority(&key, device);
                let request = authority.authorize(target, &snapshot.patch_range);
                let result = device.apply_update(&request);
                device.reboot();
                match result {
                    Ok(()) => {
                        let layout = device.device().layout();
                        let restored = scheme.measure_pmem(&device.device().cpu().memory, layout)
                            == snapshot.measurement;
                        if restored {
                            vec![LedgerEvent::RolledBack {
                                device: device.id(),
                            }]
                        } else {
                            vec![LedgerEvent::RollbackIncomplete {
                                device: device.id(),
                            }]
                        }
                    }
                    // Should be unreachable (the authority holds the
                    // right key, a fresh nonce and the range the update
                    // already passed) — but if a rollback is ever
                    // rejected the device keeps the campaign firmware,
                    // so flag it for operator follow-up rather than
                    // letting it vanish behind a generic rejection.
                    Err(error) => vec![
                        LedgerEvent::UpdateRejected {
                            device: device.id(),
                            error,
                        },
                        LedgerEvent::RollbackIncomplete {
                            device: device.id(),
                        },
                    ],
                }
            })
        };
        let mut result = RollbackResult {
            rolled_back: Vec::new(),
            incomplete: Vec::new(),
        };
        for event in events.into_iter().flatten() {
            match &event {
                LedgerEvent::RolledBack { device } => result.rolled_back.push(*device),
                LedgerEvent::RollbackIncomplete { device } => result.incomplete.push(*device),
                _ => {}
            }
            fleet.ledger_mut().record(event);
        }
        result
    }
}

/// What a rollback pass achieved, per device.
struct RollbackResult {
    /// Devices verified restored to their pre-campaign measurement.
    rolled_back: Vec<DeviceId>,
    /// Devices whose rollback was rejected or left them measuring
    /// differently from their pre-campaign state.
    incomplete: Vec<DeviceId>,
}

/// Builds an update authority for `device` whose nonce resumes above the
/// device engine's last accepted nonce. The real verifier persists this
/// state; re-deriving it from the (trusted, device-reported) engine state
/// keeps the simulation honest without a database.
fn resumed_authority(key: &DeviceKey, device: &SimDevice) -> UpdateAuthority {
    UpdateAuthority::with_key_resuming(key, device.engine().last_nonce() + 1)
}

/// Device state captured immediately before an update is applied — what
/// a real device's A/B-slot update routine would preserve. Rollbacks
/// restore `patch_range` and verify the result against `measurement`.
struct PreUpdateSnapshot {
    /// The device's own bytes in the patch range, pre-update.
    patch_range: Vec<u8>,
    /// The device's full-PMEM measurement, pre-update.
    measurement: [u8; 32],
}

/// Everything one wave rollout needs besides the devices themselves.
struct WaveParams<'a> {
    /// Fleet root key; per-device keys are derived from it.
    root: &'a DeviceKey,
    /// First PMEM address the patch writes.
    target: u16,
    /// The patch bytes.
    payload: &'a [u8],
    /// Expected post-patch golden measurement.
    expected_after: [u8; 32],
    /// Measurement scheme snapshots and probes are computed under.
    scheme: MeasurementScheme,
    /// Cycle budget for the post-update smoke run.
    smoke_cycles: u64,
    /// Base of the nonce block reserved (from the verifier's challenge
    /// nonce domain) for this wave's probe challenges; device `id` uses
    /// `probe_nonce_base + id`.
    probe_nonce_base: u64,
}

/// What one wave rollout produced.
struct WaveRollout {
    /// Ledger events, in device order.
    events: Vec<LedgerEvent>,
    /// Devices that accepted and applied the update.
    updated: Vec<DeviceId>,
    /// Subset of `updated` whose post-update probe failed.
    probe_failed: Vec<DeviceId>,
    /// Total failures: rejected updates + failed probes.
    failures: usize,
    /// Pre-update snapshot of every updated device, for rollback.
    snapshots: BTreeMap<DeviceId, PreUpdateSnapshot>,
}

/// Applies the patch, reboots and probes one wave of devices.
fn roll_out_wave(
    devices: &mut [&mut SimDevice],
    threads: usize,
    params: &WaveParams<'_>,
) -> WaveRollout {
    let patch_start = usize::from(params.target);
    let patch_end = patch_start + params.payload.len();
    let results = parallel_map_mut(devices, threads, |device| {
        let key = params.root.derive(device.id());
        let mut authority = resumed_authority(&key, device);
        let request = authority.authorize(params.target, params.payload);
        let nonce = request.nonce;
        let mut events = Vec::new();

        // Snapshot the device's own pre-update state (patch-range bytes
        // plus full-PMEM measurement) so a rollback can restore and
        // verify exactly what this device held, not the cohort golden.
        let memory = &device.device().cpu().memory;
        let snapshot = PreUpdateSnapshot {
            patch_range: memory.slice(patch_start..patch_end).to_vec(),
            measurement: params.scheme.measure_pmem(memory, device.device().layout()),
        };

        match device.apply_update(&request) {
            Ok(()) => events.push(LedgerEvent::UpdateApplied {
                device: device.id(),
                nonce,
            }),
            Err(error) => {
                events.push(LedgerEvent::UpdateRejected {
                    device: device.id(),
                    error,
                });
                return (events, None, true);
            }
        }

        // Post-update health probe 1: attest against the expected
        // post-patch measurement, under a challenge nonce reserved from
        // the verifier's sweep nonce domain.
        let attest_verifier = AttestationVerifier::with_key(&key);
        let challenge = attest_verifier.challenge_pmem(
            device.device().layout(),
            params.probe_nonce_base + device.id(),
        );
        let report = device.attest(challenge);
        let attested = attest_verifier
            .verify(&challenge, &report, Some(&params.expected_after))
            .is_ok();

        // Post-update health probe 2: reboot into the new firmware and
        // smoke-run it. Completion and still-running are healthy;
        // violations and faults are not.
        device.reboot();
        let outcome = device.run_slice(params.smoke_cycles);
        let healthy_run = matches!(
            outcome,
            RunOutcome::Completed { .. } | RunOutcome::Timeout { .. }
        );

        let failed = !(attested && healthy_run);
        if failed {
            events.push(LedgerEvent::ProbeFailed {
                device: device.id(),
            });
        }
        (events, Some((device.id(), snapshot)), failed)
    });

    let mut rollout = WaveRollout {
        events: Vec::new(),
        updated: Vec::new(),
        probe_failed: Vec::new(),
        failures: 0,
        snapshots: BTreeMap::new(),
    };
    for (device_events, applied, failed) in results {
        rollout.events.extend(device_events);
        if let Some((id, snapshot)) = applied {
            rollout.updated.push(id);
            rollout.snapshots.insert(id, snapshot);
            if failed {
                rollout.probe_failed.push(id);
            }
        }
        if failed {
            rollout.failures += 1;
        }
    }
    rollout
}
