//! One simulated fleet member: an EILID-protected device plus the
//! device-resident halves of the update and attestation protocols.

use eilid::{Device, RunOutcome};
use eilid_casu::{
    AttestationReport, Attestor, Challenge, DeviceKey, UpdateEngine, UpdateError, UpdateRequest,
};
use eilid_workloads::WorkloadId;

/// Fleet-wide device identifier (also the key-derivation index).
pub type DeviceId = u64;

/// A fleet member: the simulated device and its device-side protocol
/// state (update engine, attestor), all keyed with the device-unique key.
#[derive(Debug, Clone)]
pub struct SimDevice {
    id: DeviceId,
    cohort: WorkloadId,
    device: Device,
    engine: UpdateEngine,
    attestor: Attestor,
    last_outcome: Option<RunOutcome>,
}

impl SimDevice {
    /// Assembles a fleet member from a cloned prototype device.
    pub(crate) fn new(id: DeviceId, cohort: WorkloadId, device: Device, key: &DeviceKey) -> Self {
        let layout = device.layout().clone();
        SimDevice {
            id,
            cohort,
            device,
            engine: UpdateEngine::with_key(key, layout),
            attestor: Attestor::with_key(key),
            last_outcome: None,
        }
    }

    /// The device's fleet-wide id.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// Which firmware cohort (workload) this device runs.
    pub fn cohort(&self) -> WorkloadId {
        self.cohort
    }

    /// The underlying simulated device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mutable access to the underlying device — used by tests and
    /// attack injectors that model adversaries with memory access.
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// Device-side update state (applied count, last nonce).
    pub fn engine(&self) -> &UpdateEngine {
        &self.engine
    }

    /// Outcome of the most recent run slice, if any.
    pub fn last_outcome(&self) -> Option<&RunOutcome> {
        self.last_outcome.as_ref()
    }

    /// Answers an attestation challenge over the device's memory.
    pub fn attest(&self, challenge: Challenge) -> AttestationReport {
        self.attestor.attest(&self.device.cpu().memory, challenge)
    }

    /// Verifies and applies an authenticated update through the CASU
    /// engine, opening the hardware update window on the device monitor.
    ///
    /// # Errors
    ///
    /// Returns the [`UpdateError`] of the first failed check; device
    /// memory is untouched in that case.
    pub fn apply_update(&mut self, request: &UpdateRequest) -> Result<(), UpdateError> {
        let (cpu, monitor) = self.device.cpu_and_monitor_mut();
        let monitor = monitor.expect("fleet devices are always monitor-protected");
        self.engine.apply(request, &mut cpu.memory, monitor)
    }

    /// Reboots into the current firmware image (post-OTA restart).
    pub fn reboot(&mut self) {
        self.device.reboot();
        self.last_outcome = None;
    }

    /// Runs the device for (up to) `cycles` clock cycles and records the
    /// outcome. A device that already completed reports completion
    /// without consuming cycles.
    pub fn run_slice(&mut self, cycles: u64) -> RunOutcome {
        let outcome = self.device.run_for(cycles);
        self.last_outcome = Some(outcome.clone());
        outcome
    }
}
