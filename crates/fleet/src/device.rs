//! One simulated fleet member: an EILID-protected device plus the
//! device-resident halves of the update and attestation protocols.

use eilid::{Device, RunOutcome};
use eilid_casu::{
    merkle_measure, AttestationReport, Attestor, Challenge, DeltaUpdateRequest, DeviceKey,
    IncrementalMeasurer, MeasurementScheme, MeasurerStats, UpdateEngine, UpdateError,
    UpdateRequest,
};
use eilid_workloads::WorkloadId;

/// Fleet-wide device identifier (also the key-derivation index).
pub type DeviceId = u64;

/// A fleet member: the simulated device and its device-side protocol
/// state (update engine, attestor, optional incremental measurement
/// engine), all keyed with the device-unique key.
#[derive(Debug, Clone)]
pub struct SimDevice {
    id: DeviceId,
    cohort: WorkloadId,
    device: Device,
    engine: UpdateEngine,
    attestor: Attestor,
    /// Incremental Merkle engine over the device's PMEM range; `None`
    /// for fleets on the flat measurement scheme. Kept coherent by the
    /// memory's dirty-granule bits, so *any* write path — authenticated
    /// updates, in-simulation bus writes, test-injected tampering —
    /// invalidates the covered leaves.
    measurer: Option<IncrementalMeasurer>,
    last_outcome: Option<RunOutcome>,
    /// When set, campaign probe memoization is disabled for this
    /// device: its post-update health verdict must come from its own
    /// smoke run, never inherited from a cohort reference device.
    /// Fault-injection harnesses set this on devices whose behaviour
    /// deliberately diverges from the cohort's.
    probe_isolated: bool,
}

impl SimDevice {
    /// Assembles a fleet member from a cloned prototype device, with an
    /// optional prototype-built incremental measurer (cloned, like the
    /// device, so spawning thousands of devices re-hashes nothing).
    pub(crate) fn new(
        id: DeviceId,
        cohort: WorkloadId,
        device: Device,
        key: &DeviceKey,
        measurer: Option<IncrementalMeasurer>,
    ) -> Self {
        let layout = device.layout().clone();
        SimDevice {
            id,
            cohort,
            device,
            engine: UpdateEngine::with_key(key, layout),
            attestor: Attestor::with_key(key),
            measurer,
            last_outcome: None,
            probe_isolated: false,
        }
    }

    /// The device's fleet-wide id.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// Which firmware cohort (workload) this device runs.
    pub fn cohort(&self) -> WorkloadId {
        self.cohort
    }

    /// The underlying simulated device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mutable access to the underlying device — used by tests and
    /// attack injectors that model adversaries with memory access.
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// Device-side update state (applied count, last nonce).
    pub fn engine(&self) -> &UpdateEngine {
        &self.engine
    }

    /// Outcome of the most recent run slice, if any.
    pub fn last_outcome(&self) -> Option<&RunOutcome> {
        self.last_outcome.as_ref()
    }

    /// Statistics of the incremental measurement engine, if the device
    /// runs one.
    pub fn measurer_stats(&self) -> Option<&MeasurerStats> {
        self.measurer.as_ref().map(IncrementalMeasurer::stats)
    }

    /// Whether this device is excluded from campaign probe memoization
    /// (see [`SimDevice::set_probe_isolated`]).
    pub fn probe_isolated(&self) -> bool {
        self.probe_isolated
    }

    /// Marks this device as probe-isolated: campaigns must run its
    /// post-update smoke probe on the device itself instead of
    /// inheriting the cohort reference verdict. Fault-injection
    /// configurations call this for every device they perturb.
    pub fn set_probe_isolated(&mut self, isolated: bool) {
        self.probe_isolated = isolated;
    }

    /// Fault injection: swaps the device's attestation key for one the
    /// verifier never derived, modelling a cloned or re-keyed impostor.
    /// Every subsequent report fails the MAC check and classifies
    /// `Unverified` — the adversarial and equivalence suites use this
    /// for wrong-key populations in sweep mixes.
    pub fn corrupt_attestation_key(&mut self) {
        self.attestor = Attestor::new(b"impostor-key-never-derived-0000!");
    }

    /// The device's current full-PMEM measurement under `scheme`,
    /// served from the live incremental measurer when it covers the
    /// PMEM range (re-hashing only dirty granules) and measured from
    /// scratch otherwise — the fast path campaign snapshots take
    /// instead of a full `measure_pmem`.
    pub fn measure_pmem_cached(&mut self, scheme: MeasurementScheme) -> [u8; 32] {
        let layout = self.device.layout();
        let (pmem_start, pmem_end) = (*layout.pmem.start(), *layout.pmem.end());
        match &mut self.measurer {
            Some(measurer) if measurer.covers(pmem_start, pmem_end) => {
                measurer.root(&mut self.device.cpu_mut().memory)
            }
            _ => {
                let layout = self.device.layout().clone();
                scheme.measure_pmem(&self.device.cpu().memory, &layout)
            }
        }
    }

    /// Answers an attestation challenge over the device's memory.
    ///
    /// With an incremental engine, a challenge covering exactly the
    /// engine's range is served from the maintained tree (re-hashing
    /// only dirty leaves); other ranges are measured from scratch under
    /// the same Merkle scheme so verifier and device always agree on
    /// the digest algorithm. Flat-scheme devices hash the range flat.
    pub fn attest(&mut self, challenge: Challenge) -> AttestationReport {
        match &mut self.measurer {
            Some(measurer) if measurer.covers(challenge.start, challenge.end) => {
                let measurement = measurer.root(&mut self.device.cpu_mut().memory);
                self.attestor.report(challenge, measurement)
            }
            Some(_) => {
                let start = challenge.start.min(challenge.end);
                let end = challenge.start.max(challenge.end);
                let measurement = merkle_measure(&self.device.cpu().memory, start, end);
                self.attestor.report(challenge, measurement)
            }
            None => self.attestor.attest(&self.device.cpu().memory, challenge),
        }
    }

    /// Verifies and applies an authenticated update through the CASU
    /// engine, opening the hardware update window on the device monitor.
    ///
    /// # Errors
    ///
    /// Returns the [`UpdateError`] of the first failed check; device
    /// memory is untouched in that case.
    pub fn apply_update(&mut self, request: &UpdateRequest) -> Result<(), UpdateError> {
        let (cpu, monitor) = self.device.cpu_and_monitor_mut();
        let monitor = monitor.expect("fleet devices are always monitor-protected");
        self.engine.apply(request, &mut cpu.memory, monitor)
    }

    /// Verifies and applies a sparse delta update: the post-image is
    /// assembled from the device's *current* bytes, so a tampered base
    /// fails MAC verification exactly as a forged full image would.
    ///
    /// # Errors
    ///
    /// Returns the [`UpdateError`] of the first failed check; device
    /// memory is untouched in that case.
    pub fn apply_delta_update(&mut self, request: &DeltaUpdateRequest) -> Result<(), UpdateError> {
        let (cpu, monitor) = self.device.cpu_and_monitor_mut();
        let monitor = monitor.expect("fleet devices are always monitor-protected");
        self.engine.apply_delta(request, &mut cpu.memory, monitor)
    }

    /// Reboots into the current firmware image (post-OTA restart).
    pub fn reboot(&mut self) {
        self.device.reboot();
        self.last_outcome = None;
    }

    /// Runs the device for (up to) `cycles` clock cycles and records the
    /// outcome. A device that already completed reports completion
    /// without consuming cycles.
    pub fn run_slice(&mut self, cycles: u64) -> RunOutcome {
        let outcome = self.device.run_for(cycles);
        self.last_outcome = Some(outcome.clone());
        outcome
    }
}
