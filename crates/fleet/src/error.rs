//! Fleet-level errors.

use std::fmt;

use eilid::EilidError;
use eilid_casu::KeyError;
use eilid_workloads::WorkloadId;

/// Why a fleet operation failed.
#[derive(Debug)]
pub enum FleetError {
    /// Building a device prototype failed.
    Build(EilidError),
    /// A key was rejected.
    Key(KeyError),
    /// The builder was asked for zero devices.
    EmptyFleet,
    /// The builder was given an empty workload mix.
    EmptyWorkloadMix,
    /// A campaign referenced a cohort the fleet does not run.
    UnknownCohort(WorkloadId),
    /// A campaign config value is out of range.
    InvalidCampaign(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Build(e) => write!(f, "device build failed: {e}"),
            FleetError::Key(e) => write!(f, "key rejected: {e}"),
            FleetError::EmptyFleet => write!(f, "a fleet needs at least one device"),
            FleetError::EmptyWorkloadMix => write!(f, "the workload mix must not be empty"),
            FleetError::UnknownCohort(id) => {
                write!(f, "no devices in this fleet run the {id} firmware")
            }
            FleetError::InvalidCampaign(msg) => write!(f, "invalid campaign config: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Build(e) => Some(e),
            FleetError::Key(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EilidError> for FleetError {
    fn from(e: EilidError) -> Self {
        FleetError::Build(e)
    }
}

impl From<KeyError> for FleetError {
    fn from(e: KeyError) -> Self {
        FleetError::Key(e)
    }
}
