//! The fleet container: spawning heterogeneous devices and running them
//! concurrently.

use std::collections::BTreeMap;

use eilid::{DeviceBuilder, RunOutcome};
use eilid_casu::{DeviceKey, IncrementalMeasurer, MeasurementScheme, MemoryLayout};
use eilid_msp430::Memory;
use eilid_workloads::WorkloadId;

use crate::device::{DeviceId, SimDevice};
use crate::error::FleetError;
use crate::exec::parallel_map_mut;
use crate::report::{Ledger, LedgerEvent};

/// Per-firmware-cohort state the verifier side keeps: the golden memory
/// image every healthy device of the cohort must measure equal to, and
/// the memory layout its devices were built with (golden measurements
/// must be taken over the same PMEM range the devices attest).
#[derive(Debug, Clone)]
pub(crate) struct Cohort {
    pub(crate) golden: Memory,
    pub(crate) layout: MemoryLayout,
}

/// Builder for [`Fleet`]s.
#[derive(Debug, Clone)]
pub struct FleetBuilder {
    root: DeviceKey,
    devices: usize,
    threads: usize,
    workloads: Vec<WorkloadId>,
    scheme: MeasurementScheme,
}

impl FleetBuilder {
    /// Starts a fleet rooted at `root`; device keys are derived from it.
    pub fn new(root: DeviceKey) -> Self {
        FleetBuilder {
            root,
            devices: 16,
            threads: 4,
            workloads: WorkloadId::ALL.to_vec(),
            scheme: MeasurementScheme::Merkle,
        }
    }

    /// Sets the number of devices to spawn (default 16).
    pub fn devices(mut self, devices: usize) -> Self {
        self.devices = devices;
        self
    }

    /// Sets the worker-thread count for fleet-wide operations
    /// (default 4).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Restricts the firmware mix (devices are assigned round-robin;
    /// default: all seven paper workloads).
    pub fn workloads(mut self, workloads: &[WorkloadId]) -> Self {
        self.workloads = workloads.to_vec();
        self
    }

    /// Sets the measurement scheme devices and verifier agree on
    /// (default: [`MeasurementScheme::Merkle`], the incremental engine;
    /// [`MeasurementScheme::FlatSha256`] re-hashes the full PMEM range
    /// per challenge and exists for protocol compatibility and as the
    /// bench baseline).
    pub fn measurement(mut self, scheme: MeasurementScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Builds the fleet and its verifier.
    ///
    /// Each distinct firmware is instrumented once
    /// ([`DeviceBuilder::build_eilid`]) and the resulting prototype is
    /// cloned per device, so construction cost is O(workloads) + O(devices)
    /// clones rather than O(devices) instrumentation runs.
    ///
    /// # Errors
    ///
    /// Returns a [`FleetError`] if the fleet would be empty or a
    /// firmware fails to build.
    pub fn build(self) -> Result<(Fleet, crate::Verifier), FleetError> {
        if self.devices == 0 {
            return Err(FleetError::EmptyFleet);
        }
        if self.workloads.is_empty() {
            return Err(FleetError::EmptyWorkloadMix);
        }

        let builder = DeviceBuilder::new();
        let mut prototypes = Vec::with_capacity(self.workloads.len());
        let mut cohorts = BTreeMap::new();
        for &id in &self.workloads {
            let workload = id.workload();
            let mut prototype = builder.build_eilid(&workload.source)?;
            // Build the cohort's Merkle tree once, on the prototype;
            // every cloned device starts from the same (clean) memory, so
            // the measurer clones along with it instead of re-hashing
            // 6 KiB per device.
            let measurer = match self.scheme {
                MeasurementScheme::Merkle => {
                    let layout = prototype.layout().clone();
                    Some(IncrementalMeasurer::for_pmem(
                        &mut prototype.cpu_mut().memory,
                        &layout,
                    ))
                }
                MeasurementScheme::FlatSha256 => None,
            };
            cohorts.insert(
                id,
                Cohort {
                    golden: prototype.cpu().memory.clone(),
                    layout: prototype.layout().clone(),
                },
            );
            prototypes.push((id, prototype, measurer));
        }

        let mut ledger = Ledger::default();
        let mut devices = Vec::with_capacity(self.devices);
        for index in 0..self.devices {
            let (cohort, prototype, measurer) = &prototypes[index % prototypes.len()];
            let id = index as DeviceId;
            let key = self.root.derive(id);
            devices.push(SimDevice::new(
                id,
                *cohort,
                prototype.clone(),
                &key,
                measurer.clone(),
            ));
            ledger.record(LedgerEvent::Enrolled {
                device: id,
                cohort: *cohort,
            });
        }

        let fleet = Fleet {
            devices,
            cohorts,
            // The executor runs inline below one thread; clamp so reports
            // never claim "0 threads".
            threads: self.threads.max(1),
            scheme: self.scheme,
            ledger,
        };
        let verifier = crate::Verifier::enroll(self.root, &fleet);
        Ok((fleet, verifier))
    }
}

/// Result of running every device for one bounded time slice.
#[derive(Debug, Clone, Default)]
pub struct SliceReport {
    /// Devices whose application has completed.
    pub completed: usize,
    /// Devices still running (slice budget exhausted).
    pub running: usize,
    /// Devices reset by their monitor during this slice.
    pub violations: usize,
    /// Devices that hit an undecodable instruction.
    pub faults: usize,
}

/// N concurrently simulated EILID devices plus the fleet event ledger.
#[derive(Debug, Clone)]
pub struct Fleet {
    devices: Vec<SimDevice>,
    cohorts: BTreeMap<WorkloadId, Cohort>,
    threads: usize,
    scheme: MeasurementScheme,
    ledger: Ledger,
}

impl Fleet {
    /// Number of devices in the fleet.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// `true` for a fleet with no devices (builders reject this).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Worker-thread count used for fleet-wide operations.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The measurement scheme this fleet's devices and verifier agree on.
    pub fn scheme(&self) -> MeasurementScheme {
        self.scheme
    }

    /// The devices, in id order.
    pub fn devices(&self) -> &[SimDevice] {
        &self.devices
    }

    /// Mutable access to the devices (attack injection in tests, manual
    /// repair flows).
    pub fn devices_mut(&mut self) -> &mut [SimDevice] {
        &mut self.devices
    }

    /// A single device by id.
    pub fn device(&self, id: DeviceId) -> Option<&SimDevice> {
        self.devices.get(usize::try_from(id).ok()?)
    }

    /// Firmware cohorts present in the fleet.
    pub fn cohort_ids(&self) -> Vec<WorkloadId> {
        self.cohorts.keys().copied().collect()
    }

    /// Device ids belonging to `cohort`.
    pub fn cohort_members(&self, cohort: WorkloadId) -> Vec<DeviceId> {
        self.devices
            .iter()
            .filter(|d| d.cohort() == cohort)
            .map(|d| d.id())
            .collect()
    }

    /// The golden memory image for `cohort`, if present.
    pub(crate) fn cohort(&self, cohort: WorkloadId) -> Option<&Cohort> {
        self.cohorts.get(&cohort)
    }

    /// Mutable cohort state (campaign promotion).
    pub(crate) fn cohort_mut(&mut self, cohort: WorkloadId) -> Option<&mut Cohort> {
        self.cohorts.get_mut(&cohort)
    }

    /// The fleet event ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Mutable ledger access for orchestration layers.
    pub(crate) fn ledger_mut(&mut self) -> &mut Ledger {
        &mut self.ledger
    }

    /// Runs every device for (up to) `cycles` clock cycles on the worker
    /// pool, recording violation resets and recoveries in the ledger.
    pub fn run_slice(&mut self, cycles: u64) -> SliceReport {
        // One ledger pass up front: devices whose last violation reset
        // has not yet been followed by a completed run.
        let awaiting_recovery = self.ledger.pending_recoveries();
        let outcomes = parallel_map_mut(&mut self.devices, self.threads, |device| {
            (device.id(), device.run_slice(cycles))
        });

        let mut report = SliceReport::default();
        for (id, outcome) in outcomes {
            match outcome {
                RunOutcome::Completed { .. } => {
                    report.completed += 1;
                    if awaiting_recovery.contains(&id) {
                        self.ledger.record(LedgerEvent::Recovered { device: id });
                    }
                }
                RunOutcome::Timeout { .. } => report.running += 1,
                RunOutcome::Violation { violation, .. } => {
                    report.violations += 1;
                    self.ledger.record(LedgerEvent::ViolationReset {
                        device: id,
                        violation,
                    });
                }
                RunOutcome::Fault { .. } => report.faults += 1,
            }
        }
        report
    }

    /// Mutable references to the devices named by `ids`, in id order.
    /// Unknown ids are skipped (callers that care compare lengths).
    pub(crate) fn devices_by_ids_mut(&mut self, ids: &[DeviceId]) -> Vec<&mut SimDevice> {
        let wanted: std::collections::BTreeSet<DeviceId> = ids.iter().copied().collect();
        self.devices
            .iter_mut()
            .filter(|d| wanted.contains(&d.id()))
            .collect()
    }
}
