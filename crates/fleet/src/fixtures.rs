//! Shared firmware-patch fixtures for the CLI, the fleet demo and the
//! integration tests.
//!
//! The bricking and benign patches used to demonstrate campaign
//! halt-and-rollback are defined once here, so a change to the PMEM
//! layout (application base, trampoline base) or to the instruction
//! encoding is fixed in one place instead of drifting across copies.

/// First PMEM address of [`benign_patch`]: the unused gap between the
/// application image and the EILID trampolines.
pub const BENIGN_PATCH_TARGET: u16 = 0xF600;

/// First PMEM address [`bricking_patch`] is installed at: the
/// application entry point.
pub const BRICKING_PATCH_TARGET: u16 = 0xE000;

/// A benign patch: data bytes in the unused PMEM gap between the
/// application image and the EILID trampolines; never executed, so a
/// campaign installing it completes and the cohort keeps running.
pub fn benign_patch() -> Vec<u8> {
    vec![0xE1, 0x1D, 0x20, 0x26, 0x07, 0x28, 0x00, 0x01]
}

/// A bricking patch: its first instruction writes program memory, which
/// the CASU monitor answers with an immediate `PmemWrite` violation
/// reset. The write targets a byte *inside the patch's own range*
/// (0xE006) so that a campaign rollback of the patched range restores
/// the device byte-for-byte, even though the simulator commits the
/// violating write before the reset lands. Assembled with the workspace
/// assembler so the encoding always matches the simulator.
pub fn bricking_patch() -> Vec<u8> {
    let image = eilid_asm::assemble(
        "    .org 0xe000\n    .global main\nmain:\n    mov #0x1234, &0xe006\n    jmp main\n",
    )
    .expect("bricking-patch fixture assembles");
    image.segments[0].bytes.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_stable() {
        assert_eq!(benign_patch().len(), 8);
        let patch = bricking_patch();
        assert_eq!(patch.len(), 8, "mov #imm, &abs (6) + jmp (2)");
        // The violating write stays inside the patch's own range so
        // rollback is byte-exact.
        let written = 0xE006u16;
        let end = BRICKING_PATCH_TARGET + patch.len() as u16 - 1;
        assert!((BRICKING_PATCH_TARGET..=end).contains(&written));
    }
}
