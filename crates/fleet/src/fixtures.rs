//! Shared firmware-patch fixtures for the CLI, the fleet demo and the
//! integration tests.
//!
//! The bricking and benign patches used to demonstrate campaign
//! halt-and-rollback are defined once here, so a change to the PMEM
//! layout (application base, trampoline base) or to the instruction
//! encoding is fixed in one place instead of drifting across copies.

/// First PMEM address of [`benign_patch`]: the unused gap between the
/// application image and the EILID trampolines.
pub const BENIGN_PATCH_TARGET: u16 = 0xF600;

/// First PMEM address [`bricking_patch`] is installed at: the
/// application entry point.
pub const BRICKING_PATCH_TARGET: u16 = 0xE000;

/// PMEM address the bricking patch's violating store targets —
/// deliberately far *outside* the patch's own range. The bus-level
/// pre-commit veto ([`eilid_msp430::WriteGate`]) blocks the store before
/// it commits, so a campaign rollback of just the patched range still
/// restores the device byte-for-byte.
pub const BRICKING_WRITE_TARGET: u16 = 0xF700;

/// A benign patch: data bytes in the unused PMEM gap between the
/// application image and the EILID trampolines; never executed, so a
/// campaign installing it completes and the cohort keeps running.
pub fn benign_patch() -> Vec<u8> {
    vec![0xE1, 0x1D, 0x20, 0x26, 0x07, 0x28, 0x00, 0x01]
}

/// A bricking patch: its first instruction writes program memory, which
/// the CASU monitor answers with an immediate `PmemWrite` violation
/// reset — and the bus-level write gate vetoes the store before it ever
/// commits. The write targets [`BRICKING_WRITE_TARGET`], well outside
/// the patch's own range: no "keep the corruption inside the rollback
/// range" workaround is needed anymore, because the violating write
/// never reaches the memory array. Assembled with the workspace
/// assembler so the encoding always matches the simulator.
pub fn bricking_patch() -> Vec<u8> {
    let image = eilid_asm::assemble(
        "    .org 0xe000\n    .global main\nmain:\n    mov #0x1234, &0xf700\n    jmp main\n",
    )
    .expect("bricking-patch fixture assembles");
    image.segments[0].bytes.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_stable() {
        assert_eq!(benign_patch().len(), 8);
        let patch = bricking_patch();
        assert_eq!(patch.len(), 8, "mov #imm, &abs (6) + jmp (2)");
        // The violating write lands far outside the patch's own range:
        // only the pre-commit veto keeps rollback byte-exact.
        let end = BRICKING_PATCH_TARGET + patch.len() as u16 - 1;
        assert!(!(BRICKING_PATCH_TARGET..=end).contains(&BRICKING_WRITE_TARGET));
    }
}
