//! The fleet verifier: batched attestation sweeps on the persistent
//! worker pool, sharded sweep state with cached device keys, and
//! measurement bookkeeping.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use eilid_casu::agg::{evidence_leaf, shard_agg_key, AggProof, EvidenceTree};
use eilid_casu::{
    AttestError, AttestationVerifier, CryptoProvider, DeviceKey, MeasurementScheme, MemoryLayout,
    SoftwareProvider,
};
use eilid_msp430::Memory;
use eilid_workloads::WorkloadId;

use crate::device::{DeviceId, SimDevice};
use crate::fleet::Fleet;
use crate::ops::{class_index, AggSweepSummary, SweepSummary};
use crate::pool::WorkerPool;
use crate::report::{DeviceHealth, FleetReport, HealthClass, LedgerEvent};

/// One shard's sweep job, ready for [`WorkerPool::scope`].
type ShardJob<'env> = (usize, Box<dyn FnOnce() -> Vec<DeviceHealth> + Send + 'env>);

/// One shard's aggregated-sweep job for [`WorkerPool::scope`].
type AggShardJob<'env> = (usize, Box<dyn FnOnce() -> ShardAggregate + Send + 'env>);

/// What one shard's aggregated-sweep job produces: the signed aggregate
/// proof over the shard's evidence tree, plus only the *suspect*
/// verdicts — clean devices are represented solely by the aggregate.
#[derive(Debug, Clone)]
struct ShardAggregate {
    shard: u16,
    devices: usize,
    counts: [usize; 4],
    proof: AggProof,
    suspects: Vec<DeviceHealth>,
}

/// Number of sweep shards — the unit device-key caches are keyed by.
///
/// Deliberately **independent of the worker-thread count** and fixed for
/// the verifier's lifetime: devices map to shards by `id % SHARD_COUNT`
/// forever, so changing the sweep parallelism between sweeps (see
/// [`Verifier::set_parallelism`]) re-routes shards to workers but can
/// never orphan a cached key. (The PR 2 design keyed shards by
/// `id % threads`, which silently abandoned every cache when the caller
/// asked for a different thread count.)
pub const SHARD_COUNT: usize = 16;

/// Known-good measurements of one firmware cohort: the current version
/// plus every previous version still considered "stale but authentic",
/// the memory layout the cohort's devices attest over, and the golden
/// memory image itself (campaigns patch a copy of it to derive the
/// expected post-update measurement — the networked gateway gets its
/// copy through [`ServiceSnapshot`]).
#[derive(Debug, Clone)]
pub(crate) struct MeasurementHistory {
    pub(crate) current: [u8; 32],
    pub(crate) previous: Vec<[u8; 32]>,
    pub(crate) layout: MemoryLayout,
    pub(crate) golden: Memory,
}

/// Classifies one verified-or-not report measurement against a golden
/// history — the single classification rule the in-process verifier and
/// the networked gateway both apply. Allocation-free: it sits on the
/// per-report verification hot path of both.
fn classify_measurement(
    current: &[u8; 32],
    previous: &[[u8; 32]],
    verified: Result<(), AttestError>,
    measurement: &[u8; 32],
) -> (HealthClass, Option<AttestError>) {
    match verified {
        Err(error) => (HealthClass::Unverified, Some(error)),
        Ok(()) if measurement == current => (HealthClass::Attested, None),
        Ok(()) if previous.contains(measurement) => (HealthClass::Stale, None),
        Ok(()) => (
            HealthClass::Tampered,
            Some(AttestError::UnexpectedMeasurement),
        ),
    }
}

impl MeasurementHistory {
    /// Classifies one verified-or-not report measurement against this
    /// history.
    pub(crate) fn classify(
        &self,
        verified: Result<(), AttestError>,
        measurement: &[u8; 32],
    ) -> (HealthClass, Option<AttestError>) {
        classify_measurement(&self.current, &self.previous, verified, measurement)
    }
}

/// Per-shard sweep state. Devices are assigned to shards by
/// `id % SHARD_COUNT`, which is stable across sweeps *and* across
/// parallelism changes, so a shard's key cache keeps hitting for the
/// same devices forever. During a sweep each pool worker owns the shards
/// routed to it exclusively, so no cross-thread synchronisation is ever
/// needed.
#[derive(Debug, Clone, Default)]
struct SweepShard {
    /// Device keys derived once from the fleet root, then reused.
    keys: HashMap<DeviceId, DeviceKey>,
    /// How many derivations this shard ever performed (each device key
    /// is derived exactly once — the regression witness for the
    /// shard-stability guarantee).
    derivations: u64,
}

impl SweepShard {
    /// The cached (or newly derived and cached) key of `device`.
    fn key(&mut self, root: &DeviceKey, device: DeviceId) -> &DeviceKey {
        let derivations = &mut self.derivations;
        self.keys.entry(device).or_insert_with(|| {
            *derivations += 1;
            root.derive(device)
        })
    }
}

/// Exportable, self-contained snapshot of the verifier's trust state —
/// what the `eilid_net` attestation gateway is provisioned with. The
/// snapshot carries its own reserved block of the verifier's challenge
/// nonce domain, so networked challenges can never collide with
/// in-process sweep challenges.
#[derive(Debug, Clone)]
pub struct ServiceSnapshot {
    /// The fleet root key (device keys are derived from it).
    pub root: DeviceKey,
    /// The measurement scheme reports are verified under.
    pub scheme: MeasurementScheme,
    /// Per-cohort golden state.
    pub cohorts: BTreeMap<WorkloadId, CohortSnapshot>,
    /// First nonce of the block reserved for this snapshot.
    pub nonce_base: u64,
    /// Number of nonces reserved (exclusive upper bound is
    /// `nonce_base + nonce_span`).
    pub nonce_span: u64,
}

/// One cohort's golden state inside a [`ServiceSnapshot`].
#[derive(Debug, Clone)]
pub struct CohortSnapshot {
    /// Layout the cohort's devices attest over.
    pub layout: MemoryLayout,
    /// The current golden measurement.
    pub current: [u8; 32],
    /// Previous still-authentic measurements ("stale").
    pub previous: Vec<[u8; 32]>,
    /// The golden memory image itself — what a gateway-resident campaign
    /// patches (on a copy) to compute the expected post-update
    /// measurement, and promotes on completion.
    pub golden: Memory,
}

impl CohortSnapshot {
    /// Classifies a verified-or-not measurement exactly as the fleet
    /// verifier would (same rule, no allocation — this runs once per
    /// networked report).
    pub fn classify(
        &self,
        verified: Result<(), AttestError>,
        measurement: &[u8; 32],
    ) -> (HealthClass, Option<AttestError>) {
        classify_measurement(&self.current, &self.previous, verified, measurement)
    }
}

/// The trusted fleet verifier.
///
/// Holds the fleet root key (from which every device key is derived,
/// then cached in stable shards), the per-cohort golden measurements,
/// the measurement scheme the fleet was enrolled under, the challenge
/// nonce state, and the persistent [`WorkerPool`] sweeps run on.
#[derive(Debug)]
pub struct Verifier {
    root: DeviceKey,
    expected: BTreeMap<WorkloadId, MeasurementHistory>,
    scheme: MeasurementScheme,
    shards: Vec<SweepShard>,
    pool: WorkerPool,
    next_nonce: u64,
    /// Backend for verifier-side bulk crypto (aggregated sweeps route
    /// MAC recomputation and tree hashing through it; the per-device
    /// sweep keeps the scalar path). All backends are bit-compatible.
    provider: Arc<dyn CryptoProvider>,
}

impl Clone for Verifier {
    /// Cloning duplicates the trust state (keys, goldens, caches) and
    /// spins up a *fresh* worker pool with the same parallelism —
    /// worker threads are not shareable state.
    fn clone(&self) -> Self {
        Verifier {
            root: self.root.clone(),
            expected: self.expected.clone(),
            scheme: self.scheme,
            shards: self.shards.clone(),
            pool: WorkerPool::new(self.pool.workers(), SHARD_COUNT, SHARD_COUNT),
            next_nonce: self.next_nonce,
            provider: Arc::clone(&self.provider),
        }
    }
}

impl Verifier {
    /// Enrolls a fleet: records each cohort's golden measurement (under
    /// the fleet's measurement scheme, over the layout the cohort's
    /// devices were actually built with), sizes the stable shard set,
    /// and spins up the persistent worker pool with one worker per
    /// fleet thread.
    pub(crate) fn enroll(root: DeviceKey, fleet: &Fleet) -> Self {
        let scheme = fleet.scheme();
        let mut expected = BTreeMap::new();
        for cohort in fleet.cohort_ids() {
            let state = fleet.cohort(cohort).expect("cohort exists");
            expected.insert(
                cohort,
                MeasurementHistory {
                    current: scheme.measure_pmem(&state.golden, &state.layout),
                    previous: Vec::new(),
                    layout: state.layout.clone(),
                    golden: state.golden.clone(),
                },
            );
        }
        Verifier {
            root,
            expected,
            scheme,
            shards: vec![SweepShard::default(); SHARD_COUNT],
            pool: WorkerPool::new(fleet.threads(), SHARD_COUNT, SHARD_COUNT),
            next_nonce: 1,
            provider: Arc::new(SoftwareProvider),
        }
    }

    /// Routes verifier-side bulk crypto (aggregated sweeps) through
    /// `provider`. Backends are bit-compatible, so this changes cost,
    /// never verdicts.
    pub fn set_provider(&mut self, provider: Arc<dyn CryptoProvider>) {
        self.provider = provider;
    }

    /// The crypto backend aggregated sweeps run on.
    pub fn provider(&self) -> &Arc<dyn CryptoProvider> {
        &self.provider
    }

    /// Re-derives the key of `device` from the fleet root.
    pub fn device_key(&self, device: DeviceId) -> DeviceKey {
        self.root.derive(device)
    }

    /// The measurement scheme this verifier checks reports against.
    pub fn scheme(&self) -> MeasurementScheme {
        self.scheme
    }

    /// Number of device keys currently cached across all sweep shards.
    pub fn cached_keys(&self) -> usize {
        self.shards.iter().map(|s| s.keys.len()).sum()
    }

    /// Total key derivations ever performed. With stable shards this
    /// equals [`Verifier::cached_keys`] no matter how often the
    /// parallelism changes — each device key is derived exactly once.
    pub fn key_derivations(&self) -> u64 {
        self.shards.iter().map(|s| s.derivations).sum()
    }

    /// Number of persistent sweep workers.
    pub fn parallelism(&self) -> usize {
        self.pool.workers()
    }

    /// Changes the number of persistent sweep workers. The stable shard
    /// set (and every cached key in it) is untouched: only the
    /// shard→worker routing changes, so resizing between sweeps never
    /// costs a re-derivation.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.pool.set_workers(workers);
    }

    /// The fleet root key (campaigns derive per-device authorities from
    /// it).
    pub(crate) fn root(&self) -> &DeviceKey {
        &self.root
    }

    /// The current golden measurement for `cohort`.
    pub fn expected_measurement(&self, cohort: WorkloadId) -> Option<[u8; 32]> {
        self.expected.get(&cohort).map(|h| h.current)
    }

    /// Promotes `measurement` (taken over `golden`) to the current
    /// golden state for `cohort`, demoting the old measurement to
    /// "stale but authentic".
    pub(crate) fn promote_measurement(
        &mut self,
        cohort: WorkloadId,
        measurement: [u8; 32],
        golden: &Memory,
    ) {
        if let Some(history) = self.expected.get_mut(&cohort) {
            if history.current != measurement {
                let old = history.current;
                history.previous.push(old);
                history.current = measurement;
                history.golden = golden.clone();
            }
        }
    }

    /// Exports a self-contained [`ServiceSnapshot`] for a networked
    /// attestation gateway, reserving `nonce_span` nonces from the
    /// verifier's single strictly increasing challenge-nonce domain so
    /// gateway challenges and in-process sweep challenges can never
    /// collide on a device key.
    pub fn service_snapshot(&mut self, nonce_span: u64) -> ServiceSnapshot {
        let nonce_base = self.next_nonce;
        self.next_nonce += nonce_span;
        ServiceSnapshot {
            root: self.root.clone(),
            scheme: self.scheme,
            cohorts: self
                .expected
                .iter()
                .map(|(cohort, history)| {
                    (
                        *cohort,
                        CohortSnapshot {
                            layout: history.layout.clone(),
                            current: history.current,
                            previous: history.previous.clone(),
                            golden: history.golden.clone(),
                        },
                    )
                })
                .collect(),
            nonce_base,
            nonce_span,
        }
    }

    /// Reserves challenge nonces for the devices in `ids` and returns a
    /// base such that `base + id` is a never-before-issued nonce for
    /// every listed id. All attestation challenges for the fleet —
    /// sweeps and campaign post-update probes alike — MUST allocate
    /// through this one strictly increasing domain, so no two challenges
    /// to the same device key can ever share a nonce.
    pub(crate) fn reserve_challenge_nonces(&mut self, ids: &[DeviceId]) -> u64 {
        // Span to the max id so `base + id` is unique even for a sparse
        // subset of high device ids.
        let span = ids.iter().copied().max().unwrap_or(0) + 1;
        let base = self.next_nonce;
        self.next_nonce += span;
        base
    }

    /// Challenges and classifies one device against `shard`'s cached
    /// state. The report's measurement is *never* trusted from cache on
    /// the verifier side: only keys (immutable per device) are cached;
    /// classification always uses the fresh report.
    fn check_device(
        shard: &mut SweepShard,
        root: &DeviceKey,
        expected: &BTreeMap<WorkloadId, MeasurementHistory>,
        nonce_base: u64,
        device: &mut SimDevice,
    ) -> DeviceHealth {
        let key = shard.key(root, device.id());
        let verifier = AttestationVerifier::with_key(key);
        // Offset nonces so no two devices ever share one.
        let challenge = verifier.challenge_pmem(device.device().layout(), nonce_base + device.id());
        let report = device.attest(challenge);
        let verified = verifier.verify(&challenge, &report, None);
        let (class, error) = match expected.get(&device.cohort()) {
            Some(history) => history.classify(verified, &report.measurement),
            // A cohort this verifier never enrolled (a foreign
            // fleet): there is nothing to verify against.
            None => (HealthClass::Unverified, None),
        };
        DeviceHealth {
            device: device.id(),
            cohort: device.cohort(),
            class,
            error,
        }
    }

    /// Issues one batched attestation sweep across the whole fleet.
    ///
    /// Every device gets a fresh challenge over its full application PMEM
    /// range. Devices are partitioned into stable shards by
    /// `id % SHARD_COUNT`; the persistent pool runs one job per
    /// non-empty shard, each exclusively owning its shard's key cache,
    /// so keys are derived once per device *ever*, not once per sweep —
    /// and no threads are spawned per sweep. Flagged devices are
    /// recorded in the fleet ledger.
    pub fn sweep(&mut self, fleet: &mut Fleet) -> FleetReport {
        let ids: Vec<DeviceId> = fleet.devices().iter().map(|d| d.id()).collect();
        self.sweep_devices(fleet, &ids)
    }

    /// Issues a batched attestation sweep over a subset of devices.
    ///
    /// Shard assignment is `id % SHARD_COUNT` — stable across sweeps
    /// (and parallelism changes) so key caches keep hitting, and evenly
    /// balanced for dense id sets (the whole-fleet sweep). The report's
    /// `threads` field records the workers that actually ran shard
    /// batches, not the configured count.
    pub fn sweep_devices(&mut self, fleet: &mut Fleet, ids: &[DeviceId]) -> FleetReport {
        let nonce_base = self.reserve_challenge_nonces(ids);
        let shard_count = self.shards.len();
        let scheme = self.scheme;

        // Partition the targets into stable shards, so each device lands
        // in the same shard (same key cache) every sweep.
        let mut shard_targets: Vec<Vec<&mut SimDevice>> =
            (0..shard_count).map(|_| Vec::new()).collect();
        let targets = fleet.devices_by_ids_mut(ids);
        let challenged: BTreeSet<DeviceId> = targets.iter().map(|d| d.id()).collect();
        for device in targets {
            let shard = (device.id() % shard_count as u64) as usize;
            shard_targets[shard].push(device);
        }
        let threads = shard_targets
            .iter()
            .enumerate()
            .filter(|(_, targets)| !targets.is_empty())
            .map(|(shard, _)| self.pool.worker_of(shard))
            .collect::<BTreeSet<usize>>()
            .len()
            .max(1);

        let start = Instant::now();
        let root = &self.root;
        let expected = &self.expected;
        let mut healths: Vec<DeviceHealth> = if self.pool.workers() == 1 {
            // Single-worker sweeps run inline: same shard state, no
            // channel hops — deterministic and profiler-friendly.
            self.shards
                .iter_mut()
                .zip(shard_targets)
                .flat_map(|(shard, targets)| {
                    targets
                        .into_iter()
                        .map(|device| Self::check_device(shard, root, expected, nonce_base, device))
                        .collect::<Vec<DeviceHealth>>()
                })
                .collect()
        } else {
            // One pool job per non-empty shard; each job exclusively
            // owns its shard state (shards route to exactly one worker),
            // so the only shared data is read-only.
            let jobs: Vec<ShardJob<'_>> = self
                .shards
                .iter_mut()
                .zip(shard_targets)
                .enumerate()
                .filter(|(_, (_, targets))| !targets.is_empty())
                .map(|(index, (shard, targets))| {
                    let job: Box<dyn FnOnce() -> Vec<DeviceHealth> + Send + '_> =
                        Box::new(move || {
                            targets
                                .into_iter()
                                .map(|device| {
                                    Self::check_device(shard, root, expected, nonce_base, device)
                                })
                                .collect()
                        });
                    (index, job)
                })
                .collect();
            self.pool.scope(jobs).into_iter().flatten().collect()
        };
        let elapsed = start.elapsed();
        // Shard partitioning interleaves ids; reports stay in id order.
        healths.sort_by_key(|h| h.device);

        // Ids that matched no device were never challenged; surface them
        // rather than letting the report silently shrink.
        let missing: Vec<DeviceId> = ids
            .iter()
            .copied()
            .filter(|id| !challenged.contains(id))
            .collect();

        for health in &healths {
            if health.class != HealthClass::Attested {
                fleet.ledger_mut().record(LedgerEvent::AttestationFlagged {
                    device: health.device,
                    class: health.class,
                });
            }
        }
        FleetReport {
            devices: healths,
            missing,
            elapsed,
            threads,
            scheme,
        }
    }

    /// Challenges, verifies and classifies one device exactly as
    /// [`Verifier::check_device`] does — same challenge-nonce rule,
    /// same classification — additionally digesting the evidence leaf
    /// the shard's aggregation tree is built over. Verification routes
    /// through `provider` (bit-compatible backends, identical verdicts).
    fn check_device_evidence(
        shard: &mut SweepShard,
        provider: &dyn CryptoProvider,
        root: &DeviceKey,
        expected: &BTreeMap<WorkloadId, MeasurementHistory>,
        nonce_base: u64,
        device: &mut SimDevice,
    ) -> (DeviceHealth, [u8; 32]) {
        let key = shard.key(root, device.id());
        let verifier = AttestationVerifier::with_key(key);
        let challenge = verifier.challenge_pmem(device.device().layout(), nonce_base + device.id());
        let report = device.attest(challenge);
        let verified = verifier.verify_with(provider, &challenge, &report, None);
        let (class, error) = match expected.get(&device.cohort()) {
            Some(history) => history.classify(verified, &report.measurement),
            None => (HealthClass::Unverified, None),
        };
        let leaf = evidence_leaf(provider, device.id(), &report);
        (
            DeviceHealth {
                device: device.id(),
                cohort: device.cohort(),
                class,
                error,
            },
            leaf,
        )
    }

    /// Runs one shard of an aggregated sweep: verify every device,
    /// build the evidence tree (leaves in ascending device-id order),
    /// and sign the root with the shard's aggregation key. Only the
    /// suspect (non-attested) verdicts are materialised — the clean
    /// majority is represented solely by the aggregate.
    fn aggregate_shard(
        index: usize,
        shard: &mut SweepShard,
        targets: Vec<&mut SimDevice>,
        provider: &dyn CryptoProvider,
        root: &DeviceKey,
        expected: &BTreeMap<WorkloadId, MeasurementHistory>,
        epoch: u64,
    ) -> ShardAggregate {
        let devices = targets.len();
        let mut counts = [0usize; 4];
        let mut suspects = Vec::new();
        let mut leaves = Vec::with_capacity(devices);
        for device in targets {
            let (health, leaf) =
                Self::check_device_evidence(shard, provider, root, expected, epoch, device);
            counts[class_index(health.class)] += 1;
            if health.class != HealthClass::Attested {
                suspects.push(health);
            }
            leaves.push(leaf);
        }
        let tree = EvidenceTree::from_leaves(provider, &leaves);
        let key = shard_agg_key(provider, root.as_bytes(), index as u16);
        let proof = AggProof::sign(
            provider,
            &key,
            index as u16,
            epoch,
            devices as u32,
            tree.root(),
        );
        ShardAggregate {
            shard: index as u16,
            devices,
            counts,
            proof,
            suspects,
        }
    }

    /// Issues one *aggregated* attestation sweep across the whole
    /// fleet.
    ///
    /// Trust semantics are identical to [`Verifier::sweep`] — every
    /// device is challenged with a fresh nonce and every report MAC is
    /// checked — but the evidence is folded into one signed aggregate
    /// root per shard, and an all-clean shard short-circuits per-device
    /// verdict assembly: the operator-side check verifies at most
    /// [`SHARD_COUNT`] aggregate root MACs, descending to per-device
    /// verdicts only for the suspects each shard reports.
    pub fn sweep_aggregated(&mut self, fleet: &mut Fleet) -> AggSweepSummary {
        let ids: Vec<DeviceId> = fleet.devices().iter().map(|d| d.id()).collect();
        self.sweep_devices_aggregated(fleet, &ids)
    }

    /// Aggregated sweep over a subset of devices (see
    /// [`Verifier::sweep_aggregated`]). The sweep's reserved
    /// challenge-nonce base doubles as the aggregation **epoch** —
    /// strictly increasing, so no aggregate proof can be replayed into
    /// a later sweep.
    pub fn sweep_devices_aggregated(
        &mut self,
        fleet: &mut Fleet,
        ids: &[DeviceId],
    ) -> AggSweepSummary {
        let epoch = self.reserve_challenge_nonces(ids);
        let shard_count = self.shards.len();
        let provider = Arc::clone(&self.provider);
        let provider_ref: &dyn CryptoProvider = provider.as_ref();

        let mut shard_targets: Vec<Vec<&mut SimDevice>> =
            (0..shard_count).map(|_| Vec::new()).collect();
        for device in fleet.devices_by_ids_mut(ids) {
            let shard = (device.id() % shard_count as u64) as usize;
            shard_targets[shard].push(device);
        }
        // Canonical leaf order inside a shard is ascending device id —
        // every aggregator (local, gateway, cluster) must agree on it
        // for roots to be comparable.
        for targets in &mut shard_targets {
            targets.sort_by_key(|device| device.id());
        }

        let root = &self.root;
        let expected = &self.expected;
        let aggregates: Vec<ShardAggregate> = if self.pool.workers() == 1 {
            self.shards
                .iter_mut()
                .zip(shard_targets)
                .enumerate()
                .filter(|(_, (_, targets))| !targets.is_empty())
                .map(|(index, (shard, targets))| {
                    Self::aggregate_shard(
                        index,
                        shard,
                        targets,
                        provider_ref,
                        root,
                        expected,
                        epoch,
                    )
                })
                .collect()
        } else {
            let jobs: Vec<AggShardJob<'_>> = self
                .shards
                .iter_mut()
                .zip(shard_targets)
                .enumerate()
                .filter(|(_, (_, targets))| !targets.is_empty())
                .map(|(index, (shard, targets))| {
                    let job: Box<dyn FnOnce() -> ShardAggregate + Send + '_> =
                        Box::new(move || {
                            Self::aggregate_shard(
                                index,
                                shard,
                                targets,
                                provider_ref,
                                root,
                                expected,
                                epoch,
                            )
                        });
                    (index, job)
                })
                .collect();
            self.pool.scope(jobs)
        };

        // Operator-side assembly: one MAC verification per shard
        // aggregate covers its whole clean population; per-device
        // verdicts are assembled only from the reported suspects.
        let mut summary = SweepSummary {
            devices: 0,
            counts: [0; 4],
            flagged: Vec::new(),
        };
        let mut shard_roots = Vec::with_capacity(aggregates.len());
        let mut roots_verified = 0usize;
        let mut short_circuited = 0usize;
        for aggregate in &aggregates {
            let key = shard_agg_key(provider_ref, self.root.as_bytes(), aggregate.shard);
            assert!(
                aggregate.proof.verify(provider_ref, &key),
                "shard {} aggregate root failed verification",
                aggregate.shard
            );
            roots_verified += 1;
            summary.devices += aggregate.devices;
            for (slot, count) in summary.counts.iter_mut().zip(aggregate.counts) {
                *slot += count;
            }
            if aggregate.suspects.is_empty() {
                short_circuited += aggregate.devices;
            }
            for suspect in &aggregate.suspects {
                summary.flagged.push((suspect.device, suspect.class));
            }
            shard_roots.push((aggregate.shard, aggregate.proof.root));
        }
        summary.flagged.sort_by_key(|(id, _)| *id);
        for (device, class) in &summary.flagged {
            fleet.ledger_mut().record(LedgerEvent::AttestationFlagged {
                device: *device,
                class: *class,
            });
        }
        let fleet_root = eilid_casu::agg::fleet_root(provider_ref, &shard_roots);
        AggSweepSummary {
            summary,
            epoch,
            shards: aggregates.len(),
            roots_verified,
            short_circuited,
            shard_roots,
            fleet_root,
        }
    }

    /// The PR 2 sweep strategy — `thread::scope` with per-sweep thread
    /// spawning — kept verbatim as the benchmark baseline the persistent
    /// pool is measured against (`BENCH_net.json`). Identical trust
    /// logic and shard state; only the scheduling differs.
    #[doc(hidden)]
    pub fn sweep_scoped_baseline(&mut self, fleet: &mut Fleet) -> FleetReport {
        let ids: Vec<DeviceId> = fleet.devices().iter().map(|d| d.id()).collect();
        let nonce_base = self.reserve_challenge_nonces(&ids);
        let shard_count = self.shards.len();
        let scheme = self.scheme;
        let workers = self.pool.workers().max(1);

        let mut shard_targets: Vec<Vec<&mut SimDevice>> =
            (0..shard_count).map(|_| Vec::new()).collect();
        for device in fleet.devices_by_ids_mut(&ids) {
            let shard = (device.id() % shard_count as u64) as usize;
            shard_targets[shard].push(device);
        }

        let start = Instant::now();
        let root = &self.root;
        let expected = &self.expected;
        // Group the stable shards into one chunk per worker, exactly as
        // the pool routes them, then spawn a scoped thread per chunk —
        // paying the per-sweep spawn/join cost the pool eliminates.
        let mut chunks: Vec<Vec<(&mut SweepShard, Vec<&mut SimDevice>)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (index, (shard, targets)) in self.shards.iter_mut().zip(shard_targets).enumerate() {
            if !targets.is_empty() {
                chunks[index % workers].push((shard, targets));
            }
        }
        let mut healths: Vec<DeviceHealth> = if workers == 1 {
            chunks
                .pop()
                .expect("one chunk")
                .into_iter()
                .flat_map(|(shard, targets)| {
                    targets
                        .into_iter()
                        .map(|device| Self::check_device(shard, root, expected, nonce_base, device))
                        .collect::<Vec<DeviceHealth>>()
                })
                .collect()
        } else {
            thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .filter(|chunk| !chunk.is_empty())
                    .map(|chunk| {
                        scope.spawn(move || {
                            chunk
                                .into_iter()
                                .flat_map(|(shard, targets)| {
                                    targets
                                        .into_iter()
                                        .map(|device| {
                                            Self::check_device(
                                                shard, root, expected, nonce_base, device,
                                            )
                                        })
                                        .collect::<Vec<DeviceHealth>>()
                                })
                                .collect::<Vec<DeviceHealth>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|handle| handle.join().expect("sweep shard thread panicked"))
                    .collect()
            })
        };
        let elapsed = start.elapsed();
        healths.sort_by_key(|h| h.device);
        for health in &healths {
            if health.class != HealthClass::Attested {
                fleet.ledger_mut().record(LedgerEvent::AttestationFlagged {
                    device: health.device,
                    class: health.class,
                });
            }
        }
        FleetReport {
            devices: healths,
            missing: Vec::new(),
            elapsed,
            threads: workers,
            scheme,
        }
    }
}
