//! The fleet verifier: batched attestation sweeps, sharded per-worker
//! sweep state with cached device keys, and measurement bookkeeping.

use std::collections::{BTreeMap, HashMap};
use std::thread;
use std::time::Instant;

use eilid_casu::{AttestError, AttestationVerifier, DeviceKey, MeasurementScheme};
use eilid_workloads::WorkloadId;

use crate::device::{DeviceId, SimDevice};
use crate::fleet::Fleet;
use crate::report::{DeviceHealth, FleetReport, HealthClass, LedgerEvent};

/// Known-good measurements of one firmware cohort: the current version
/// plus every previous version still considered "stale but authentic".
#[derive(Debug, Clone)]
struct MeasurementHistory {
    current: [u8; 32],
    previous: Vec<[u8; 32]>,
}

/// Per-worker sweep state. Devices are assigned to shards by
/// `id % shard_count`, which is stable across sweeps, so a shard's key
/// cache keeps hitting for the same devices sweep after sweep and no
/// cross-thread synchronisation is ever needed: each worker thread owns
/// exactly one shard for the duration of a sweep.
#[derive(Debug, Clone, Default)]
struct SweepShard {
    /// Device keys derived once from the fleet root, then reused.
    keys: HashMap<DeviceId, DeviceKey>,
}

impl SweepShard {
    /// The cached (or newly derived and cached) key of `device`.
    fn key(&mut self, root: &DeviceKey, device: DeviceId) -> &DeviceKey {
        self.keys
            .entry(device)
            .or_insert_with(|| root.derive(device))
    }
}

/// The trusted fleet verifier.
///
/// Holds the fleet root key (from which every device key is derived,
/// then cached in per-worker shards), the per-cohort golden
/// measurements, the measurement scheme the fleet was enrolled under,
/// and the challenge-nonce state.
#[derive(Debug, Clone)]
pub struct Verifier {
    root: DeviceKey,
    expected: BTreeMap<WorkloadId, MeasurementHistory>,
    scheme: MeasurementScheme,
    shards: Vec<SweepShard>,
    next_nonce: u64,
}

impl Verifier {
    /// Enrolls a fleet: records each cohort's golden measurement (under
    /// the fleet's measurement scheme, over the layout the cohort's
    /// devices were actually built with) and sizes one sweep shard per
    /// fleet worker thread.
    pub(crate) fn enroll(root: DeviceKey, fleet: &Fleet) -> Self {
        let scheme = fleet.scheme();
        let mut expected = BTreeMap::new();
        for cohort in fleet.cohort_ids() {
            let state = fleet.cohort(cohort).expect("cohort exists");
            expected.insert(
                cohort,
                MeasurementHistory {
                    current: scheme.measure_pmem(&state.golden, &state.layout),
                    previous: Vec::new(),
                },
            );
        }
        Verifier {
            root,
            expected,
            scheme,
            shards: vec![SweepShard::default(); fleet.threads()],
            next_nonce: 1,
        }
    }

    /// Re-derives the key of `device` from the fleet root.
    pub fn device_key(&self, device: DeviceId) -> DeviceKey {
        self.root.derive(device)
    }

    /// The measurement scheme this verifier checks reports against.
    pub fn scheme(&self) -> MeasurementScheme {
        self.scheme
    }

    /// Number of device keys currently cached across all sweep shards.
    pub fn cached_keys(&self) -> usize {
        self.shards.iter().map(|s| s.keys.len()).sum()
    }

    /// The fleet root key (campaigns derive per-device authorities from
    /// it).
    pub(crate) fn root(&self) -> &DeviceKey {
        &self.root
    }

    /// The current golden measurement for `cohort`.
    pub fn expected_measurement(&self, cohort: WorkloadId) -> Option<[u8; 32]> {
        self.expected.get(&cohort).map(|h| h.current)
    }

    /// Promotes `measurement` to the current golden value for `cohort`,
    /// demoting the old value to "stale but authentic".
    pub(crate) fn promote_measurement(&mut self, cohort: WorkloadId, measurement: [u8; 32]) {
        if let Some(history) = self.expected.get_mut(&cohort) {
            if history.current != measurement {
                let old = history.current;
                history.previous.push(old);
                history.current = measurement;
            }
        }
    }

    /// Reserves challenge nonces for the devices in `ids` and returns a
    /// base such that `base + id` is a never-before-issued nonce for
    /// every listed id. All attestation challenges for the fleet —
    /// sweeps and campaign post-update probes alike — MUST allocate
    /// through this one strictly increasing domain, so no two challenges
    /// to the same device key can ever share a nonce.
    pub(crate) fn reserve_challenge_nonces(&mut self, ids: &[DeviceId]) -> u64 {
        // Span to the max id so `base + id` is unique even for a sparse
        // subset of high device ids.
        let span = ids.iter().copied().max().unwrap_or(0) + 1;
        let base = self.next_nonce;
        self.next_nonce += span;
        base
    }

    /// Classifies one verified-or-not report measurement.
    fn classify(
        history: &MeasurementHistory,
        verified: Result<(), AttestError>,
        measurement: &[u8; 32],
    ) -> (HealthClass, Option<AttestError>) {
        match verified {
            Err(error) => (HealthClass::Unverified, Some(error)),
            Ok(()) if measurement == &history.current => (HealthClass::Attested, None),
            Ok(()) if history.previous.contains(measurement) => (HealthClass::Stale, None),
            Ok(()) => (
                HealthClass::Tampered,
                Some(AttestError::UnexpectedMeasurement),
            ),
        }
    }

    /// Challenges and classifies one device against `shard`'s cached
    /// state. The report's measurement is *never* trusted from cache on
    /// the verifier side: only keys (immutable per device) are cached;
    /// classification always uses the fresh report.
    fn check_device(
        shard: &mut SweepShard,
        root: &DeviceKey,
        expected: &BTreeMap<WorkloadId, MeasurementHistory>,
        nonce_base: u64,
        device: &mut SimDevice,
    ) -> DeviceHealth {
        let key = shard.key(root, device.id());
        let verifier = AttestationVerifier::with_key(key);
        // Offset nonces so no two devices ever share one.
        let challenge = verifier.challenge_pmem(device.device().layout(), nonce_base + device.id());
        let report = device.attest(challenge);
        let verified = verifier.verify(&challenge, &report, None);
        let (class, error) = match expected.get(&device.cohort()) {
            Some(history) => Verifier::classify(history, verified, &report.measurement),
            // A cohort this verifier never enrolled (a foreign
            // fleet): there is nothing to verify against.
            None => (HealthClass::Unverified, None),
        };
        DeviceHealth {
            device: device.id(),
            cohort: device.cohort(),
            class,
            error,
        }
    }

    /// Issues one batched attestation sweep across the whole fleet.
    ///
    /// Every device gets a fresh challenge over its full application PMEM
    /// range. Devices are partitioned into per-worker shards by
    /// `id % shards`; each worker owns its shard's key cache for the
    /// sweep, so keys are derived once per device *ever*, not once per
    /// sweep. Flagged devices are recorded in the fleet ledger.
    pub fn sweep(&mut self, fleet: &mut Fleet) -> FleetReport {
        let ids: Vec<DeviceId> = fleet.devices().iter().map(|d| d.id()).collect();
        self.sweep_devices(fleet, &ids)
    }

    /// Issues a batched attestation sweep over a subset of devices.
    ///
    /// Shard assignment is `id % shards` — stable across sweeps so key
    /// caches keep hitting, and evenly balanced for dense id sets (the
    /// whole-fleet sweep). A subset whose ids all share one residue
    /// collapses onto a single worker; the report's `threads` field
    /// records the workers that actually ran, not the configured count.
    pub fn sweep_devices(&mut self, fleet: &mut Fleet, ids: &[DeviceId]) -> FleetReport {
        let nonce_base = self.reserve_challenge_nonces(ids);
        let shard_count = self.shards.len().max(1);
        let scheme = self.scheme;

        // Partition the targets into shards by stable id hash, so each
        // device lands in the same shard (same key cache) every sweep.
        let mut shard_targets: Vec<Vec<&mut SimDevice>> =
            (0..shard_count).map(|_| Vec::new()).collect();
        let targets = fleet.devices_by_ids_mut(ids);
        let challenged: std::collections::BTreeSet<DeviceId> =
            targets.iter().map(|d| d.id()).collect();
        for device in targets {
            let shard = (device.id() % shard_count as u64) as usize;
            shard_targets[shard].push(device);
        }
        let threads = shard_targets
            .iter()
            .filter(|targets| !targets.is_empty())
            .count()
            .max(1);

        let start = Instant::now();
        let root = &self.root;
        let expected = &self.expected;
        let mut healths: Vec<DeviceHealth> = if shard_count == 1 {
            let shard = &mut self.shards[0];
            shard_targets
                .pop()
                .expect("one shard")
                .into_iter()
                .map(|device| Self::check_device(shard, root, expected, nonce_base, device))
                .collect()
        } else {
            // One scoped worker per (non-empty) shard; each exclusively
            // owns its shard state, so the only shared data is read-only.
            thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(shard_targets)
                    .filter(|(_, targets)| !targets.is_empty())
                    .map(|(shard, targets)| {
                        scope.spawn(move || {
                            targets
                                .into_iter()
                                .map(|device| {
                                    Self::check_device(shard, root, expected, nonce_base, device)
                                })
                                .collect::<Vec<DeviceHealth>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|handle| handle.join().expect("sweep shard thread panicked"))
                    .collect()
            })
        };
        let elapsed = start.elapsed();
        // Shard partitioning interleaves ids; reports stay in id order.
        healths.sort_by_key(|h| h.device);

        // Ids that matched no device were never challenged; surface them
        // rather than letting the report silently shrink.
        let missing: Vec<DeviceId> = ids
            .iter()
            .copied()
            .filter(|id| !challenged.contains(id))
            .collect();

        for health in &healths {
            if health.class != HealthClass::Attested {
                fleet.ledger_mut().record(LedgerEvent::AttestationFlagged {
                    device: health.device,
                    class: health.class,
                });
            }
        }
        FleetReport {
            devices: healths,
            missing,
            elapsed,
            threads,
            scheme,
        }
    }
}
