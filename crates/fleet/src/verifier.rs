//! The fleet verifier: batched attestation sweeps and measurement
//! bookkeeping.

use std::collections::BTreeMap;
use std::time::Instant;

use eilid_casu::{
    measure_pmem, AttestError, AttestationVerifier, Challenge, DeviceKey, MemoryLayout,
};
use eilid_workloads::WorkloadId;

use crate::device::DeviceId;
use crate::exec::parallel_map_mut;
use crate::fleet::Fleet;
use crate::report::{DeviceHealth, FleetReport, HealthClass, LedgerEvent};

/// Known-good measurements of one firmware cohort: the current version
/// plus every previous version still considered "stale but authentic".
#[derive(Debug, Clone)]
struct MeasurementHistory {
    current: [u8; 32],
    previous: Vec<[u8; 32]>,
}

/// The trusted fleet verifier.
///
/// Holds the fleet root key (from which every device key is re-derived
/// on demand), the per-cohort golden measurements, and the per-device
/// update-authority state (freshness nonces).
#[derive(Debug, Clone)]
pub struct Verifier {
    root: DeviceKey,
    expected: BTreeMap<WorkloadId, MeasurementHistory>,
    next_nonce: u64,
}

impl Verifier {
    /// Enrolls a fleet: records each cohort's golden measurement.
    pub(crate) fn enroll(root: DeviceKey, fleet: &Fleet) -> Self {
        let mut expected = BTreeMap::new();
        for cohort in fleet.cohort_ids() {
            let golden = &fleet.cohort(cohort).expect("cohort exists").golden;
            let layout = MemoryLayout::default();
            expected.insert(
                cohort,
                MeasurementHistory {
                    current: measure_pmem(golden, &layout),
                    previous: Vec::new(),
                },
            );
        }
        Verifier {
            root,
            expected,
            next_nonce: 1,
        }
    }

    /// Re-derives the key of `device` from the fleet root.
    pub fn device_key(&self, device: DeviceId) -> DeviceKey {
        self.root.derive(device)
    }

    /// The fleet root key (campaigns derive per-device authorities from
    /// it).
    pub(crate) fn root(&self) -> &DeviceKey {
        &self.root
    }

    /// The current golden measurement for `cohort`.
    pub fn expected_measurement(&self, cohort: WorkloadId) -> Option<[u8; 32]> {
        self.expected.get(&cohort).map(|h| h.current)
    }

    /// Promotes `measurement` to the current golden value for `cohort`,
    /// demoting the old value to "stale but authentic".
    pub(crate) fn promote_measurement(&mut self, cohort: WorkloadId, measurement: [u8; 32]) {
        if let Some(history) = self.expected.get_mut(&cohort) {
            if history.current != measurement {
                let old = history.current;
                history.previous.push(old);
                history.current = measurement;
            }
        }
    }

    /// Reserves a block of `count` fresh challenge nonces and returns the
    /// first.
    fn reserve_nonces(&mut self, count: u64) -> u64 {
        let base = self.next_nonce;
        self.next_nonce += count;
        base
    }

    /// Classifies one verified-or-not report measurement.
    fn classify(
        history: &MeasurementHistory,
        verified: Result<(), AttestError>,
        measurement: &[u8; 32],
    ) -> (HealthClass, Option<AttestError>) {
        match verified {
            Err(error) => (HealthClass::Unverified, Some(error)),
            Ok(()) if measurement == &history.current => (HealthClass::Attested, None),
            Ok(()) if history.previous.contains(measurement) => (HealthClass::Stale, None),
            Ok(()) => (
                HealthClass::Tampered,
                Some(AttestError::UnexpectedMeasurement),
            ),
        }
    }

    /// Issues one batched attestation sweep across the whole fleet.
    ///
    /// Every device gets a fresh challenge over its full application PMEM
    /// range; reports are produced and verified on the fleet's worker
    /// pool; flagged devices are recorded in the fleet ledger.
    pub fn sweep(&mut self, fleet: &mut Fleet) -> FleetReport {
        let ids: Vec<DeviceId> = fleet.devices().iter().map(|d| d.id()).collect();
        self.sweep_devices(fleet, &ids)
    }

    /// Issues a batched attestation sweep over a subset of devices.
    pub fn sweep_devices(&mut self, fleet: &mut Fleet, ids: &[DeviceId]) -> FleetReport {
        // Reserve enough nonces that `base + id` is unique across sweeps
        // even when attesting a sparse subset of high device ids.
        let nonce_span = ids.iter().copied().max().unwrap_or(0) + 1;
        let nonce_base = self.reserve_nonces(nonce_span);
        let root = self.root.clone();
        let expected = self.expected.clone();
        let threads = fleet.threads();

        let start = Instant::now();
        let mut targets = fleet.devices_by_ids_mut(ids);
        let healths: Vec<DeviceHealth> = parallel_map_mut(&mut targets, threads, |device| {
            let layout = device.device().layout();
            let challenge = Challenge {
                // Offset nonces so no two devices ever share one.
                nonce: nonce_base + device.id(),
                start: *layout.pmem.start(),
                end: *layout.pmem.end(),
            };
            let report = device.attest(challenge);
            let key = root.derive(device.id());
            let verifier = AttestationVerifier::with_key(&key);
            let verified = verifier.verify(&challenge, &report, None);
            let history = &expected[&device.cohort()];
            let (class, error) = Verifier::classify(history, verified, &report.measurement);
            DeviceHealth {
                device: device.id(),
                cohort: device.cohort(),
                class,
                error,
            }
        });
        let elapsed = start.elapsed();
        drop(targets);

        // Ids that matched no device were never challenged; surface them
        // rather than letting the report silently shrink.
        let challenged: std::collections::BTreeSet<DeviceId> =
            healths.iter().map(|h| h.device).collect();
        let missing: Vec<DeviceId> = ids
            .iter()
            .copied()
            .filter(|id| !challenged.contains(id))
            .collect();

        for health in &healths {
            if health.class != HealthClass::Attested {
                fleet.ledger_mut().record(LedgerEvent::AttestationFlagged {
                    device: health.device,
                    class: health.class,
                });
            }
        }
        FleetReport {
            devices: healths,
            missing,
            elapsed,
            threads,
        }
    }
}
