//! The fleet verifier: batched attestation sweeps and measurement
//! bookkeeping.

use std::collections::BTreeMap;
use std::time::Instant;

use eilid_casu::{measure_pmem, AttestError, AttestationVerifier, DeviceKey};
use eilid_workloads::WorkloadId;

use crate::device::DeviceId;
use crate::exec::parallel_map_mut;
use crate::fleet::Fleet;
use crate::report::{DeviceHealth, FleetReport, HealthClass, LedgerEvent};

/// Known-good measurements of one firmware cohort: the current version
/// plus every previous version still considered "stale but authentic".
#[derive(Debug, Clone)]
struct MeasurementHistory {
    current: [u8; 32],
    previous: Vec<[u8; 32]>,
}

/// The trusted fleet verifier.
///
/// Holds the fleet root key (from which every device key is re-derived
/// on demand), the per-cohort golden measurements, and the per-device
/// update-authority state (freshness nonces).
#[derive(Debug, Clone)]
pub struct Verifier {
    root: DeviceKey,
    expected: BTreeMap<WorkloadId, MeasurementHistory>,
    next_nonce: u64,
}

impl Verifier {
    /// Enrolls a fleet: records each cohort's golden measurement, taken
    /// over the layout the cohort's devices were actually built with.
    pub(crate) fn enroll(root: DeviceKey, fleet: &Fleet) -> Self {
        let mut expected = BTreeMap::new();
        for cohort in fleet.cohort_ids() {
            let state = fleet.cohort(cohort).expect("cohort exists");
            expected.insert(
                cohort,
                MeasurementHistory {
                    current: measure_pmem(&state.golden, &state.layout),
                    previous: Vec::new(),
                },
            );
        }
        Verifier {
            root,
            expected,
            next_nonce: 1,
        }
    }

    /// Re-derives the key of `device` from the fleet root.
    pub fn device_key(&self, device: DeviceId) -> DeviceKey {
        self.root.derive(device)
    }

    /// The fleet root key (campaigns derive per-device authorities from
    /// it).
    pub(crate) fn root(&self) -> &DeviceKey {
        &self.root
    }

    /// The current golden measurement for `cohort`.
    pub fn expected_measurement(&self, cohort: WorkloadId) -> Option<[u8; 32]> {
        self.expected.get(&cohort).map(|h| h.current)
    }

    /// Promotes `measurement` to the current golden value for `cohort`,
    /// demoting the old value to "stale but authentic".
    pub(crate) fn promote_measurement(&mut self, cohort: WorkloadId, measurement: [u8; 32]) {
        if let Some(history) = self.expected.get_mut(&cohort) {
            if history.current != measurement {
                let old = history.current;
                history.previous.push(old);
                history.current = measurement;
            }
        }
    }

    /// Reserves challenge nonces for the devices in `ids` and returns a
    /// base such that `base + id` is a never-before-issued nonce for
    /// every listed id. All attestation challenges for the fleet —
    /// sweeps and campaign post-update probes alike — MUST allocate
    /// through this one strictly increasing domain, so no two challenges
    /// to the same device key can ever share a nonce.
    pub(crate) fn reserve_challenge_nonces(&mut self, ids: &[DeviceId]) -> u64 {
        // Span to the max id so `base + id` is unique even for a sparse
        // subset of high device ids.
        let span = ids.iter().copied().max().unwrap_or(0) + 1;
        let base = self.next_nonce;
        self.next_nonce += span;
        base
    }

    /// Classifies one verified-or-not report measurement.
    fn classify(
        history: &MeasurementHistory,
        verified: Result<(), AttestError>,
        measurement: &[u8; 32],
    ) -> (HealthClass, Option<AttestError>) {
        match verified {
            Err(error) => (HealthClass::Unverified, Some(error)),
            Ok(()) if measurement == &history.current => (HealthClass::Attested, None),
            Ok(()) if history.previous.contains(measurement) => (HealthClass::Stale, None),
            Ok(()) => (
                HealthClass::Tampered,
                Some(AttestError::UnexpectedMeasurement),
            ),
        }
    }

    /// Issues one batched attestation sweep across the whole fleet.
    ///
    /// Every device gets a fresh challenge over its full application PMEM
    /// range; reports are produced and verified on the fleet's worker
    /// pool; flagged devices are recorded in the fleet ledger.
    pub fn sweep(&mut self, fleet: &mut Fleet) -> FleetReport {
        let ids: Vec<DeviceId> = fleet.devices().iter().map(|d| d.id()).collect();
        self.sweep_devices(fleet, &ids)
    }

    /// Issues a batched attestation sweep over a subset of devices.
    pub fn sweep_devices(&mut self, fleet: &mut Fleet, ids: &[DeviceId]) -> FleetReport {
        let nonce_base = self.reserve_challenge_nonces(ids);
        // Shared borrows are enough for the worker closure: the mutable
        // borrow of `self` ended with reserve_nonces, and `fleet` is a
        // separate borrow.
        let root = &self.root;
        let expected = &self.expected;
        let threads = fleet.threads();

        let start = Instant::now();
        let mut targets = fleet.devices_by_ids_mut(ids);
        let healths: Vec<DeviceHealth> = parallel_map_mut(&mut targets, threads, |device| {
            let key = root.derive(device.id());
            let verifier = AttestationVerifier::with_key(&key);
            // Offset nonces so no two devices ever share one.
            let challenge =
                verifier.challenge_pmem(device.device().layout(), nonce_base + device.id());
            let report = device.attest(challenge);
            let verified = verifier.verify(&challenge, &report, None);
            let (class, error) = match expected.get(&device.cohort()) {
                Some(history) => Verifier::classify(history, verified, &report.measurement),
                // A cohort this verifier never enrolled (a foreign
                // fleet): there is nothing to verify against.
                None => (HealthClass::Unverified, None),
            };
            DeviceHealth {
                device: device.id(),
                cohort: device.cohort(),
                class,
                error,
            }
        });
        let elapsed = start.elapsed();
        drop(targets);

        // Ids that matched no device were never challenged; surface them
        // rather than letting the report silently shrink.
        let challenged: std::collections::BTreeSet<DeviceId> =
            healths.iter().map(|h| h.device).collect();
        let missing: Vec<DeviceId> = ids
            .iter()
            .copied()
            .filter(|id| !challenged.contains(id))
            .collect();

        for health in &healths {
            if health.class != HealthClass::Attested {
                fleet.ledger_mut().record(LedgerEvent::AttestationFlagged {
                    device: health.device,
                    class: health.class,
                });
            }
        }
        FleetReport {
            devices: healths,
            missing,
            elapsed,
            threads,
        }
    }
}
