//! The unified operator plane: one [`FleetOps`] surface for attestation
//! sweeps, staged OTA campaigns and health queries, with
//! backend-independent semantics.
//!
//! EILID's deployment story is a *remote* verifier that both attests and
//! heals a fleet. This module defines the operator-facing API once:
//!
//! * [`LocalOps`] — the in-process backend. Sweeps run on the
//!   [`Verifier`]'s persistent worker pool; campaigns drive the
//!   [`CampaignRun`] engine through the in-process
//!   [`LocalExecutor`](crate::campaign::LocalExecutor).
//! * `eilid_net::RemoteOps` — the wire backend. The same trait methods
//!   become protocol frames to an attestation gateway, which executes
//!   waves by pushing updates and probes to connected device clients.
//!
//! Every scenario — CLI subcommands, examples, benches, the equivalence
//! test suite — runs against `&mut dyn FleetOps`, so the two backends
//! cannot drift: a wire-driven campaign's [`CampaignReport`] is pinned
//! wave-for-wave equal to the in-process one.

use std::fmt;

use crate::campaign::{
    Campaign, CampaignConfig, CampaignOutcome, CampaignReport, CampaignRun, CampaignStatus,
    PausedCampaign, WaveReport,
};
use crate::device::DeviceId;
use crate::error::FleetError;
use crate::fleet::Fleet;
use crate::report::{FleetReport, HealthClass};
use crate::verifier::Verifier;

/// Why an operator-plane call failed.
#[derive(Debug)]
pub enum OpsError {
    /// The underlying fleet/campaign machinery rejected the operation.
    Fleet(FleetError),
    /// A campaign operation was issued with no campaign in the required
    /// state (step/pause/report with nothing running, resume with
    /// nothing paused).
    NoCampaign,
    /// A campaign begin/resume collided with one already running.
    CampaignActive,
    /// A backend-transport failure (connection loss, protocol error,
    /// gateway-side refusal). In-process backends never produce this.
    Backend(String),
}

impl fmt::Display for OpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpsError::Fleet(err) => write!(f, "fleet operation failed: {err}"),
            OpsError::NoCampaign => write!(f, "no campaign in the required state"),
            OpsError::CampaignActive => write!(f, "a campaign is already active for this cohort"),
            OpsError::Backend(msg) => write!(f, "operator-plane backend error: {msg}"),
        }
    }
}

impl std::error::Error for OpsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OpsError::Fleet(err) => Some(err),
            _ => None,
        }
    }
}

impl From<FleetError> for OpsError {
    fn from(err: FleetError) -> Self {
        OpsError::Fleet(err)
    }
}

/// Lifecycle phase of the backend's campaign slot, as reported by
/// [`FleetOps::campaign_status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignPhase {
    /// No campaign is loaded.
    Idle,
    /// A campaign is running; the next [`FleetOps::campaign_step`] rolls
    /// out `next_wave`.
    InProgress {
        /// Index of the next wave to roll out.
        next_wave: usize,
    },
    /// A campaign is paused *inside the backend* (the networked gateway
    /// retains paused campaigns; [`LocalOps`] hands the paused bytes to
    /// the caller instead and reports `Idle`).
    Paused {
        /// The persisted wave cursor.
        next_wave: usize,
    },
    /// The campaign finished; [`FleetOps::campaign_report`] is
    /// available.
    Finished,
}

/// Backend-independent summary of one attestation sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSummary {
    /// Devices attested.
    pub devices: usize,
    /// Devices per health class:
    /// `[attested, stale, tampered, unverified]`.
    pub counts: [usize; 4],
    /// Devices in a non-attested class, in id order.
    pub flagged: Vec<(DeviceId, HealthClass)>,
}

impl SweepSummary {
    /// Devices in `class`.
    pub fn count(&self, class: HealthClass) -> usize {
        self.counts[class_index(class)]
    }
}

/// Backend-independent summary of one *aggregated* attestation sweep:
/// the same per-class verdicts a per-device sweep yields (the
/// equivalence the proptest oracle pins), plus the aggregate evidence —
/// shard roots, their count, and how much operator-side work the
/// aggregation saved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggSweepSummary {
    /// Per-class verdicts, bit-equal to a per-device sweep's.
    pub summary: SweepSummary,
    /// The sweep epoch bound into every aggregate root MAC (the sweep's
    /// reserved challenge-nonce base, strictly increasing).
    pub epoch: u64,
    /// Shards that aggregated at least one participant.
    pub shards: usize,
    /// Aggregate root MACs the operator verified — at most
    /// `SHARD_COUNT` per gateway, no matter the fleet size.
    pub roots_verified: usize,
    /// Devices whose per-device verdict assembly was skipped because
    /// their shard's aggregate was all-clean (the memoized-probe rule
    /// pushed into sweeps).
    pub short_circuited: usize,
    /// Verified `(shard, aggregate root)` pairs, in canonical order
    /// (ascending shard; for a cluster, gateways in placement order).
    pub shard_roots: Vec<(u16, [u8; 32])>,
    /// Digest folding all shard roots — one fleet-wide aggregate.
    pub fleet_root: [u8; 32],
}

/// Maps a health class to its [`SweepSummary::counts`] slot.
pub fn class_index(class: HealthClass) -> usize {
    match class {
        HealthClass::Attested => 0,
        HealthClass::Stale => 1,
        HealthClass::Tampered => 2,
        HealthClass::Unverified => 3,
    }
}

impl From<&FleetReport> for SweepSummary {
    fn from(report: &FleetReport) -> Self {
        let mut counts = [0usize; 4];
        let mut flagged = Vec::new();
        for health in &report.devices {
            counts[class_index(health.class)] += 1;
            if health.class != HealthClass::Attested {
                flagged.push((health.device, health.class));
            }
        }
        flagged.sort_by_key(|(id, _)| *id);
        SweepSummary {
            devices: report.devices.len(),
            counts,
            flagged,
        }
    }
}

/// Backend-independent health/ledger summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpsHealth {
    /// Devices the backend can reach (fleet size in-process; attached
    /// device-plane registrations on a gateway).
    pub devices: usize,
    /// Events recorded in the backend's ledger.
    pub ledger_events: usize,
    /// Phase of the backend's campaign slot.
    pub campaign: CampaignPhase,
}

/// The unified operator plane: sweeps, staged campaigns, and health
/// queries — one surface, two first-class backends ([`LocalOps`]
/// in-process, `eilid_net::RemoteOps` over the wire).
///
/// The campaign methods drive a single campaign slot through its
/// lifecycle: `begin → step* → report`, with `pause`/`resume` between
/// waves serialising through the same [`PausedCampaign`] byte record
/// both backends persist.
pub trait FleetOps {
    /// Runs one full attestation sweep and summarises per-class health.
    ///
    /// # Errors
    ///
    /// Backend failures only; per-device verification failures are
    /// *classifications*, not errors.
    fn sweep(&mut self) -> Result<SweepSummary, OpsError>;

    /// Runs one full *aggregated* attestation sweep: per-class verdicts
    /// identical to [`FleetOps::sweep`], but the evidence folds into
    /// one signed aggregate root per shard, so the operator verifies at
    /// most `SHARD_COUNT` roots and descends to per-device verdicts
    /// only for reported suspects.
    ///
    /// # Errors
    ///
    /// [`OpsError::Backend`] when the backend cannot aggregate (the
    /// default); transport failures otherwise.
    fn sweep_aggregated(&mut self) -> Result<AggSweepSummary, OpsError> {
        Err(OpsError::Backend(
            "aggregated sweep unsupported by this backend".to_string(),
        ))
    }

    /// Loads and validates a campaign into the backend's campaign slot.
    /// Nothing is rolled out yet.
    ///
    /// # Errors
    ///
    /// [`OpsError::CampaignActive`] if a campaign is already loaded;
    /// [`OpsError::Fleet`] for invalid configs or unknown cohorts.
    fn campaign_begin(&mut self, config: &CampaignConfig) -> Result<(), OpsError>;

    /// Rolls out exactly one wave of the loaded campaign.
    ///
    /// # Errors
    ///
    /// [`OpsError::NoCampaign`] with nothing loaded; backend transport
    /// failures otherwise.
    fn campaign_step(&mut self) -> Result<CampaignStatus, OpsError>;

    /// Phase of the campaign slot.
    ///
    /// # Errors
    ///
    /// Backend failures only.
    fn campaign_status(&mut self) -> Result<CampaignPhase, OpsError>;

    /// Pauses the loaded campaign between waves into the serialised
    /// [`PausedCampaign`] byte record — the caller owns persistence.
    ///
    /// # Errors
    ///
    /// [`OpsError::NoCampaign`] with nothing running.
    fn campaign_pause(&mut self) -> Result<Vec<u8>, OpsError>;

    /// Resumes a campaign from [`PausedCampaign`] bytes (from
    /// [`FleetOps::campaign_pause`], possibly persisted across a
    /// process or gateway restart).
    ///
    /// # Errors
    ///
    /// [`OpsError::CampaignActive`] if a campaign is already loaded;
    /// [`OpsError::Fleet`] for malformed bytes.
    fn campaign_resume(&mut self, paused: &[u8]) -> Result<(), OpsError>;

    /// The finished campaign's report.
    ///
    /// # Errors
    ///
    /// [`OpsError::NoCampaign`] unless a loaded campaign has finished.
    fn campaign_report(&mut self) -> Result<CampaignReport, OpsError>;

    /// Backend health: reachable devices, ledger size, campaign phase.
    ///
    /// # Errors
    ///
    /// Backend failures only.
    fn health(&mut self) -> Result<OpsHealth, OpsError>;

    /// Convenience: `begin`, step every wave, return the report. The
    /// campaign slot is left in the `Finished` phase.
    ///
    /// # Errors
    ///
    /// As for the individual lifecycle calls.
    fn run_campaign(&mut self, config: &CampaignConfig) -> Result<CampaignReport, OpsError> {
        self.campaign_begin(config)?;
        while self.campaign_step()? != CampaignStatus::Finished {}
        self.campaign_report()
    }
}

/// The in-process [`FleetOps`] backend: a [`Fleet`] and its [`Verifier`]
/// borrowed for the operator session. Campaign state (the slot) lives in
/// this struct; paused campaigns are handed to the caller as bytes.
#[derive(Debug)]
pub struct LocalOps<'a> {
    fleet: &'a mut Fleet,
    verifier: &'a mut Verifier,
    run: Option<CampaignRun>,
}

impl<'a> LocalOps<'a> {
    /// Wraps the fleet and verifier as an operator-plane backend.
    pub fn new(fleet: &'a mut Fleet, verifier: &'a mut Verifier) -> Self {
        LocalOps {
            fleet,
            verifier,
            run: None,
        }
    }
}

impl FleetOps for LocalOps<'_> {
    fn sweep(&mut self) -> Result<SweepSummary, OpsError> {
        let report = self.verifier.sweep(self.fleet);
        Ok(SweepSummary::from(&report))
    }

    fn sweep_aggregated(&mut self) -> Result<AggSweepSummary, OpsError> {
        Ok(self.verifier.sweep_aggregated(self.fleet))
    }

    fn campaign_begin(&mut self, config: &CampaignConfig) -> Result<(), OpsError> {
        if self.run.is_some() {
            return Err(OpsError::CampaignActive);
        }
        let campaign = Campaign::new(config.clone())?;
        self.run = Some(campaign.begin(self.fleet, self.verifier)?);
        Ok(())
    }

    fn campaign_step(&mut self) -> Result<CampaignStatus, OpsError> {
        let run = self.run.as_mut().ok_or(OpsError::NoCampaign)?;
        Ok(run.step(self.fleet, self.verifier)?)
    }

    fn campaign_status(&mut self) -> Result<CampaignPhase, OpsError> {
        Ok(match &self.run {
            None => CampaignPhase::Idle,
            Some(run) if run.is_finished() => CampaignPhase::Finished,
            Some(run) => CampaignPhase::InProgress {
                next_wave: run.wave_cursor(),
            },
        })
    }

    fn campaign_pause(&mut self) -> Result<Vec<u8>, OpsError> {
        let run = self.run.take().ok_or(OpsError::NoCampaign)?;
        // A finished run has nothing left to pause — keep it loaded so
        // its report stays readable, exactly as the gateway backend
        // refuses (backends must not drift on lifecycle semantics).
        if run.is_finished() {
            self.run = Some(run);
            return Err(OpsError::NoCampaign);
        }
        Ok(run.pause().to_bytes())
    }

    fn campaign_resume(&mut self, paused: &[u8]) -> Result<(), OpsError> {
        if self.run.is_some() {
            return Err(OpsError::CampaignActive);
        }
        let paused = PausedCampaign::from_bytes(paused)?;
        self.run = Some(Campaign::resume(paused));
        Ok(())
    }

    fn campaign_report(&mut self) -> Result<CampaignReport, OpsError> {
        self.run
            .as_ref()
            .and_then(CampaignRun::report)
            .ok_or(OpsError::NoCampaign)
    }

    fn health(&mut self) -> Result<OpsHealth, OpsError> {
        let campaign = self.campaign_status()?;
        Ok(OpsHealth {
            devices: self.fleet.len(),
            ledger_events: self.fleet.ledger().events().len(),
            campaign,
        })
    }
}

// --- cluster merge helpers -------------------------------------------------
//
// A multi-gateway cluster runs each operator call on every gateway's
// partition of the fleet and folds the partial results back into the
// backend-independent summary types above. The folds live here — next
// to the types they fold — so `eilid_net::ClusterOps` and the test
// suite share one definition of "what the union looks like".

/// Folds per-gateway sweep summaries into the union fleet's summary:
/// device and per-class counts add; flagged lists concatenate and
/// re-sort into global id order. Merging the partition of a fleet
/// equals sweeping the whole fleet through one backend.
pub fn merge_sweeps(parts: &[SweepSummary]) -> SweepSummary {
    let mut merged = SweepSummary {
        devices: 0,
        counts: [0; 4],
        flagged: Vec::new(),
    };
    for part in parts {
        merged.devices += part.devices;
        for (slot, count) in merged.counts.iter_mut().zip(part.counts) {
            *slot += count;
        }
        merged.flagged.extend(part.flagged.iter().copied());
    }
    merged.flagged.sort_by_key(|(id, _)| *id);
    merged
}

/// Folds per-gateway *aggregated* sweep summaries into the cluster's:
/// verdict summaries fold through [`merge_sweeps`]; shard-root lists
/// concatenate in the caller's gateway placement order (shards overlap
/// across gateways — each gateway aggregates its own partition of every
/// shard); root-verification and short-circuit counters add; the merged
/// fleet root re-folds the concatenated shard roots through `provider`.
/// The merged epoch is the newest partition's (each gateway draws from
/// its own reserved nonce block).
pub fn merge_agg_sweeps(
    provider: &dyn eilid_casu::CryptoProvider,
    parts: &[AggSweepSummary],
) -> AggSweepSummary {
    let summaries: Vec<SweepSummary> = parts.iter().map(|part| part.summary.clone()).collect();
    let shard_roots: Vec<(u16, [u8; 32])> = parts
        .iter()
        .flat_map(|part| part.shard_roots.iter().copied())
        .collect();
    let fleet_root = eilid_casu::agg::fleet_root(provider, &shard_roots);
    AggSweepSummary {
        summary: merge_sweeps(&summaries),
        epoch: parts.iter().map(|part| part.epoch).max().unwrap_or(0),
        shards: parts.iter().map(|part| part.shards).sum(),
        roots_verified: parts.iter().map(|part| part.roots_verified).sum(),
        short_circuited: parts.iter().map(|part| part.short_circuited).sum(),
        shard_roots,
        fleet_root,
    }
}

/// Folds per-gateway campaign reports, wave-aligned: wave `i` of the
/// merged report sums the size/updated/failure counts of every part's
/// wave `i` (parts halted early simply stop contributing), and the
/// quarantine/rollback id lists concatenate into global id order.
///
/// The outcome folds conservatively: the merge is `Completed` (with the
/// summed update count) only when *every* part completed; one halted
/// gateway halts the merged outcome at the earliest halted wave, with
/// that wave's aggregate failure rate and the summed rollback count.
/// Returns `None` for an empty slice — there is no empty campaign.
pub fn merge_reports(parts: &[CampaignReport]) -> Option<CampaignReport> {
    if parts.is_empty() {
        return None;
    }
    let wave_count = parts.iter().map(|part| part.waves.len()).max().unwrap_or(0);
    let mut waves = Vec::with_capacity(wave_count);
    for wave in 0..wave_count {
        let mut merged = WaveReport {
            wave,
            size: 0,
            updated: 0,
            failures: 0,
        };
        for part in parts {
            if let Some(report) = part.waves.iter().find(|w| w.wave == wave) {
                merged.size += report.size;
                merged.updated += report.updated;
                merged.failures += report.failures;
            }
        }
        waves.push(merged);
    }

    let halted_at = parts
        .iter()
        .filter_map(|part| match part.outcome {
            CampaignOutcome::HaltedAndRolledBack { wave, .. } => Some(wave),
            CampaignOutcome::Completed { .. } => None,
        })
        .min();
    let outcome = match halted_at {
        None => CampaignOutcome::Completed {
            updated: parts
                .iter()
                .map(|part| match part.outcome {
                    CampaignOutcome::Completed { updated } => updated,
                    CampaignOutcome::HaltedAndRolledBack { .. } => 0,
                })
                .sum(),
        },
        Some(wave) => {
            let (size, failures) = waves
                .get(wave)
                .map(|w| (w.size, w.failures))
                .unwrap_or((0, 0));
            CampaignOutcome::HaltedAndRolledBack {
                wave,
                failure_rate: if size == 0 {
                    0.0
                } else {
                    failures as f64 / size as f64
                },
                rolled_back: parts
                    .iter()
                    .map(|part| match part.outcome {
                        CampaignOutcome::HaltedAndRolledBack { rolled_back, .. } => rolled_back,
                        CampaignOutcome::Completed { .. } => 0,
                    })
                    .sum(),
            }
        }
    };

    let mut quarantined: Vec<DeviceId> = parts
        .iter()
        .flat_map(|part| part.quarantined.iter().copied())
        .collect();
    quarantined.sort_unstable();
    let mut rollback_incomplete: Vec<DeviceId> = parts
        .iter()
        .flat_map(|part| part.rollback_incomplete.iter().copied())
        .collect();
    rollback_incomplete.sort_unstable();

    Some(CampaignReport {
        outcome,
        waves,
        quarantined,
        rollback_incomplete,
    })
}

/// Folds per-gateway campaign phases into the cluster's phase: the
/// least-advanced gateway wins, so a cluster driver keeps stepping
/// until *every* partition finished. `InProgress` (at the minimum next
/// wave) dominates `Paused`, which dominates `Finished`; a cluster is
/// `Idle` only when every gateway is.
pub fn merge_phases(parts: &[CampaignPhase]) -> CampaignPhase {
    let min_wave = |running: bool| {
        parts
            .iter()
            .filter_map(|phase| match phase {
                CampaignPhase::InProgress { next_wave } if running => Some(*next_wave),
                CampaignPhase::Paused { next_wave } if !running => Some(*next_wave),
                _ => None,
            })
            .min()
            .unwrap_or(0)
    };
    if parts
        .iter()
        .any(|phase| matches!(phase, CampaignPhase::InProgress { .. }))
    {
        CampaignPhase::InProgress {
            next_wave: min_wave(true),
        }
    } else if parts
        .iter()
        .any(|phase| matches!(phase, CampaignPhase::Paused { .. }))
    {
        CampaignPhase::Paused {
            next_wave: min_wave(false),
        }
    } else if parts
        .iter()
        .any(|phase| matches!(phase, CampaignPhase::Finished))
    {
        CampaignPhase::Finished
    } else {
        CampaignPhase::Idle
    }
}

/// Folds per-gateway health summaries: reachable devices and ledger
/// events add; the campaign phase folds through [`merge_phases`].
pub fn merge_health(parts: &[OpsHealth]) -> OpsHealth {
    let phases: Vec<CampaignPhase> = parts.iter().map(|health| health.campaign).collect();
    OpsHealth {
        devices: parts.iter().map(|health| health.devices).sum(),
        ledger_events: parts.iter().map(|health| health.ledger_events).sum(),
        campaign: merge_phases(&phases),
    }
}
