//! Fleet health aggregation and the event ledger.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use eilid_casu::{AttestError, MeasurementScheme, UpdateError, Violation};
use eilid_workloads::WorkloadId;

use crate::device::DeviceId;

/// Coarse health classification of one device after an attestation sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthClass {
    /// Report verified against the cohort's current golden measurement.
    Attested,
    /// Report verified, but against a *previous* firmware version — the
    /// device missed an update (or was rolled back).
    Stale,
    /// Report verified cryptographically but the measurement matches no
    /// known firmware version: the device's program memory was tampered
    /// with.
    Tampered,
    /// The report failed cryptographic verification (wrong key, mangled
    /// transport, replay).
    Unverified,
}

impl fmt::Display for HealthClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            HealthClass::Attested => "attested",
            HealthClass::Stale => "stale",
            HealthClass::Tampered => "tampered",
            HealthClass::Unverified => "unverified",
        };
        write!(f, "{name}")
    }
}

/// Per-device result of one attestation sweep.
#[derive(Debug, Clone)]
pub struct DeviceHealth {
    /// The attested device.
    pub device: DeviceId,
    /// The device's firmware cohort.
    pub cohort: WorkloadId,
    /// Health classification.
    pub class: HealthClass,
    /// The verification error, for unverified reports.
    pub error: Option<AttestError>,
}

/// Aggregated result of one batched attestation sweep.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-device health, in device order.
    pub devices: Vec<DeviceHealth>,
    /// Requested device ids that matched no fleet device — these were
    /// never challenged, so "no bad entries" must not be read as
    /// "healthy" for them.
    pub missing: Vec<DeviceId>,
    /// Wall-clock time for the sweep (challenge, report, verify).
    pub elapsed: Duration,
    /// Worker threads that actually processed devices (≤ the fleet's
    /// configured thread count; subset sweeps may use fewer shards).
    pub threads: usize,
    /// Measurement scheme the sweep's reports were verified under.
    pub scheme: MeasurementScheme,
}

impl FleetReport {
    /// Number of devices in `class`.
    pub fn count(&self, class: HealthClass) -> usize {
        self.devices.iter().filter(|d| d.class == class).count()
    }

    /// Devices (ids) in `class`.
    pub fn devices_in(&self, class: HealthClass) -> Vec<DeviceId> {
        self.devices
            .iter()
            .filter(|d| d.class == class)
            .map(|d| d.device)
            .collect()
    }

    /// Attestation throughput in devices verified per second.
    pub fn devices_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return f64::INFINITY;
        }
        self.devices.len() as f64 / secs
    }

    /// Per-cohort counts of each health class.
    pub fn by_cohort(&self) -> BTreeMap<WorkloadId, BTreeMap<HealthClass, usize>> {
        let mut out: BTreeMap<WorkloadId, BTreeMap<HealthClass, usize>> = BTreeMap::new();
        for device in &self.devices {
            *out.entry(device.cohort)
                .or_default()
                .entry(device.class)
                .or_default() += 1;
        }
        out
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet attestation sweep [{}]: {} devices in {:.3}s on {} thread(s) ({:.0} devices/s)",
            self.scheme,
            self.devices.len(),
            self.elapsed.as_secs_f64(),
            self.threads,
            self.devices_per_second(),
        )?;
        for class in [
            HealthClass::Attested,
            HealthClass::Stale,
            HealthClass::Tampered,
            HealthClass::Unverified,
        ] {
            let count = self.count(class);
            if count > 0 {
                writeln!(f, "  {class:<10} {count}")?;
            }
        }
        if !self.missing.is_empty() {
            writeln!(
                f,
                "  missing    {} (unknown ids, never challenged)",
                self.missing.len()
            )?;
        }
        Ok(())
    }
}

/// One entry in the fleet's append-only event ledger.
#[derive(Debug, Clone)]
pub enum LedgerEvent {
    /// A device was enrolled into the fleet.
    Enrolled {
        /// The device.
        device: DeviceId,
        /// Its firmware cohort.
        cohort: WorkloadId,
    },
    /// A device's monitor detected a violation; the hardware reset it.
    ViolationReset {
        /// The device.
        device: DeviceId,
        /// The detected violation.
        violation: Violation,
    },
    /// A previously reset device completed a run again.
    Recovered {
        /// The device.
        device: DeviceId,
    },
    /// An authenticated update was applied on a device.
    UpdateApplied {
        /// The device.
        device: DeviceId,
        /// The update's freshness nonce.
        nonce: u64,
    },
    /// A device rejected an update request.
    UpdateRejected {
        /// The device.
        device: DeviceId,
        /// Why the device rejected it.
        error: UpdateError,
    },
    /// A device failed the post-update health probe.
    ProbeFailed {
        /// The device.
        device: DeviceId,
    },
    /// A campaign wave finished.
    WaveCompleted {
        /// Wave index within its campaign.
        wave: usize,
        /// Devices updated in the wave.
        updated: usize,
        /// Devices whose rollout failed (update rejected or post-update
        /// health check failed; see `UpdateRejected`/`ProbeFailed`).
        failures: usize,
    },
    /// A campaign halted and rolled back.
    CampaignHalted {
        /// Wave index that tripped the halt.
        wave: usize,
        /// Observed post-update failure rate.
        failure_rate: f64,
    },
    /// A device was rolled back to its pre-campaign firmware, verified
    /// by measurement.
    RolledBack {
        /// The device.
        device: DeviceId,
    },
    /// A rollback was applied but the device's post-rollback measurement
    /// does not match its pre-campaign state (e.g. the bad firmware
    /// corrupted memory outside the patched range before its violation
    /// reset). The device needs operator attention; sweeps will keep
    /// flagging it.
    RollbackIncomplete {
        /// The device.
        device: DeviceId,
    },
    /// An attestation sweep flagged a device.
    AttestationFlagged {
        /// The device.
        device: DeviceId,
        /// The health class it was flagged with.
        class: HealthClass,
    },
}

/// Append-only record of fleet lifecycle events.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    events: Vec<LedgerEvent>,
}

impl Ledger {
    /// Appends an event.
    pub fn record(&mut self, event: LedgerEvent) {
        self.events.push(event);
    }

    /// All recorded events, oldest first.
    pub fn events(&self) -> &[LedgerEvent] {
        &self.events
    }

    /// Number of violation resets recorded for `device`.
    pub fn violation_resets(&self, device: DeviceId) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, LedgerEvent::ViolationReset { device: d, .. } if *d == device))
            .count()
    }

    /// Total violation resets across the fleet.
    pub fn total_violation_resets(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, LedgerEvent::ViolationReset { .. }))
            .count()
    }

    /// Devices recorded as recovered after a violation reset.
    pub fn recovered_devices(&self) -> Vec<DeviceId> {
        self.events
            .iter()
            .filter_map(|e| match e {
                LedgerEvent::Recovered { device } => Some(*device),
                _ => None,
            })
            .collect()
    }

    /// Devices with more violation resets than recoveries — i.e. a reset
    /// that has not yet been followed by a completed run. Computed in one
    /// pass over the ledger.
    pub fn pending_recoveries(&self) -> std::collections::BTreeSet<DeviceId> {
        let mut balance: std::collections::BTreeMap<DeviceId, i64> =
            std::collections::BTreeMap::new();
        for event in &self.events {
            match event {
                LedgerEvent::ViolationReset { device, .. } => {
                    *balance.entry(*device).or_default() += 1;
                }
                LedgerEvent::Recovered { device } => {
                    *balance.entry(*device).or_default() -= 1;
                }
                _ => {}
            }
        }
        balance
            .into_iter()
            .filter_map(|(device, count)| (count > 0).then_some(device))
            .collect()
    }
}
