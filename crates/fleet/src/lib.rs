//! # eilid-fleet — fleet-scale orchestration for EILID devices
//!
//! EILID/CASU target deployments of *many* low-end devices, but the rest
//! of this workspace simulates one MSP430 at a time. This crate adds the
//! verifier-side fleet layer:
//!
//! * [`Fleet`] / [`FleetBuilder`] — spawns N concurrent simulated EILID
//!   devices with heterogeneous firmware (the seven
//!   [`eilid_workloads`] applications) and per-device keys derived from a
//!   single fleet root key ([`eilid_casu::DeviceKey::derive`]). Device
//!   construction instruments each distinct firmware once and clones the
//!   prototype, so spinning up thousands of devices stays cheap.
//! * [`Verifier`] — issues batched attestation challenges across the
//!   fleet, verifies the reports on a multi-threaded scheduler
//!   (`std::thread::scope` + per-worker shards, no async runtime) and
//!   aggregates per-device health into a [`FleetReport`]. Sweep state is
//!   sharded by `device_id % threads`, and each shard caches the device
//!   keys it has derived, so key derivation happens once per device ever
//!   rather than once per sweep.
//! * incremental measurement — by default
//!   ([`eilid_casu::MeasurementScheme::Merkle`]) devices answer
//!   challenges from an [`eilid_casu::IncrementalMeasurer`]: a chunked
//!   Merkle tree over PMEM kept coherent by the simulated bus's
//!   dirty-granule tracking, so a sweep over a clean fleet re-hashes
//!   nothing and a patched device re-hashes only the patched leaves.
//!   [`FleetBuilder::measurement`] selects the flat SHA-256 scheme for
//!   comparison benches and legacy compatibility.
//! * [`Campaign`] — drives staged OTA rollouts (canary wave → full wave)
//!   through the authenticated-update protocol
//!   ([`eilid_casu::UpdateAuthority`] / [`eilid_casu::UpdateEngine`]),
//!   with automatic halt-and-rollback when a wave's post-update health
//!   check fails beyond a configured threshold, and per-device rollback
//!   of the stray probe failures in waves that pass it.
//! * violation telemetry — devices that trip the
//!   [`eilid_casu::CasuMonitor`] report their
//!   [`eilid_casu::Violation`] upstream; the fleet [`Ledger`] records the
//!   reset and subsequent recovery.
//!
//! # Threat model
//!
//! The *verifier* (and everything in this crate that runs on it: root
//! key, update authority, golden images) is trusted. The *transport* is
//! attacker-controlled: reports and update requests may be dropped,
//! replayed or mangled, which the MAC/nonce checks in [`eilid_casu`]
//! must catch. *Devices* may be compromised up to the paper's threat
//! model — software adversaries are contained by CASU/EILID, and a
//! physically tampered device is expected to be *flagged* by
//! attestation, not prevented.
//!
//! # Examples
//!
//! ```
//! use eilid_casu::DeviceKey;
//! use eilid_fleet::{FleetBuilder, HealthClass};
//!
//! let root = DeviceKey::new(b"fleet-root-key-0123456789abcdef")?;
//! let (mut fleet, mut verifier) = FleetBuilder::new(root)
//!     .devices(16)
//!     .threads(2)
//!     .build()?;
//!
//! let report = verifier.sweep(&mut fleet);
//! assert_eq!(report.count(HealthClass::Attested), 16);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// Unsafe code is denied crate-wide; the single, documented exception is
// the lifetime-erasure in `pool::WorkerPool::scope`, which re-creates
// `std::thread::scope`'s join guarantee on persistent worker threads.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod device;
pub mod error;
pub mod exec;
pub mod fixtures;
pub mod fleet;
pub mod ops;
pub mod pool;
pub mod report;
pub mod verifier;

pub use campaign::{
    partition_waves, Campaign, CampaignConfig, CampaignOutcome, CampaignReport, CampaignRun,
    CampaignStatus, CohortInfo, LocalExecutor, PausedCampaign, PreUpdateSnapshot, RollbackOutcome,
    WaveExecutor, WaveReport, WaveRollout, WaveSpec,
};
pub use device::{DeviceId, SimDevice};
pub use eilid_casu::MeasurementScheme;
pub use error::FleetError;
pub use fleet::{Fleet, FleetBuilder, SliceReport};
pub use ops::{
    merge_agg_sweeps, merge_health, merge_phases, merge_reports, merge_sweeps, AggSweepSummary,
    CampaignPhase, FleetOps, LocalOps, OpsError, OpsHealth, SweepSummary,
};
pub use pool::{PoolBusy, WorkerPool};
pub use report::{DeviceHealth, FleetReport, HealthClass, Ledger, LedgerEvent};
pub use verifier::{CohortSnapshot, ServiceSnapshot, Verifier, SHARD_COUNT};
