//! Multi-threaded work scheduling over device slices.
//!
//! The fleet's workloads are embarrassingly parallel (per-device
//! attestation, per-device simulation slices), so a scoped-thread
//! chunked map is all the scheduler we need — no async runtime, no work
//! stealing. Results come back in input order.

use std::thread;

/// Maps `f` over `items` on up to `threads` worker threads, preserving
/// input order in the result.
///
/// With `threads <= 1` (or a single item) the map runs inline, which
/// keeps single-core environments and tests deterministic and
/// profiler-friendly.
pub fn parallel_map_mut<I, T, F>(items: &mut [I], threads: usize, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(&mut I) -> T + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.clamp(1, items.len());
    if threads == 1 {
        return items.iter_mut().map(&f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk_size)
            .map(|chunk| scope.spawn(|| chunk.iter_mut().map(&f).collect::<Vec<T>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("fleet worker thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_mutates() {
        let mut items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map_mut(&mut items, 4, |x| {
            *x *= 2;
            *x
        });
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<u64>>());
        assert_eq!(items[99], 198);
    }

    #[test]
    fn handles_empty_and_single_thread() {
        let mut empty: Vec<u8> = vec![];
        assert!(parallel_map_mut(&mut empty, 4, |x| *x).is_empty());
        let mut one = vec![5u8];
        assert_eq!(parallel_map_mut(&mut one, 0, |x| *x + 1), vec![6]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let mut items = vec![1u8, 2, 3];
        assert_eq!(parallel_map_mut(&mut items, 64, |x| *x), vec![1, 2, 3]);
    }
}
