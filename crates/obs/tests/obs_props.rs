//! Property tests for the telemetry primitives: histogram merges form
//! a commutative monoid (the guarantee cluster aggregation leans on),
//! quantile readout agrees with a sorted-vec oracle to within one
//! bucket bound, and the trace ring's overwrite/dropped accounting is
//! exact under concurrent writers.

use eilid_obs::{
    bucket_of, bucket_upper_bound, Histogram, HistogramSnapshot, MetricsRegistry, RegistrySnapshot,
    TraceRing,
};
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 0..64)
}

fn snapshot_of(counters: &[(u8, u64)], hist_values: &[u64]) -> RegistrySnapshot {
    let registry = MetricsRegistry::new();
    for (which, value) in counters {
        registry
            .counter(&format!("eilid_c{}_total", which % 4))
            .add(*value % 1_000_000);
    }
    let h = registry.histogram("eilid_h_us");
    for &v in hist_values {
        h.record(v);
    }
    registry.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Histogram merge is associative and commutative, with the empty
    // snapshot as identity — cluster merges are order-independent.
    #[test]
    fn histogram_merge_is_a_commutative_monoid(
        a in arb_values(),
        b in arb_values(),
        c in arb_values(),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        prop_assert_eq!(merged(&merged(&ha, &hb), &hc), merged(&ha, &merged(&hb, &hc)));
        prop_assert_eq!(merged(&ha, &hb), merged(&hb, &ha));
        prop_assert_eq!(merged(&ha, &HistogramSnapshot::empty()), ha.clone());
        // Merging snapshots equals recording the concatenation.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged(&ha, &hb), hist_of(&all));
    }

    // Registry-level merge inherits the same algebra, and merged
    // counter totals equal the per-snapshot sums.
    #[test]
    fn registry_merge_is_associative_and_sums_counters(
        ca in proptest::collection::vec((any::<u8>(), any::<u64>()), 0..8),
        cb in proptest::collection::vec((any::<u8>(), any::<u64>()), 0..8),
        va in arb_values(),
        vb in arb_values(),
    ) {
        let sa = snapshot_of(&ca, &va);
        let sb = snapshot_of(&cb, &vb);
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.counter_total(), sa.counter_total() + sb.counter_total());
        let mut with_empty = sa.clone();
        with_empty.merge(&RegistrySnapshot::empty());
        prop_assert_eq!(with_empty, sa);
    }

    // Quantiles are monotone in q and agree with a sorted-vec oracle
    // to within the containing bucket's bounds: the readout is the
    // upper bound of the oracle value's bucket, so it never
    // under-reports and overshoots by less than one power of two.
    #[test]
    fn quantiles_match_sorted_vec_oracle(values in proptest::collection::vec(any::<u64>(), 1..256)) {
        let snap = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let mut last = 0u64;
        for q in [0.0, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0] {
            let got = snap.quantile(q);
            prop_assert!(got >= last, "quantile must be monotone in q");
            last = got;
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let oracle = sorted[rank - 1];
            prop_assert_eq!(got, bucket_upper_bound(bucket_of(oracle)));
            prop_assert!(got >= oracle);
            if oracle > 0 {
                prop_assert!((got >> 1) < oracle, "within one power-of-two of the oracle");
            }
        }
    }

    // Overwrite-oldest: a single writer's ring retains exactly the
    // last `capacity` events and drops the rest, counted exactly.
    #[test]
    fn ring_retains_newest_events(
        total in 0usize..512,
        capacity in 1usize..64,
    ) {
        let ring = TraceRing::new(capacity);
        let capacity = ring.capacity();
        for i in 0..total {
            ring.record(1, 1, i as u64, 0);
        }
        prop_assert_eq!(ring.appended(), total as u64);
        prop_assert_eq!(ring.dropped(), (total.saturating_sub(capacity)) as u64);
        let events = ring.snapshot();
        prop_assert_eq!(events.len(), total.min(capacity));
        let first = total.saturating_sub(capacity) as u64;
        for (offset, event) in events.iter().enumerate() {
            prop_assert_eq!(event.seq, first + offset as u64);
            prop_assert_eq!(event.a, first + offset as u64);
        }
    }

    // Concurrent writers: `appended` and `dropped` stay exact (they
    // derive from one fetch-add), and a quiesced snapshot holds the
    // newest `capacity` sequence numbers with no tears.
    #[test]
    fn ring_dropped_count_is_exact_under_concurrent_writers(
        writers in 2usize..5,
        per_writer in 1usize..200,
        capacity in 1usize..64,
    ) {
        let ring = TraceRing::new(capacity);
        let capacity = ring.capacity() as u64;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..per_writer {
                        ring.record(w as u8, i as u16, (w * per_writer + i) as u64, 0);
                    }
                });
            }
        });
        let total = (writers * per_writer) as u64;
        prop_assert_eq!(ring.appended(), total);
        prop_assert_eq!(ring.dropped(), total.saturating_sub(capacity));
        let events = ring.snapshot();
        prop_assert_eq!(events.len() as u64, total.min(capacity));
        for (offset, event) in events.iter().enumerate() {
            prop_assert_eq!(event.seq, total.saturating_sub(capacity) + offset as u64);
            // Payload round-trips intact: `a` encodes the writer and
            // iteration that produced the event.
            let w = event.category as usize;
            prop_assert!(w < writers);
            prop_assert_eq!(event.a, (w * per_writer) as u64 + u64::from(event.code));
        }
    }
}
