//! Snapshot renderers: Prometheus-style text exposition and the
//! compact JSON form that crosses the wire, plus the hand-rolled JSON
//! parser the cluster merge path uses (the workspace vendors no JSON
//! crate — see `vendor/README.md`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::{bucket_upper_bound, HistogramSnapshot, RegistrySnapshot, HIST_BUCKETS};

/// Error from parsing a JSON snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObsError {
    /// Byte offset the parse failed at.
    pub at: usize,
    /// What was expected or wrong.
    pub reason: &'static str,
}

impl std::fmt::Display for ObsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bad metrics snapshot at byte {}: {}",
            self.at, self.reason
        )
    }
}

impl std::error::Error for ObsError {}

impl RegistrySnapshot {
    /// Prometheus-style text exposition: one `# TYPE` line per metric,
    /// counters and gauges as bare samples, histograms as cumulative
    /// `_bucket{le="..."}` samples (non-empty buckets only, plus the
    /// mandatory `+Inf`) with `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, hist) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (bucket, cell) in hist.buckets.iter().enumerate() {
                if *cell == 0 {
                    continue;
                }
                cumulative = cumulative.saturating_add(*cell);
                let le = bucket_upper_bound(bucket);
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            let _ = writeln!(out, "{name}_sum {}", hist.sum);
            let _ = writeln!(out, "{name}_count {}", hist.count);
        }
        out
    }

    /// Compact JSON snapshot (what an `OpMetricsResult` frame
    /// carries). Metric entries are `["name", value]` pairs sorted by
    /// name; histogram buckets are sparse `[bucket, count]` pairs.
    /// [`RegistrySnapshot::from_json`] is the exact inverse.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"v\":1,\"counters\":[");
        let mut first = true;
        for (name, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "[\"{}\",{}]", escape_json(name), value);
        }
        out.push_str("],\"gauges\":[");
        first = true;
        for (name, value) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "[\"{}\",{}]", escape_json(name), value);
        }
        out.push_str("],\"histograms\":[");
        first = true;
        for (name, hist) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "[\"{}\",{{\"count\":{},\"sum\":{},\"buckets\":[",
                escape_json(name),
                hist.count,
                hist.sum
            );
            let mut first_bucket = true;
            for (bucket, cell) in hist.buckets.iter().enumerate() {
                if *cell == 0 {
                    continue;
                }
                if !first_bucket {
                    out.push(',');
                }
                first_bucket = false;
                let _ = write!(out, "[{bucket},{cell}]");
            }
            out.push_str("]}]");
        }
        out.push_str("]}");
        out
    }

    /// Parses a snapshot previously rendered by
    /// [`RegistrySnapshot::to_json`] (whitespace-tolerant).
    ///
    /// # Errors
    ///
    /// [`ObsError`] with the failing byte offset on any structural
    /// mismatch — the input is wire data, i.e. attacker-adjacent, so
    /// every length and discriminant is checked and nothing panics.
    pub fn from_json(text: &str) -> Result<RegistrySnapshot, ObsError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.expect(b'{')?;
        p.expect_key("v")?;
        if p.number()? != 1 {
            return Err(p.fail("unsupported snapshot version"));
        }
        p.expect(b',')?;
        p.expect_key("counters")?;
        let counters = p.pair_list()?;
        p.expect(b',')?;
        p.expect_key("gauges")?;
        let gauges = p.pair_list()?;
        p.expect(b',')?;
        p.expect_key("histograms")?;
        let histograms = p.histogram_list()?;
        p.expect(b'}')?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.fail("trailing bytes after snapshot"));
        }
        Ok(RegistrySnapshot {
            counters,
            gauges,
            histograms,
        })
    }
}

fn escape_json(name: &str) -> String {
    // Metric names follow the documented [a-z0-9_] scheme, but the
    // renderer still escapes so an odd name can never produce invalid
    // JSON.
    let mut out = String::with_capacity(name.len());
    for ch in name.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn fail(&self, reason: &'static str) -> ObsError {
        ObsError {
            at: self.pos,
            reason,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), ObsError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail("unexpected byte"))
        }
    }

    /// Consumes `"key":`.
    fn expect_key(&mut self, key: &str) -> Result<(), ObsError> {
        let got = self.string()?;
        if got != key {
            return Err(self.fail("unexpected object key"));
        }
        self.expect(b':')
    }

    fn string(&mut self) -> Result<String, ObsError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&byte) = self.bytes.get(self.pos) else {
                return Err(self.fail("unterminated string"));
            };
            self.pos += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.fail("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        _ => return Err(self.fail("unsupported escape")),
                    }
                }
                b if b < 0x20 => return Err(self.fail("control byte in string")),
                b => {
                    // Multi-byte UTF-8 passes through byte-wise; the
                    // input is a &str so the sequence is valid.
                    out.push(b as char);
                    if b >= 0x80 {
                        // Re-assemble the code point properly: back up
                        // and take the full UTF-8 sequence from the
                        // source string.
                        out.pop();
                        let start = self.pos - 1;
                        let text = std::str::from_utf8(&self.bytes[start..])
                            .map_err(|_| self.fail("invalid utf-8"))?;
                        let ch = text.chars().next().ok_or(self.fail("empty string tail"))?;
                        out.push(ch);
                        self.pos = start + ch.len_utf8();
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, ObsError> {
        self.skip_ws();
        let start = self.pos;
        let mut value: u64 = 0;
        while let Some(&byte) = self.bytes.get(self.pos) {
            if !byte.is_ascii_digit() {
                break;
            }
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add(u64::from(byte - b'0')))
                .ok_or(ObsError {
                    at: self.pos,
                    reason: "number out of range",
                })?;
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.fail("expected a number"));
        }
        Ok(value)
    }

    /// Parses `[["name",N],...]` into a name → value map.
    fn pair_list(&mut self) -> Result<BTreeMap<String, u64>, ObsError> {
        let mut out = BTreeMap::new();
        self.expect(b'[')?;
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            self.expect(b'[')?;
            let name = self.string()?;
            self.expect(b',')?;
            let value = self.number()?;
            self.expect(b']')?;
            out.insert(name, value);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(self.fail("expected ',' or ']'")),
            }
        }
    }

    /// Parses `[["name",{"count":..,"sum":..,"buckets":[[b,c],..]}],..]`.
    fn histogram_list(&mut self) -> Result<BTreeMap<String, HistogramSnapshot>, ObsError> {
        let mut out = BTreeMap::new();
        self.expect(b'[')?;
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            self.expect(b'[')?;
            let name = self.string()?;
            self.expect(b',')?;
            self.expect(b'{')?;
            self.expect_key("count")?;
            let count = self.number()?;
            self.expect(b',')?;
            self.expect_key("sum")?;
            let sum = self.number()?;
            self.expect(b',')?;
            self.expect_key("buckets")?;
            let mut hist = HistogramSnapshot::empty();
            hist.count = count;
            hist.sum = sum;
            self.expect(b'[')?;
            if self.peek() == Some(b']') {
                self.pos += 1;
            } else {
                loop {
                    self.expect(b'[')?;
                    let bucket = self.number()?;
                    self.expect(b',')?;
                    let cell = self.number()?;
                    self.expect(b']')?;
                    let bucket = usize::try_from(bucket)
                        .ok()
                        .filter(|b| *b < HIST_BUCKETS)
                        .ok_or(self.fail("bucket index out of range"))?;
                    hist.buckets[bucket] = cell;
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.fail("expected ',' or ']'")),
                    }
                }
            }
            self.expect(b'}')?;
            self.expect(b']')?;
            out.insert(name, hist);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(self.fail("expected ',' or ']'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, MetricsRegistry};

    fn sample() -> RegistrySnapshot {
        let registry = MetricsRegistry::new();
        registry.counter("eilid_a_total").add(5);
        registry.counter("eilid_b_total").add(0);
        registry.gauge("eilid_depth").set(9);
        let h = registry.histogram("eilid_pass_us");
        for v in [0u64, 1, 3, 100, 100_000] {
            h.record(v);
        }
        registry.snapshot()
    }

    #[test]
    fn json_round_trips() {
        let snap = sample();
        let json = snap.to_json();
        let parsed = RegistrySnapshot::from_json(&json).expect("own output parses");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = RegistrySnapshot::empty();
        let parsed = RegistrySnapshot::from_json(&snap.to_json()).expect("empty parses");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let json = sample().to_json().replace(',', " ,\n ");
        assert_eq!(RegistrySnapshot::from_json(&json).expect("ws ok"), sample());
    }

    #[test]
    fn malformed_json_dies_typed() {
        for bad in [
            "",
            "{",
            "{}",
            "{\"v\":2,\"counters\":[],\"gauges\":[],\"histograms\":[]}",
            "{\"v\":1,\"counters\":[[\"a\"]],\"gauges\":[],\"histograms\":[]}",
            "{\"v\":1,\"counters\":[],\"gauges\":[],\"histograms\":[[\"h\",{\"count\":1,\"sum\":1,\"buckets\":[[99,1]]}]]}",
            "{\"v\":1,\"counters\":[],\"gauges\":[],\"histograms\":[]}trailing",
            "{\"v\":1,\"counters\":[[\"a\",99999999999999999999999]],\"gauges\":[],\"histograms\":[]}",
        ] {
            assert!(
                RegistrySnapshot::from_json(bad).is_err(),
                "accepted malformed input: {bad}"
            );
        }
    }

    #[test]
    fn prometheus_text_has_required_shape() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE eilid_a_total counter"));
        assert!(text.contains("eilid_a_total 5"));
        assert!(text.contains("# TYPE eilid_depth gauge"));
        assert!(text.contains("# TYPE eilid_pass_us histogram"));
        assert!(text.contains("eilid_pass_us_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("eilid_pass_us_count 5"));
        // Cumulative bucket counts are nondecreasing.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= last, "bucket counts must be cumulative: {text}");
            last = count;
        }
    }

    #[test]
    fn histogram_snapshot_merge_matches_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for v in [1u64, 5, 9] {
            a.record(v);
            combined.record(v);
        }
        for v in [2u64, 1024] {
            b.record(v);
            combined.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, combined.snapshot());
    }
}
