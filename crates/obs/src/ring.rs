//! Bounded, lock-free event trace ring with overwrite-oldest
//! semantics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One structured trace event, read back from a [`TraceRing`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number (0 for the first event ever
    /// recorded).
    pub seq: u64,
    /// Coarse tick: milliseconds since the ring was created.
    pub tick_ms: u64,
    /// Event category (layer-level namespace, assigned by the
    /// instrumented crate).
    pub category: u8,
    /// Event code within the category.
    pub code: u16,
    /// First event argument (spans store elapsed microseconds here).
    pub a: u64,
    /// Second event argument.
    pub b: u64,
}

/// One ring slot, guarded by a per-slot sequence lock: `ver` is odd
/// while a writer is mid-store and `2 * seq + 2` once the event for
/// global sequence `seq` is fully written. Readers retry or skip on
/// mismatch — writers never wait.
#[derive(Debug)]
struct Slot {
    ver: AtomicU64,
    tick: AtomicU64,
    catcode: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            ver: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            catcode: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// A bounded ring buffer of [`TraceEvent`]s. Recording is wait-free
/// for writers (one atomic fetch-add to claim a sequence number, then
/// plain stores into the claimed slot) and never allocates; when the
/// ring is full the oldest event is overwritten and the
/// [`TraceRing::dropped`] counter — derived from the same fetch-add,
/// hence exact under any writer concurrency — accounts for it.
///
/// Readers ([`TraceRing::snapshot`]) validate each slot's sequence
/// lock and skip events a concurrent writer is mid-overwrite on, so a
/// snapshot is always structurally sound even while the hot path keeps
/// appending.
#[derive(Debug)]
pub struct TraceRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
    mask: u64,
    start: Instant,
}

impl TraceRing {
    /// A ring holding up to `capacity` events (rounded up to a power
    /// of two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(8).next_power_of_two();
        TraceRing {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
            mask: (capacity - 1) as u64,
            start: Instant::now(),
        }
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (monotonic).
    pub fn appended(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events overwritten before they could be read back: exactly
    /// `appended - capacity` once the ring has wrapped, 0 before.
    pub fn dropped(&self) -> u64 {
        self.appended().saturating_sub(self.slots.len() as u64)
    }

    /// Milliseconds since the ring was created (the coarse tick stamped
    /// into events).
    pub fn tick_ms(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Records one event; returns its sequence number.
    pub fn record(&self, category: u8, code: u16, a: u64, b: u64) -> u64 {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq & self.mask) as usize];
        // Per-slot seqlock: odd while writing, even (encoding seq)
        // once complete. With the capacity far above the writer count
        // a same-slot write race requires lapping the whole ring
        // mid-store; readers still detect the common interleavings via
        // the version check.
        slot.ver.store(seq * 2 + 1, Ordering::Release);
        slot.tick.store(self.tick_ms(), Ordering::Relaxed);
        slot.catcode.store(
            (u64::from(category) << 16) | u64::from(code),
            Ordering::Relaxed,
        );
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.ver.store(seq * 2 + 2, Ordering::Release);
        seq
    }

    /// Opens a timing span: the returned guard records an event on
    /// drop with elapsed microseconds in `a` and `b` passed through.
    pub fn span(&self, category: u8, code: u16, b: u64) -> TraceSpan<'_> {
        TraceSpan {
            ring: self,
            category,
            code,
            b,
            started: Instant::now(),
        }
    }

    /// The events currently retained, oldest first. Slots a concurrent
    /// writer is mid-overwrite on are skipped (never torn), so the
    /// result can be shorter than [`TraceRing::capacity`] even on a
    /// full ring.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let first = head.saturating_sub(cap);
        let mut events = Vec::with_capacity((head - first) as usize);
        for seq in first..head {
            let slot = &self.slots[(seq & self.mask) as usize];
            let want = seq * 2 + 2;
            let v1 = slot.ver.load(Ordering::Acquire);
            if v1 != want {
                // Either mid-write (odd) or already overwritten by a
                // newer event (a later even version): skip.
                continue;
            }
            let event = TraceEvent {
                seq,
                tick_ms: slot.tick.load(Ordering::Relaxed),
                category: (slot.catcode.load(Ordering::Relaxed) >> 16) as u8,
                code: (slot.catcode.load(Ordering::Relaxed) & 0xFFFF) as u16,
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
            };
            if slot.ver.load(Ordering::Acquire) == want {
                events.push(event);
            }
        }
        events
    }
}

/// Guard returned by [`TraceRing::span`]; records a timing event when
/// dropped.
#[derive(Debug)]
pub struct TraceSpan<'a> {
    ring: &'a TraceRing,
    category: u8,
    code: u16,
    b: u64,
    started: Instant,
}

impl TraceSpan<'_> {
    /// Overrides the second event argument before the span closes.
    pub fn set_b(&mut self, b: u64) {
        self.b = b;
    }
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        let elapsed = u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.ring.record(self.category, self.code, elapsed, self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overwrites_oldest_and_counts_drops() {
        let ring = TraceRing::new(8);
        for i in 0..20u64 {
            ring.record(1, 2, i, 0);
        }
        assert_eq!(ring.appended(), 20);
        assert_eq!(ring.dropped(), 12);
        let events = ring.snapshot();
        assert_eq!(events.len(), 8);
        assert_eq!(events.first().unwrap().seq, 12);
        assert_eq!(events.last().unwrap().seq, 19);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn span_records_elapsed_in_a() {
        let ring = TraceRing::new(8);
        {
            let _span = ring.span(3, 7, 42);
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].category, 3);
        assert_eq!(events[0].code, 7);
        assert_eq!(events[0].b, 42);
    }

    #[test]
    fn empty_ring_snapshot_is_empty() {
        let ring = TraceRing::new(8);
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.dropped(), 0);
    }
}
