//! Lock-free metric cells and the named registry over them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of histogram buckets: bucket `0` for the value `0`, then one
/// bucket per power of two up to `u64::MAX` (bucket `b` covers
/// `[2^(b-1), 2^b - 1]`).
pub const HIST_BUCKETS: usize = 65;

/// The bucket index holding `value`.
pub fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `bucket` (the value a quantile
/// readout reports when the rank lands in that bucket).
pub fn bucket_upper_bound(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        b if b >= 64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// A monotonically increasing counter. Handles are cheap clones of one
/// shared cell; incrementing is a single relaxed atomic add.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A standalone (unregistered) counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (queue depth, live connections).
/// Handles are cheap clones of one shared cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// A standalone (unregistered) gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, value: u64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero (a late decrement never wraps
    /// the gauge to `u64::MAX`).
    pub fn sub(&self, n: u64) {
        let mut current = self.cell.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(n);
            match self.cell.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistCells {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for HistCells {
    fn default() -> Self {
        HistCells {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A log-bucketed (power-of-two) latency/size histogram. Recording is
/// three relaxed atomic adds — no locks, no allocation — and handles
/// are cheap clones of one shared cell block.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    cells: Arc<HistCells>,
}

impl Histogram {
    /// A standalone (unregistered) histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.cells.count.fetch_add(1, Ordering::Relaxed);
        self.cells.sum.fetch_add(value, Ordering::Relaxed);
        self.cells.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in microseconds (saturating at `u64::MAX`).
    pub fn record_duration_us(&self, duration: Duration) {
        self.record(u64::try_from(duration.as_micros()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the cells. Under concurrent recording
    /// the copy can be mid-update (count a hair ahead of the bucket
    /// totals); quantile readout therefore trusts the bucket totals,
    /// never the count field.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.cells.count.load(Ordering::Relaxed),
            sum: self.cells.sum.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|b| self.cells.buckets[b].load(Ordering::Relaxed)),
        }
    }
}

/// A point-in-time histogram copy: plain data, mergeable element-wise.
/// Merging is associative and commutative (it is `u64` addition per
/// cell), so cluster-level aggregation is order-independent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Per-bucket observation counts (see [`bucket_of`]).
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// The all-zero snapshot (the merge identity).
    pub fn empty() -> Self {
        HistogramSnapshot::default()
    }

    /// Adds `other`'s cells into `self`. The `sum` cell wraps on
    /// overflow — matching the atomic `fetch_add` on the live cells —
    /// so merging snapshots is *exactly* recording the concatenated
    /// observation streams.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
    }

    /// Total observations according to the bucket cells (the
    /// authoritative total for quantile readout).
    pub fn bucket_total(&self) -> u64 {
        self.buckets
            .iter()
            .fold(0u64, |acc, b| acc.saturating_add(*b))
    }

    /// The value at quantile `q` (clamped to `[0, 1]`): the upper
    /// bound of the bucket holding the observation of rank
    /// `ceil(q * total)`. Returns 0 for an empty histogram. The answer
    /// never under-reports: it is `>=` the true quantile and `< 2x`
    /// above it (one bucket's width).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.bucket_total();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil without going through floats for the rank itself.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (bucket, cell) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(*cell);
            if cumulative >= rank {
                return bucket_upper_bound(bucket);
            }
        }
        bucket_upper_bound(HIST_BUCKETS - 1)
    }

    /// Median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named registry of metric cells. Registration (get-or-create by
/// name) and snapshotting take the registry mutex; the returned
/// handles touch only their own atomic cells, so the instrumented hot
/// paths resolve their handles once at construction and never lock.
///
/// Naming scheme (documented in the README): `eilid_<layer>_<what>`
/// with `_total` for counters, `_us` for microsecond histograms,
/// plain nouns for gauges — lowercase `[a-z0-9_]` only, so both
/// renderers can emit names verbatim.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, creating it at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, creating it at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, creating it empty on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a whole registry: plain data, renderable
/// ([`RegistrySnapshot::to_prometheus`] / [`RegistrySnapshot::to_json`])
/// and mergeable. Merge semantics: counters and gauges sum by name
/// (a cluster-level gauge is the fleet total), histograms merge
/// element-wise; names present on either side survive. Like the
/// histogram merge this is associative and commutative, so
/// cluster-level aggregation is well-defined regardless of gateway
/// order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// The empty snapshot (the merge identity).
    pub fn empty() -> Self {
        RegistrySnapshot::default()
    }

    /// Adds `other` into `self` (see the type docs for semantics).
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, value) in &other.counters {
            let cell = self.counters.entry(name.clone()).or_insert(0);
            *cell = cell.saturating_add(*value);
        }
        for (name, value) in &other.gauges {
            let cell = self.gauges.entry(name.clone()).or_insert(0);
            *cell = cell.saturating_add(*value);
        }
        for (name, hist) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_insert_with(HistogramSnapshot::empty)
                .merge(hist);
        }
    }

    /// Injects (or overwrites) a counter value — how external atomics
    /// that predate the registry (e.g. the gateway's reactor counters)
    /// join a snapshot at scrape time.
    pub fn put_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Injects (or overwrites) a gauge value.
    pub fn put_gauge(&mut self, name: &str, value: u64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Sum of every counter (used by the cluster merge test: merged
    /// counter totals must equal the per-gateway sums).
    pub fn counter_total(&self) -> u64 {
        self.counters
            .values()
            .fold(0u64, |acc, v| acc.saturating_add(*v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_power_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for value in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let b = bucket_of(value);
            assert!(value <= bucket_upper_bound(b));
            if b > 0 {
                assert!(value > bucket_upper_bound(b - 1));
            }
        }
    }

    #[test]
    fn quantiles_read_bucket_upper_bounds() {
        let h = Histogram::new();
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 10);
        assert_eq!(snap.p50(), 1);
        assert_eq!(snap.p90(), 1);
        // rank ceil(0.99 * 10) = 10 → the 1000 observation's bucket.
        assert_eq!(snap.p99(), bucket_upper_bound(bucket_of(1000)));
    }

    #[test]
    fn registry_hands_out_shared_cells() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("eilid_test_total");
        let b = registry.counter("eilid_test_total");
        a.inc();
        b.add(2);
        assert_eq!(registry.snapshot().counters["eilid_test_total"], 3);
    }

    #[test]
    fn gauge_sub_saturates() {
        let g = Gauge::new();
        g.set(1);
        g.sub(5);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn merge_is_identity_on_empty() {
        let registry = MetricsRegistry::new();
        registry.counter("c").add(7);
        registry.histogram("h").record(3);
        let snap = registry.snapshot();
        let mut merged = RegistrySnapshot::empty();
        merged.merge(&snap);
        assert_eq!(merged, snap);
    }
}
