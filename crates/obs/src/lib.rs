//! # eilid_obs — fleet-wide telemetry primitives
//!
//! A production EILID deployment is only operable if the operator can
//! *see* it. The paper's own operating model — an untrusted operator
//! continuously judging device health from attestation evidence —
//! extends naturally to the infrastructure: the gateway/cluster plane
//! should emit evidence about its own behaviour with the same rigor it
//! demands of devices. This crate is that evidence layer, std-only and
//! dependency-free, with three pieces:
//!
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s and
//!   log-bucketed [`Histogram`]s over lock-free `AtomicU64` cells. The
//!   hot path (increment, record) never takes a lock and never
//!   allocates; the registry's mutex guards only registration and
//!   snapshotting, both cold. Snapshots ([`RegistrySnapshot`],
//!   [`HistogramSnapshot`]) are plain data: mergeable element-wise, so
//!   cluster-level aggregation is associative and commutative by
//!   construction (the property the cluster proptests pin).
//! * [`TraceRing`] — a bounded ring of structured [`TraceEvent`]s
//!   (monotonic sequence number, coarse millisecond tick, category,
//!   code, two `u64` arguments) with overwrite-oldest semantics, an
//!   exact [`TraceRing::dropped`] counter, and [`TraceSpan`] helpers
//!   for timing scopes. Recording never blocks and never allocates.
//! * Renderers — Prometheus-style text exposition
//!   ([`RegistrySnapshot::to_prometheus`]) and a compact JSON snapshot
//!   ([`RegistrySnapshot::to_json`] / [`RegistrySnapshot::from_json`])
//!   that is what crosses the wire in the gateway's `OpMetrics` reply.
//!
//! # Histogram bucket layout
//!
//! Histograms use power-of-two buckets: bucket `0` holds the value
//! `0`, bucket `b` (for `b ≥ 1`) holds values in `[2^(b-1), 2^b - 1]`,
//! and the last bucket ([`HIST_BUCKETS`]` - 1`) tops out at
//! `u64::MAX`. Quantile readout ([`HistogramSnapshot::quantile`])
//! walks the cumulative distribution and reports the *upper bound* of
//! the bucket holding the requested rank — a deterministic,
//! merge-stable answer that never under-reports a latency.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod render;
mod ring;

pub use metrics::{
    bucket_of, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry,
    RegistrySnapshot, HIST_BUCKETS,
};
pub use render::ObsError;
pub use ring::{TraceEvent, TraceRing, TraceSpan};
