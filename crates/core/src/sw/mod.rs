//! `EILIDsw` — the trusted software component.
//!
//! This module contains the trusted-software ABI ([`dispatch`]), the
//! reference models of the shadow stack and function table
//! ([`shadow_stack`]), the assembly emitter for the runtime ([`emit`]) and
//! the assembled [`Runtime`] used by the device builder and the
//! instrumenter.

pub mod dispatch;
pub mod emit;
pub mod runtime;
pub mod shadow_stack;

pub use dispatch::{ReservedRegisters, Selector, ENTRY_SYMBOL, LEAVE_SYMBOL};
pub use emit::{emit_runtime_source, RuntimeParams, DEFAULT_TRAMPOLINE_ORG};
pub use runtime::Runtime;
pub use shadow_stack::{CfiResult, FunctionTable, ShadowStack};
