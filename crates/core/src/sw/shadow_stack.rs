//! Host-side reference model of the EILID shadow stack and function table.
//!
//! The authoritative implementation of these data structures is the MSP430
//! assembly emitted by [`emit`](crate::sw::emit) and executed in the secure
//! ROM. This module provides a pure-Rust model with identical semantics; it
//! is used to compute the secure-memory layout, as a differential-testing
//! oracle for the assembly, and by the analysis/bench crates that need to
//! predict shadow-stack depth without running the simulator.

use serde::{Deserialize, Serialize};

use eilid_casu::CfiFault;

/// Outcome of a shadow-stack or function-table operation.
pub type CfiResult = Result<(), CfiFault>;

/// Reference model of the secure shadow stack (paper Figure 9(b)).
///
/// # Examples
///
/// ```
/// use eilid::sw::ShadowStack;
///
/// let mut stack = ShadowStack::new(4);
/// stack.store_return_address(0xe200)?;
/// stack.check_return_address(0xe200)?;
/// # Ok::<(), eilid_casu::CfiFault>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShadowStack {
    entries: Vec<u16>,
    capacity: u16,
    max_depth: u16,
}

impl ShadowStack {
    /// Creates an empty shadow stack with room for `capacity` 16-bit
    /// entries.
    pub fn new(capacity: u16) -> Self {
        ShadowStack {
            entries: Vec::new(),
            capacity,
            max_depth: 0,
        }
    }

    /// Current number of occupied entries (the value EILID keeps in `r5`).
    pub fn depth(&self) -> u16 {
        self.entries.len() as u16
    }

    /// Deepest occupancy observed since construction.
    pub fn max_depth(&self) -> u16 {
        self.max_depth
    }

    /// Configured capacity in entries.
    pub fn capacity(&self) -> u16 {
        self.capacity
    }

    /// `S_EILID_store_ra`: push a return address (P1).
    ///
    /// # Errors
    ///
    /// Returns [`CfiFault::ShadowStackOverflow`] when full.
    pub fn store_return_address(&mut self, return_address: u16) -> CfiResult {
        if self.depth() >= self.capacity {
            return Err(CfiFault::ShadowStackOverflow);
        }
        self.entries.push(return_address);
        self.max_depth = self.max_depth.max(self.depth());
        Ok(())
    }

    /// `S_EILID_check_ra`: pop and compare a return address (P1).
    ///
    /// # Errors
    ///
    /// Returns [`CfiFault::ShadowStackUnderflow`] when empty and
    /// [`CfiFault::ReturnAddress`] on a mismatch.
    pub fn check_return_address(&mut self, observed: u16) -> CfiResult {
        let expected = self.entries.pop().ok_or(CfiFault::ShadowStackUnderflow)?;
        if expected != observed {
            return Err(CfiFault::ReturnAddress);
        }
        Ok(())
    }

    /// `S_EILID_store_rfi`: push an interrupt context (saved PC + SR, P2).
    ///
    /// # Errors
    ///
    /// Returns [`CfiFault::ShadowStackOverflow`] when fewer than two slots
    /// remain.
    pub fn store_interrupt_context(&mut self, saved_pc: u16, saved_sr: u16) -> CfiResult {
        if self.depth() + 2 > self.capacity {
            return Err(CfiFault::ShadowStackOverflow);
        }
        self.entries.push(saved_pc);
        self.entries.push(saved_sr);
        self.max_depth = self.max_depth.max(self.depth());
        Ok(())
    }

    /// `S_EILID_check_rfi`: pop and compare an interrupt context (P2).
    ///
    /// # Errors
    ///
    /// Returns [`CfiFault::ShadowStackUnderflow`] when fewer than two
    /// entries are stored and [`CfiFault::InterruptContext`] on a mismatch.
    pub fn check_interrupt_context(&mut self, saved_pc: u16, saved_sr: u16) -> CfiResult {
        if self.depth() < 2 {
            return Err(CfiFault::ShadowStackUnderflow);
        }
        let sr = self.entries.pop().expect("depth checked");
        let pc = self.entries.pop().expect("depth checked");
        if pc != saved_pc || sr != saved_sr {
            return Err(CfiFault::InterruptContext);
        }
        Ok(())
    }

    /// Bytes of secure memory this stack occupies at `capacity`.
    pub fn memory_bytes(&self) -> usize {
        2 * usize::from(self.capacity)
    }
}

/// Reference model of the legitimate-function table (P3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionTable {
    entries: Vec<u16>,
    capacity: u16,
}

impl FunctionTable {
    /// Creates an empty table with room for `capacity` function addresses.
    pub fn new(capacity: u16) -> Self {
        FunctionTable {
            entries: Vec::new(),
            capacity,
        }
    }

    /// Number of registered functions.
    pub fn len(&self) -> u16 {
        self.entries.len() as u16
    }

    /// `true` when no functions have been registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registered function addresses in registration order.
    pub fn entries(&self) -> &[u16] {
        &self.entries
    }

    /// `S_EILID_store_ind`: register a legitimate indirect-call target.
    ///
    /// # Errors
    ///
    /// Returns [`CfiFault::FunctionTableOverflow`] when full.
    pub fn register(&mut self, address: u16) -> CfiResult {
        if self.len() >= self.capacity {
            return Err(CfiFault::FunctionTableOverflow);
        }
        self.entries.push(address);
        Ok(())
    }

    /// `S_EILID_check_ind`: validate an indirect-call target.
    ///
    /// # Errors
    ///
    /// Returns [`CfiFault::IndirectCall`] when the address is not in the
    /// table.
    pub fn check(&self, address: u16) -> CfiResult {
        if self.entries.contains(&address) {
            Ok(())
        } else {
            Err(CfiFault::IndirectCall)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_return_address_protocol() {
        let mut stack = ShadowStack::new(8);
        stack.store_return_address(0x1000).unwrap();
        stack.store_return_address(0x2000).unwrap();
        assert_eq!(stack.depth(), 2);
        stack.check_return_address(0x2000).unwrap();
        stack.check_return_address(0x1000).unwrap();
        assert_eq!(stack.depth(), 0);
        assert_eq!(stack.max_depth(), 2);
    }

    #[test]
    fn mismatch_is_p1_violation() {
        let mut stack = ShadowStack::new(8);
        stack.store_return_address(0xE200).unwrap();
        assert_eq!(
            stack.check_return_address(0xBEEF),
            Err(CfiFault::ReturnAddress)
        );
    }

    #[test]
    fn overflow_and_underflow() {
        let mut stack = ShadowStack::new(2);
        stack.store_return_address(1).unwrap();
        stack.store_return_address(2).unwrap();
        assert_eq!(
            stack.store_return_address(3),
            Err(CfiFault::ShadowStackOverflow)
        );
        let mut empty = ShadowStack::new(2);
        assert_eq!(
            empty.check_return_address(1),
            Err(CfiFault::ShadowStackUnderflow)
        );
    }

    #[test]
    fn interrupt_context_protocol() {
        let mut stack = ShadowStack::new(4);
        stack.store_interrupt_context(0xE120, 0x0008).unwrap();
        assert_eq!(stack.depth(), 2);
        assert_eq!(
            stack.check_interrupt_context(0xE120, 0x0000),
            Err(CfiFault::InterruptContext)
        );
        // The failed check still consumed the context (matching the
        // assembly, which pops before comparing).
        assert_eq!(stack.depth(), 0);

        let mut stack = ShadowStack::new(4);
        stack.store_interrupt_context(0xE120, 0x0008).unwrap();
        stack.check_interrupt_context(0xE120, 0x0008).unwrap();

        let mut tight = ShadowStack::new(3);
        tight.store_return_address(1).unwrap();
        tight.store_return_address(2).unwrap();
        assert_eq!(
            tight.store_interrupt_context(3, 4),
            Err(CfiFault::ShadowStackOverflow)
        );
        assert_eq!(
            ShadowStack::new(4).check_interrupt_context(1, 2),
            Err(CfiFault::ShadowStackUnderflow)
        );
    }

    #[test]
    fn nested_calls_and_interrupts_interleave() {
        let mut stack = ShadowStack::new(16);
        stack.store_return_address(0xE100).unwrap();
        stack.store_interrupt_context(0xE104, 0x000F).unwrap();
        stack.store_return_address(0xE300).unwrap();
        stack.check_return_address(0xE300).unwrap();
        stack.check_interrupt_context(0xE104, 0x000F).unwrap();
        stack.check_return_address(0xE100).unwrap();
        assert_eq!(stack.depth(), 0);
        assert_eq!(stack.memory_bytes(), 32);
    }

    #[test]
    fn function_table_registration_and_lookup() {
        let mut table = FunctionTable::new(3);
        assert!(table.is_empty());
        table.register(0xE100).unwrap();
        table.register(0xE200).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.entries(), &[0xE100, 0xE200]);
        table.check(0xE100).unwrap();
        table.check(0xE200).unwrap();
        assert_eq!(table.check(0xE300), Err(CfiFault::IndirectCall));
        table.register(0xE300).unwrap();
        assert_eq!(table.register(0xE400), Err(CfiFault::FunctionTableOverflow));
    }
}
