//! Trusted-software ABI: reserved registers, dispatch selectors and symbol
//! names.
//!
//! The paper reserves registers `r4`–`r7` for EILID (Table III): `r4` holds
//! the dispatch selector passed to the secure entry point, `r5` the shadow
//! stack index, `r6`/`r7` the arguments of the `S_EILID_*` routines. The
//! instrumented code reaches the secure software only through small
//! non-secure trampolines (`NS_EILID_*`) that load `r4` and branch to the
//! single secure entry point (`S_EILID_entry`), matching Figure 9(a).

use std::fmt;

use serde::{Deserialize, Serialize};

use eilid_msp430::Reg;

/// The reserved-register assignment of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReservedRegisters {
    /// Dispatch selector for `S_EILID_entry` (and argument of
    /// `S_EILID_init`).
    pub selector: Reg,
    /// Shadow-stack index register.
    pub index: Reg,
    /// First argument register of the `S_EILID` functions.
    pub arg0: Reg,
    /// Second argument register of the `S_EILID` functions.
    pub arg1: Reg,
}

impl Default for ReservedRegisters {
    fn default() -> Self {
        ReservedRegisters {
            selector: Reg::R4,
            index: Reg::R5,
            arg0: Reg::R6,
            arg1: Reg::R7,
        }
    }
}

impl ReservedRegisters {
    /// All four reserved registers in Table III order.
    pub fn all(&self) -> [Reg; 4] {
        [self.selector, self.index, self.arg0, self.arg1]
    }

    /// `true` if `reg` is reserved for EILID.
    pub fn contains(&self, reg: Reg) -> bool {
        self.all().contains(&reg)
    }

    /// Renders the register/role rows of the paper's Table III.
    pub fn table_rows(&self) -> Vec<(Reg, &'static str)> {
        vec![
            (self.selector, "Used as an argument of S_EILID_init()"),
            (
                self.index,
                "Used as a pointer to the shadow stack's current index",
            ),
            (self.arg0, "Used as an argument of other S_EILID functions"),
            (self.arg1, "Used as an argument of other S_EILID functions"),
        ]
    }
}

/// The `S_EILID` routine selected through `r4` at the secure entry point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Selector {
    /// Push a function return address onto the shadow stack (P1).
    StoreReturnAddress,
    /// Pop and compare a function return address (P1).
    CheckReturnAddress,
    /// Push an interrupt context — saved PC and SR (P2).
    StoreInterruptContext,
    /// Pop and compare an interrupt context (P2).
    CheckInterruptContext,
    /// Register a legitimate indirect-call target in the function table (P3).
    StoreIndirectTarget,
    /// Validate an indirect-call target against the function table (P3).
    CheckIndirectTarget,
}

impl Selector {
    /// All selectors in dispatch order.
    pub const ALL: [Selector; 6] = [
        Selector::StoreReturnAddress,
        Selector::CheckReturnAddress,
        Selector::StoreInterruptContext,
        Selector::CheckInterruptContext,
        Selector::StoreIndirectTarget,
        Selector::CheckIndirectTarget,
    ];

    /// Numeric value loaded into `r4` by the non-secure trampoline.
    pub fn code(self) -> u16 {
        match self {
            Selector::StoreReturnAddress => 1,
            Selector::CheckReturnAddress => 2,
            Selector::StoreInterruptContext => 3,
            Selector::CheckInterruptContext => 4,
            Selector::StoreIndirectTarget => 5,
            Selector::CheckIndirectTarget => 6,
        }
    }

    /// Name of the non-secure trampoline the instrumenter calls
    /// (`NS_EILID_*`, Figures 3–8).
    pub fn trampoline_symbol(self) -> &'static str {
        match self {
            Selector::StoreReturnAddress => "NS_EILID_store_ra",
            Selector::CheckReturnAddress => "NS_EILID_check_ra",
            Selector::StoreInterruptContext => "NS_EILID_store_rfi",
            Selector::CheckInterruptContext => "NS_EILID_check_rfi",
            Selector::StoreIndirectTarget => "NS_EILID_store_ind",
            Selector::CheckIndirectTarget => "NS_EILID_check_ind",
        }
    }

    /// Name of the secure routine in the body section (`S_EILID_*`,
    /// Figure 9).
    pub fn secure_symbol(self) -> &'static str {
        match self {
            Selector::StoreReturnAddress => "S_EILID_store_ra",
            Selector::CheckReturnAddress => "S_EILID_check_ra",
            Selector::StoreInterruptContext => "S_EILID_store_rfi",
            Selector::CheckInterruptContext => "S_EILID_check_rfi",
            Selector::StoreIndirectTarget => "S_EILID_store_ind",
            Selector::CheckIndirectTarget => "S_EILID_check_ind",
        }
    }
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.secure_symbol())
    }
}

/// Symbol name of the secure entry section.
pub const ENTRY_SYMBOL: &str = "S_EILID_entry";

/// Symbol name of the secure leave (exit) section.
pub const LEAVE_SYMBOL: &str = "S_EILID_leave";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_registers_match_table_iii() {
        let regs = ReservedRegisters::default();
        assert_eq!(regs.selector, Reg::R4);
        assert_eq!(regs.index, Reg::R5);
        assert_eq!(regs.arg0, Reg::R6);
        assert_eq!(regs.arg1, Reg::R7);
        assert!(regs.contains(Reg::R5));
        assert!(!regs.contains(Reg::R8));
        assert_eq!(regs.table_rows().len(), 4);
        assert!(regs.all().iter().all(|r| r.is_eilid_reserved()));
    }

    #[test]
    fn selector_codes_are_unique_and_dense() {
        let codes: Vec<u16> = Selector::ALL.iter().map(|s| s.code()).collect();
        assert_eq!(codes, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn selector_symbols_follow_paper_naming() {
        assert_eq!(
            Selector::StoreReturnAddress.trampoline_symbol(),
            "NS_EILID_store_ra"
        );
        assert_eq!(
            Selector::CheckInterruptContext.secure_symbol(),
            "S_EILID_check_rfi"
        );
        assert_eq!(
            Selector::CheckIndirectTarget.to_string(),
            "S_EILID_check_ind"
        );
        for s in Selector::ALL {
            assert!(s.trampoline_symbol().starts_with("NS_EILID_"));
            assert!(s.secure_symbol().starts_with("S_EILID_"));
        }
    }
}
