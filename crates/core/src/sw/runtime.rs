//! Assembled trusted-software runtime.
//!
//! [`Runtime`] assembles the emitted runtime source (see
//! [`emit`](crate::sw::emit)) and resolves the addresses the rest of the
//! system needs: the secure entry point and leave section for the CASU
//! policy gates, and the `NS_EILID_*` trampoline addresses the instrumenter
//! links instrumented applications against.

use std::collections::BTreeMap;

use eilid_asm::{assemble, Image};
use eilid_casu::{CasuPolicy, MemoryLayout};

use crate::config::EilidConfig;
use crate::error::EilidError;
use crate::sw::dispatch::{Selector, ENTRY_SYMBOL, LEAVE_SYMBOL};
use crate::sw::emit::{emit_runtime_source, RuntimeParams};

/// The assembled EILID runtime (trampolines + secure software).
#[derive(Debug, Clone)]
pub struct Runtime {
    params: RuntimeParams,
    source: String,
    image: Image,
    entry: u16,
    leave_start: u16,
    leave_end: u16,
}

impl Runtime {
    /// Emits and assembles the runtime for a configuration, layout and base
    /// policy.
    ///
    /// # Errors
    ///
    /// Returns [`EilidError`] if the configuration does not fit the layout
    /// or the generated assembly fails to build (which would be an internal
    /// bug surfaced as [`EilidError::Asm`]).
    pub fn build(
        config: &EilidConfig,
        layout: &MemoryLayout,
        policy: &CasuPolicy,
    ) -> Result<Self, EilidError> {
        layout.validate()?;
        config.validate(layout)?;
        let params = RuntimeParams::new(config, layout, policy);
        let source = emit_runtime_source(&params);
        let image = assemble(&source)?;

        let entry = image
            .symbol(ENTRY_SYMBOL)
            .ok_or_else(|| EilidError::MissingSymbol(ENTRY_SYMBOL.into()))?;
        let leave_start = image
            .symbol(LEAVE_SYMBOL)
            .ok_or_else(|| EilidError::MissingSymbol(LEAVE_SYMBOL.into()))?;
        // The leave section is a single `ret` (2 bytes).
        let leave_end = leave_start.wrapping_add(1);

        Ok(Runtime {
            params,
            source,
            image,
            entry,
            leave_start,
            leave_end,
        })
    }

    /// The resolved runtime parameters.
    pub fn params(&self) -> &RuntimeParams {
        &self.params
    }

    /// The generated assembly source.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The assembled runtime image.
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// Address of the secure entry point (`S_EILID_entry`).
    pub fn entry(&self) -> u16 {
        self.entry
    }

    /// Address range of the leave section.
    pub fn leave_range(&self) -> std::ops::RangeInclusive<u16> {
        self.leave_start..=self.leave_end
    }

    /// Bytes of secure ROM occupied by `EILIDsw`.
    pub fn secure_rom_bytes(&self) -> usize {
        self.image
            .segments
            .iter()
            .filter(|s| s.base >= self.params.secure_org)
            .map(|s| s.bytes.len())
            .sum()
    }

    /// Bytes of PMEM occupied by the non-secure trampolines.
    pub fn trampoline_bytes(&self) -> usize {
        self.image
            .segments
            .iter()
            .filter(|s| s.base < self.params.secure_org)
            .map(|s| s.bytes.len())
            .sum()
    }

    /// Addresses of every `NS_EILID_*` trampoline, keyed by symbol name.
    /// The instrumenter injects these as `.equ` definitions into the
    /// application source, playing the role of linking against the fixed
    /// ROM image.
    pub fn trampoline_symbols(&self) -> BTreeMap<String, u16> {
        Selector::ALL
            .iter()
            .filter_map(|s| {
                self.image
                    .symbol(s.trampoline_symbol())
                    .map(|addr| (s.trampoline_symbol().to_string(), addr))
            })
            .collect()
    }

    /// CASU policy with the secure gates set to this runtime's entry point
    /// and leave section (all other fields taken from `base`).
    pub fn gated_policy(&self, base: &CasuPolicy) -> CasuPolicy {
        CasuPolicy {
            secure_entry: self.entry,
            secure_leave: self.leave_range(),
            ..base.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime() -> Runtime {
        Runtime::build(
            &EilidConfig::default(),
            &MemoryLayout::default(),
            &CasuPolicy::default(),
        )
        .expect("default runtime builds")
    }

    #[test]
    fn runtime_builds_and_resolves_gates() {
        let rt = runtime();
        assert!(rt.entry() >= 0xF800);
        assert!(rt.leave_range().start() > &rt.entry());
        assert!(rt.leave_range().end() <= &0xFFDF);
        assert!(rt.secure_rom_bytes() > 50);
        assert!(rt.secure_rom_bytes() < 512, "EILIDsw should stay tiny");
        assert!(rt.trampoline_bytes() > 20);
        assert!(rt.trampoline_bytes() < 128);
        assert!(rt.source().contains("S_EILID_store_ra"));
    }

    #[test]
    fn all_trampolines_are_resolved() {
        let rt = runtime();
        let symbols = rt.trampoline_symbols();
        assert_eq!(symbols.len(), 6);
        for selector in Selector::ALL {
            let addr = symbols[selector.trampoline_symbol()];
            assert!((0xF700..0xF800).contains(&addr), "{addr:#06x}");
        }
    }

    #[test]
    fn gated_policy_points_at_runtime() {
        let rt = runtime();
        let policy = rt.gated_policy(&CasuPolicy::default());
        assert_eq!(policy.secure_entry, rt.entry());
        assert_eq!(policy.secure_leave, rt.leave_range());
        assert!(policy.enforce_wxorx);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let config = EilidConfig {
            shadow_stack_capacity: 0,
            ..EilidConfig::default()
        };
        assert!(Runtime::build(&config, &MemoryLayout::default(), &CasuPolicy::default()).is_err());
    }

    #[test]
    fn memory_index_variant_builds_and_is_larger() {
        let fast = runtime();
        // A smaller shadow stack leaves room for the in-memory index word.
        let slow = Runtime::build(
            &EilidConfig {
                index_in_register: false,
                shadow_stack_capacity: 64,
                ..EilidConfig::default()
            },
            &MemoryLayout::default(),
            &CasuPolicy::default(),
        )
        .unwrap();
        assert!(slow.secure_rom_bytes() > fast.secure_rom_bytes());
    }
}
