//! Emitter for the EILID trusted-software runtime.
//!
//! The runtime has two parts, both emitted as assembly for the
//! [`eilid_asm`] toolchain and executed by the simulator:
//!
//! * **Non-secure trampolines** (`NS_EILID_*`, placed at the top of PMEM):
//!   each loads the dispatch selector into `r4` and branches to the secure
//!   entry point. Instrumented application code calls these trampolines
//!   (Figures 3–8 of the paper).
//! * **Secure software** (`EILIDsw`, placed in the secure ROM): the entry
//!   section dispatches on `r4`, the body implements the six `S_EILID_*`
//!   routines over the shadow stack and function table in secure DMEM, and
//!   the leave section is the only way back to non-secure code
//!   (Figure 9(a)).
//!
//! A failed check writes a [`CfiFault`](eilid_casu::CfiFault) code to the
//! CASU violation strobe, which the hardware monitor turns into a device
//! reset.

use eilid_casu::{CasuPolicy, CfiFault, MemoryLayout};

use crate::config::EilidConfig;
use crate::sw::dispatch::{Selector, ENTRY_SYMBOL, LEAVE_SYMBOL};

/// Origin of the non-secure trampolines (top of application PMEM).
pub const DEFAULT_TRAMPOLINE_ORG: u16 = 0xF700;

/// Parameters of the emitted runtime (resolved addresses for the
/// instrumenter and the device builder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeParams {
    /// Origin of the trampoline block.
    pub trampoline_org: u16,
    /// Origin of the secure software (start of secure ROM).
    pub secure_org: u16,
    /// Shadow-stack base address in secure DMEM.
    pub shadow_base: u16,
    /// Shadow-stack capacity in entries.
    pub shadow_capacity: u16,
    /// Address of the function-table count word.
    pub function_count_addr: u16,
    /// Address of the first function-table entry.
    pub function_table_addr: u16,
    /// Function-table capacity in entries.
    pub function_table_capacity: u16,
    /// Address of the violation strobe register.
    pub violation_strobe: u16,
    /// Keep the shadow-stack index in `r5` (`true`) or in secure memory
    /// (`false`).
    pub index_in_register: bool,
    /// Address of the in-memory index word (used when
    /// `index_in_register == false`).
    pub index_addr: u16,
}

impl RuntimeParams {
    /// Derives the runtime parameters from a configuration and layout.
    pub fn new(config: &EilidConfig, layout: &MemoryLayout, policy: &CasuPolicy) -> Self {
        RuntimeParams {
            trampoline_org: DEFAULT_TRAMPOLINE_ORG,
            secure_org: *layout.secure_rom.start(),
            shadow_base: config.shadow_stack_base(layout),
            shadow_capacity: config.shadow_stack_capacity,
            function_count_addr: config.function_count_addr(layout),
            function_table_addr: config.function_table_base(layout),
            function_table_capacity: config.function_table_capacity,
            violation_strobe: policy.violation_strobe,
            index_in_register: config.index_in_register,
            index_addr: config.index_word_addr(layout),
        }
    }
}

/// Emits the complete runtime assembly source (trampolines + secure
/// software).
///
/// # Examples
///
/// ```
/// use eilid::sw::{emit_runtime_source, RuntimeParams};
/// use eilid::EilidConfig;
/// use eilid_casu::{CasuPolicy, MemoryLayout};
///
/// let params = RuntimeParams::new(
///     &EilidConfig::default(),
///     &MemoryLayout::default(),
///     &CasuPolicy::default(),
/// );
/// let source = emit_runtime_source(&params);
/// assert!(source.contains("S_EILID_entry:"));
/// assert!(source.contains("NS_EILID_store_ra:"));
/// ```
pub fn emit_runtime_source(params: &RuntimeParams) -> String {
    let mut out = String::new();
    out.push_str("; EILID trusted-software runtime (generated)\n");
    out.push_str("; Non-secure trampolines + secure shadow-stack software.\n");
    emit_constants(&mut out, params);
    emit_trampolines(&mut out, params);
    emit_secure_software(&mut out, params);
    out
}

fn emit_constants(out: &mut String, p: &RuntimeParams) {
    out.push_str(&format!(
        "    .equ EILID_SHADOW_BASE, 0x{:04x}\n",
        p.shadow_base
    ));
    out.push_str(&format!(
        "    .equ EILID_SHADOW_CAP, {}\n",
        p.shadow_capacity
    ));
    out.push_str(&format!(
        "    .equ EILID_SHADOW_CAP_M1, {}\n",
        p.shadow_capacity.saturating_sub(1)
    ));
    out.push_str(&format!(
        "    .equ EILID_FUNC_COUNT, 0x{:04x}\n",
        p.function_count_addr
    ));
    out.push_str(&format!(
        "    .equ EILID_FUNC_TABLE, 0x{:04x}\n",
        p.function_table_addr
    ));
    out.push_str(&format!(
        "    .equ EILID_FUNC_CAP, {}\n",
        p.function_table_capacity
    ));
    out.push_str(&format!(
        "    .equ EILID_STROBE, 0x{:04x}\n",
        p.violation_strobe
    ));
    if !p.index_in_register {
        out.push_str(&format!("    .equ EILID_INDEX, 0x{:04x}\n", p.index_addr));
    }
    for fault in [
        CfiFault::ReturnAddress,
        CfiFault::InterruptContext,
        CfiFault::IndirectCall,
        CfiFault::ShadowStackOverflow,
        CfiFault::ShadowStackUnderflow,
        CfiFault::FunctionTableOverflow,
    ] {
        out.push_str(&format!(
            "    .equ EILID_FAULT_{}, 0x{:04x}\n",
            fault_suffix(fault),
            fault.code()
        ));
    }
}

fn fault_suffix(fault: CfiFault) -> &'static str {
    match fault {
        CfiFault::ReturnAddress => "RA",
        CfiFault::InterruptContext => "RFI",
        CfiFault::IndirectCall => "IND",
        CfiFault::ShadowStackOverflow => "OVF",
        CfiFault::ShadowStackUnderflow => "UNF",
        CfiFault::FunctionTableOverflow => "FTO",
        CfiFault::Unknown(_) => "UNK",
    }
}

fn emit_trampolines(out: &mut String, p: &RuntimeParams) {
    out.push_str(&format!("\n    .org 0x{:04x}\n", p.trampoline_org));
    out.push_str("; --- non-secure trampolines ---\n");
    for selector in Selector::ALL {
        out.push_str(&format!("{}:\n", selector.trampoline_symbol()));
        out.push_str(&format!("    mov #{}, r4\n", selector.code()));
        out.push_str(&format!("    br #{ENTRY_SYMBOL}\n"));
    }
}

fn emit_secure_software(out: &mut String, p: &RuntimeParams) {
    out.push_str(&format!("\n    .org 0x{:04x}\n", p.secure_org));
    out.push_str("; --- EILIDsw: entry section ---\n");
    out.push_str(&format!("{ENTRY_SYMBOL}:\n"));
    for selector in Selector::ALL {
        out.push_str(&format!("    cmp #{}, r4\n", selector.code()));
        out.push_str(&format!("    jeq {}\n", selector.secure_symbol()));
    }
    out.push_str("    jmp S_EILID_fault_unknown\n");

    out.push_str("\n; --- EILIDsw: body section ---\n");
    let load_index = |out: &mut String| {
        if !p.index_in_register {
            out.push_str("    mov &EILID_INDEX, r5\n");
        }
    };
    let store_index = |out: &mut String| {
        if !p.index_in_register {
            out.push_str("    mov r5, &EILID_INDEX\n");
        }
    };

    // S_EILID_store_ra: r6 = return address.
    out.push_str("S_EILID_store_ra:\n");
    load_index(out);
    out.push_str("    cmp #EILID_SHADOW_CAP, r5\n");
    out.push_str("    jge S_EILID_fault_overflow\n");
    out.push_str("    mov r5, r4\n");
    out.push_str("    add r5, r4\n");
    out.push_str("    add #EILID_SHADOW_BASE, r4\n");
    out.push_str("    mov r6, 0(r4)\n");
    out.push_str("    inc r5\n");
    store_index(out);
    out.push_str(&format!("    jmp {LEAVE_SYMBOL}\n"));

    // S_EILID_check_ra: r6 = return address read from the main stack.
    out.push_str("S_EILID_check_ra:\n");
    load_index(out);
    out.push_str("    tst r5\n");
    out.push_str("    jz S_EILID_fault_underflow\n");
    out.push_str("    dec r5\n");
    out.push_str("    mov r5, r4\n");
    out.push_str("    add r5, r4\n");
    out.push_str("    add #EILID_SHADOW_BASE, r4\n");
    out.push_str("    cmp 0(r4), r6\n");
    out.push_str("    jne S_EILID_fault_ra\n");
    store_index(out);
    out.push_str(&format!("    jmp {LEAVE_SYMBOL}\n"));

    // S_EILID_store_rfi: r6 = saved PC, r7 = saved SR.
    out.push_str("S_EILID_store_rfi:\n");
    load_index(out);
    out.push_str("    cmp #EILID_SHADOW_CAP_M1, r5\n");
    out.push_str("    jge S_EILID_fault_overflow\n");
    out.push_str("    mov r5, r4\n");
    out.push_str("    add r5, r4\n");
    out.push_str("    add #EILID_SHADOW_BASE, r4\n");
    out.push_str("    mov r6, 0(r4)\n");
    out.push_str("    mov r7, 2(r4)\n");
    out.push_str("    incd r5\n");
    store_index(out);
    out.push_str(&format!("    jmp {LEAVE_SYMBOL}\n"));

    // S_EILID_check_rfi: r6 = saved PC, r7 = saved SR.
    out.push_str("S_EILID_check_rfi:\n");
    load_index(out);
    out.push_str("    cmp #2, r5\n");
    out.push_str("    jl S_EILID_fault_underflow\n");
    out.push_str("    decd r5\n");
    out.push_str("    mov r5, r4\n");
    out.push_str("    add r5, r4\n");
    out.push_str("    add #EILID_SHADOW_BASE, r4\n");
    out.push_str("    cmp 0(r4), r6\n");
    out.push_str("    jne S_EILID_fault_rfi\n");
    out.push_str("    cmp 2(r4), r7\n");
    out.push_str("    jne S_EILID_fault_rfi\n");
    store_index(out);
    out.push_str(&format!("    jmp {LEAVE_SYMBOL}\n"));

    // S_EILID_store_ind: r6 = legitimate function entry point.
    out.push_str("S_EILID_store_ind:\n");
    out.push_str("    mov &EILID_FUNC_COUNT, r4\n");
    out.push_str("    cmp #EILID_FUNC_CAP, r4\n");
    out.push_str("    jge S_EILID_fault_fto\n");
    out.push_str("    add r4, r4\n");
    out.push_str("    add #EILID_FUNC_TABLE, r4\n");
    out.push_str("    mov r6, 0(r4)\n");
    out.push_str("    inc &EILID_FUNC_COUNT\n");
    out.push_str(&format!("    jmp {LEAVE_SYMBOL}\n"));

    // S_EILID_check_ind: r6 = indirect-call target.
    out.push_str("S_EILID_check_ind:\n");
    out.push_str("    mov &EILID_FUNC_COUNT, r4\n");
    out.push_str("    mov #EILID_FUNC_TABLE, r7\n");
    out.push_str("S_EILID_check_ind_loop:\n");
    out.push_str("    tst r4\n");
    out.push_str("    jz S_EILID_fault_ind\n");
    out.push_str("    cmp @r7, r6\n");
    out.push_str(&format!("    jeq {LEAVE_SYMBOL}\n"));
    out.push_str("    incd r7\n");
    out.push_str("    dec r4\n");
    out.push_str("    jmp S_EILID_check_ind_loop\n");

    // Fault reporting: write the fault code to the CASU strobe; the hardware
    // resets the device on that very write.
    out.push_str("\n; --- EILIDsw: fault reporting ---\n");
    for (label, code_symbol) in [
        ("S_EILID_fault_ra", "EILID_FAULT_RA"),
        ("S_EILID_fault_rfi", "EILID_FAULT_RFI"),
        ("S_EILID_fault_ind", "EILID_FAULT_IND"),
        ("S_EILID_fault_overflow", "EILID_FAULT_OVF"),
        ("S_EILID_fault_underflow", "EILID_FAULT_UNF"),
        ("S_EILID_fault_fto", "EILID_FAULT_FTO"),
        ("S_EILID_fault_unknown", "EILID_FAULT_UNF"),
    ] {
        out.push_str(&format!("{label}:\n"));
        out.push_str(&format!("    mov #{code_symbol}, &EILID_STROBE\n"));
        out.push_str(&format!("    jmp {label}\n"));
    }

    // Leave section: the only legal way back to non-secure code.
    out.push_str("\n; --- EILIDsw: leave section ---\n");
    out.push_str(&format!("{LEAVE_SYMBOL}:\n"));
    out.push_str("    ret\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> RuntimeParams {
        RuntimeParams::new(
            &EilidConfig::default(),
            &MemoryLayout::default(),
            &CasuPolicy::default(),
        )
    }

    #[test]
    fn params_are_derived_from_config_and_layout() {
        let p = params();
        assert_eq!(p.secure_org, 0xF800);
        assert_eq!(p.shadow_base, 0x1000);
        assert_eq!(p.shadow_capacity, 112);
        assert_eq!(p.function_count_addr, 0x10E0);
        assert_eq!(p.function_table_addr, 0x10E2);
        assert_eq!(p.violation_strobe, eilid_casu::VIOLATION_STROBE_ADDR);
        assert!(p.index_in_register);
    }

    #[test]
    fn emitted_source_contains_all_sections_and_symbols() {
        let source = emit_runtime_source(&params());
        assert!(source.contains("S_EILID_entry:"));
        assert!(source.contains("S_EILID_leave:"));
        for selector in Selector::ALL {
            assert!(source.contains(&format!("{}:", selector.trampoline_symbol())));
            assert!(source.contains(&format!("{}:", selector.secure_symbol())));
        }
        assert!(source.contains("EILID_SHADOW_BASE"));
        assert!(source.contains("EILID_STROBE"));
        // Register-resident index: no in-memory index constant.
        assert!(!source.contains("EILID_INDEX"));
    }

    #[test]
    fn memory_resident_index_variant_adds_loads_and_stores() {
        let mut p = params();
        p.index_in_register = false;
        let source = emit_runtime_source(&p);
        assert!(source.contains(".equ EILID_INDEX"));
        assert!(source.contains("mov &EILID_INDEX, r5"));
        assert!(source.contains("mov r5, &EILID_INDEX"));
        // The in-register variant is strictly shorter.
        let fast = emit_runtime_source(&params());
        assert!(source.len() > fast.len());
    }

    #[test]
    fn emitted_source_assembles() {
        let image =
            eilid_asm::assemble(&emit_runtime_source(&params())).expect("runtime assembles");
        assert!(image.symbol("S_EILID_entry").is_some());
        assert!(image.symbol("S_EILID_leave").is_some());
        assert!(image.symbol("NS_EILID_check_ind").is_some());
        // Trampolines live below the secure ROM, secure software inside it.
        assert!(image.symbol("NS_EILID_store_ra").unwrap() < 0xF800);
        assert!(image.symbol("S_EILID_entry").unwrap() >= 0xF800);
        assert!(image.symbol("S_EILID_leave").unwrap() <= 0xFFDF);
    }
}
