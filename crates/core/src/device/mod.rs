//! EILID-enabled (and baseline) device simulation.
//!
//! A [`Device`] couples the MSP430 core with the CASU/EILID hardware
//! monitor. The [`DeviceBuilder`] offers two deployment modes:
//!
//! * [`DeviceBuilder::build_baseline`] — the application exactly as written,
//!   with no instrumentation and no monitor. This is the "Original" column
//!   of Table IV.
//! * [`DeviceBuilder::build_eilid`] — the application run through the
//!   `EILIDinst` pipeline, linked against the trusted-software runtime, with
//!   the hardware monitor enforcing CASU's rules plus the EILID shadow-stack
//!   extension. This is the "EILID" column of Table IV.

pub mod builder;
pub mod outcome;

pub use builder::DeviceBuilder;
pub use outcome::RunOutcome;

use eilid_casu::{CasuMonitor, MemoryLayout, Violation};
use eilid_msp430::{Cpu, StepTrace};

use crate::config::EilidConfig;
use crate::error::EilidError;
use crate::instrument::BuildArtifacts;

/// A simulated device, optionally protected by the EILID hardware monitor.
#[derive(Debug, Clone)]
pub struct Device {
    cpu: Cpu,
    monitor: Option<CasuMonitor>,
    layout: MemoryLayout,
    config: EilidConfig,
    artifacts: Option<BuildArtifacts>,
    resets: u64,
}

impl Device {
    pub(crate) fn from_parts(
        mut cpu: Cpu,
        monitor: Option<CasuMonitor>,
        layout: MemoryLayout,
        config: EilidConfig,
        artifacts: Option<BuildArtifacts>,
    ) -> Self {
        // Monitored cores get the monitor's pre-commit bus write gate:
        // a violating PMEM/secure-ROM/vector-table store is blocked
        // *before* it commits (and still reset via the trace check), as
        // on the real CASU hardware. Baseline cores stay ungated.
        cpu.set_write_gate(monitor.as_ref().map(CasuMonitor::write_gate));
        Device {
            cpu,
            monitor,
            layout,
            config,
            artifacts,
            resets: 0,
        }
    }

    /// The simulated core (registers, memory, peripherals).
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Mutable access to the core — used by attack injectors that model an
    /// adversary with arbitrary write access to data memory.
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    /// The device's memory layout.
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// The EILID configuration the device was built with.
    pub fn config(&self) -> &EilidConfig {
        &self.config
    }

    /// Build artifacts (instrumented image, report, metrics) for
    /// EILID-protected devices; `None` for baseline devices.
    pub fn artifacts(&self) -> Option<&BuildArtifacts> {
        self.artifacts.as_ref()
    }

    /// The attached hardware monitor, if any.
    pub fn monitor(&self) -> Option<&CasuMonitor> {
        self.monitor.as_ref()
    }

    /// Mutable access to the attached hardware monitor — used by the
    /// update engine, which must open an authorised update session on the
    /// monitor before writing program memory.
    pub fn monitor_mut(&mut self) -> Option<&mut CasuMonitor> {
        self.monitor.as_mut()
    }

    /// Simultaneous mutable access to the core and the monitor, for
    /// callers (like [`eilid_casu::UpdateEngine::apply`]) that write
    /// memory under an open update session.
    pub fn cpu_and_monitor_mut(&mut self) -> (&mut Cpu, Option<&mut CasuMonitor>) {
        (&mut self.cpu, self.monitor.as_mut())
    }

    /// `true` when the hardware monitor is attached.
    pub fn is_protected(&self) -> bool {
        self.monitor.is_some()
    }

    /// Number of monitor-triggered resets performed so far.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Total clock cycles consumed since construction.
    pub fn cycles(&self) -> u64 {
        self.cpu.total_cycles()
    }

    /// Resets the core (and monitor state), as the hardware does after a
    /// violation.
    pub fn reset(&mut self) {
        self.cpu.reset();
        if let Some(monitor) = &mut self.monitor {
            monitor.reset();
        }
        self.resets += 1;
    }

    /// Reboots the device into its current program image: core, monitor
    /// *and* peripherals return to their power-on state (unlike
    /// [`Device::reset`], which models the hardware violation reset and
    /// leaves peripherals untouched). Used after an OTA update to start
    /// the new firmware from its reset vector; not counted in
    /// [`Device::resets`].
    pub fn reboot(&mut self) {
        self.cpu.peripherals.reset();
        self.cpu.reset();
        if let Some(monitor) = &mut self.monitor {
            monitor.reset();
        }
    }

    /// Executes one step and evaluates the monitor over it.
    ///
    /// # Errors
    ///
    /// Returns [`EilidError::Step`] if the core hits an undecodable
    /// instruction word (callers usually map this to
    /// [`RunOutcome::Fault`]).
    pub fn step(&mut self) -> Result<(StepTrace, Option<Violation>), EilidError> {
        // Hardware IRQ gating: interrupts are deferred while trusted
        // software executes in the secure ROM.
        let in_secure = self.layout.in_secure_rom(self.cpu.regs.pc());
        self.cpu
            .set_irq_inhibited(self.monitor.is_some() && in_secure);
        // Keep the pre-commit write gate's update window in lockstep
        // with the monitor's update-session state, so the veto and the
        // trace-level check always agree on what is authorised.
        if let Some(monitor) = &self.monitor {
            self.cpu.set_write_gate_window(monitor.update_window());
        }
        let trace = self.cpu.step()?;
        let violation = self
            .monitor
            .as_mut()
            .and_then(|monitor| monitor.check(&trace));
        Ok((trace, violation))
    }

    /// Runs until completion, violation, fault or the configured cycle
    /// budget.
    pub fn run(&mut self) -> RunOutcome {
        self.run_for(self.config.max_cycles)
    }

    /// Runs with an explicit cycle budget.
    pub fn run_for(&mut self, max_cycles: u64) -> RunOutcome {
        self.run_with_hook(max_cycles, |_, _| {})
    }

    /// Runs while invoking `hook` after every step. The hook receives
    /// mutable access to the core, which is how the attack injectors model
    /// an adversary exploiting a memory-corruption bug at run time.
    pub fn run_with_hook<F>(&mut self, max_cycles: u64, mut hook: F) -> RunOutcome
    where
        F: FnMut(&mut Cpu, &StepTrace),
    {
        let start_cycles = self.cpu.total_cycles();
        loop {
            let elapsed = self.cpu.total_cycles() - start_cycles;
            if self.cpu.peripherals.sim_done() {
                return RunOutcome::Completed {
                    cycles: elapsed,
                    exit_code: self.cpu.peripherals.exit_code(),
                    output: self.cpu.peripherals.sim_output().to_vec(),
                };
            }
            if elapsed >= max_cycles {
                return RunOutcome::Timeout { cycles: elapsed };
            }
            match self.step() {
                Ok((trace, None)) => hook(&mut self.cpu, &trace),
                Ok((_, Some(violation))) => {
                    let cycles = self.cpu.total_cycles() - start_cycles;
                    // The hardware resets the device; we stop and report so
                    // callers can observe the detection.
                    self.reset();
                    return RunOutcome::Violation { violation, cycles };
                }
                Err(EilidError::Step(step_error)) => {
                    let cycles = self.cpu.total_cycles() - start_cycles;
                    return RunOutcome::Fault {
                        pc: step_error.address,
                        cycles,
                    };
                }
                Err(_) => unreachable!("Device::step only returns step errors"),
            }
        }
    }
}
