//! Result of running a (protected or baseline) device.

use std::fmt;

use serde::{Deserialize, Serialize};

use eilid_casu::Violation;

/// Why a device run ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The application signalled completion through the simulation-control
    /// register.
    Completed {
        /// Clock cycles consumed.
        cycles: u64,
        /// Exit code the application reported.
        exit_code: u16,
        /// Words the application wrote to the debug-output register.
        output: Vec<u16>,
    },
    /// The hardware monitor detected a violation and the device was reset.
    Violation {
        /// The detected violation.
        violation: Violation,
        /// Clock cycles consumed before detection.
        cycles: u64,
    },
    /// The cycle budget was exhausted before completion.
    Timeout {
        /// Clock cycles consumed.
        cycles: u64,
    },
    /// The core hit an undecodable instruction (treated as a fault by the
    /// monitor-less baseline device).
    Fault {
        /// Program counter of the fault.
        pc: u16,
        /// Clock cycles consumed.
        cycles: u64,
    },
}

impl RunOutcome {
    /// Clock cycles consumed by the run.
    pub fn cycles(&self) -> u64 {
        match self {
            RunOutcome::Completed { cycles, .. }
            | RunOutcome::Violation { cycles, .. }
            | RunOutcome::Timeout { cycles }
            | RunOutcome::Fault { cycles, .. } => *cycles,
        }
    }

    /// `true` if the application ran to completion.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed { .. })
    }

    /// The detected violation, if any.
    pub fn violation(&self) -> Option<&Violation> {
        match self {
            RunOutcome::Violation { violation, .. } => Some(violation),
            _ => None,
        }
    }

    /// Run time in microseconds at the given clock frequency.
    pub fn micros(&self, clock_hz: u64) -> f64 {
        eilid_msp430::cycles_to_micros(self.cycles(), clock_hz)
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Completed {
                cycles, exit_code, ..
            } => write!(f, "completed in {cycles} cycles (exit code {exit_code})"),
            RunOutcome::Violation { violation, cycles } => {
                write!(f, "reset after {cycles} cycles: {violation}")
            }
            RunOutcome::Timeout { cycles } => write!(f, "timed out after {cycles} cycles"),
            RunOutcome::Fault { pc, cycles } => {
                write!(f, "faulted at {pc:#06x} after {cycles} cycles")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eilid_casu::CfiFault;

    #[test]
    fn accessors() {
        let done = RunOutcome::Completed {
            cycles: 1000,
            exit_code: 0,
            output: vec![1, 2],
        };
        assert!(done.is_completed());
        assert_eq!(done.cycles(), 1000);
        assert!(done.violation().is_none());
        assert!((done.micros(100_000_000) - 10.0).abs() < 1e-9);

        let violated = RunOutcome::Violation {
            violation: Violation::Cfi {
                fault: CfiFault::ReturnAddress,
            },
            cycles: 500,
        };
        assert!(!violated.is_completed());
        assert!(violated.violation().unwrap().is_cfi());

        let timeout = RunOutcome::Timeout { cycles: 99 };
        assert_eq!(timeout.cycles(), 99);
        let fault = RunOutcome::Fault {
            pc: 0xE000,
            cycles: 5,
        };
        assert_eq!(fault.cycles(), 5);
    }

    #[test]
    fn display_is_informative() {
        let outcomes = vec![
            RunOutcome::Completed {
                cycles: 1,
                exit_code: 2,
                output: vec![],
            },
            RunOutcome::Violation {
                violation: Violation::Cfi {
                    fault: CfiFault::IndirectCall,
                },
                cycles: 3,
            },
            RunOutcome::Timeout { cycles: 4 },
            RunOutcome::Fault {
                pc: 0xE000,
                cycles: 5,
            },
        ];
        for o in outcomes {
            assert!(!o.to_string().is_empty());
        }
    }
}
