//! Building baseline and EILID-protected devices from application source.

use eilid_asm::assemble;
use eilid_casu::{CasuMonitor, CasuPolicy, MemoryLayout};
use eilid_msp430::{AdcStimulus, Cpu, Memory};

use crate::config::EilidConfig;
use crate::device::Device;
use crate::error::EilidError;
use crate::instrument::InstrumentedBuild;
use crate::sw::Runtime;

/// Builder for [`Device`]s.
///
/// # Examples
///
/// Building and running an EILID-protected device:
///
/// ```
/// use eilid::DeviceBuilder;
///
/// let app = "    .org 0xe000
///     .global main
/// main:
///     mov #0x0400, sp
///     mov #5, r10
///     call #double
///     mov r10, &0x0102
///     mov #0x00ff, &0x0100
/// hang:
///     jmp hang
/// double:
///     add r10, r10
///     ret
/// ";
/// let mut device = DeviceBuilder::new().build_eilid(app)?;
/// let outcome = device.run();
/// assert!(outcome.is_completed());
/// # Ok::<(), eilid::EilidError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DeviceBuilder {
    config: EilidConfig,
    layout: MemoryLayout,
    policy: CasuPolicy,
    adc_stimulus: Option<AdcStimulus>,
    initial_sp: u16,
}

impl Default for DeviceBuilder {
    fn default() -> Self {
        DeviceBuilder::new()
    }
}

impl DeviceBuilder {
    /// Creates a builder with the default configuration, layout and policy.
    pub fn new() -> Self {
        DeviceBuilder {
            config: EilidConfig::default(),
            layout: MemoryLayout::default(),
            policy: CasuPolicy::default(),
            adc_stimulus: None,
            initial_sp: 0x0400,
        }
    }

    /// Replaces the EILID configuration.
    pub fn config(mut self, config: EilidConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the memory layout.
    pub fn layout(mut self, layout: MemoryLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Replaces the base CASU policy (the secure gates are overwritten with
    /// the runtime's entry/leave addresses when building a protected
    /// device).
    pub fn policy(mut self, policy: CasuPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the stimulus pattern of the synthetic ADC peripheral.
    pub fn adc_stimulus(mut self, stimulus: AdcStimulus) -> Self {
        self.adc_stimulus = Some(stimulus);
        self
    }

    /// Sets the initial stack pointer installed at reset.
    pub fn initial_sp(mut self, sp: u16) -> Self {
        self.initial_sp = sp;
        self
    }

    fn make_cpu(&self, memory: Memory) -> Cpu {
        let mut cpu = Cpu::new(memory);
        cpu.set_initial_sp(self.initial_sp);
        if let Some(stimulus) = &self.adc_stimulus {
            cpu.peripherals.set_adc_stimulus(stimulus.clone());
        }
        cpu.reset();
        cpu
    }

    /// Builds an unprotected baseline device running the application as
    /// written ("Original" in Table IV).
    ///
    /// # Errors
    ///
    /// Returns [`EilidError`] if the application fails to assemble or load.
    pub fn build_baseline(&self, app_source: &str) -> Result<Device, EilidError> {
        let image = assemble(app_source)?;
        let mut memory = Memory::new();
        image.load_into(&mut memory)?;
        let cpu = self.make_cpu(memory);
        Ok(Device::from_parts(
            cpu,
            None,
            self.layout.clone(),
            self.config.clone(),
            None,
        ))
    }

    /// Builds an EILID-protected device: instruments the application
    /// (Figure 2 pipeline), links it against the trusted-software runtime,
    /// loads both images and attaches the hardware monitor with the secure
    /// gates set to the runtime's entry/leave addresses.
    ///
    /// # Errors
    ///
    /// Returns [`EilidError`] if the configuration is invalid, the
    /// application cannot be instrumented, or any image fails to assemble or
    /// load.
    pub fn build_eilid(&self, app_source: &str) -> Result<Device, EilidError> {
        let runtime = Runtime::build(&self.config, &self.layout, &self.policy)?;
        let pipeline = InstrumentedBuild::new(self.config.clone());
        let artifacts = pipeline.run(app_source, &runtime)?;

        let mut memory = Memory::new();
        artifacts.instrumented_image.load_into(&mut memory)?;
        runtime.image().load_into(&mut memory)?;

        let policy = runtime.gated_policy(&self.policy);
        let monitor = CasuMonitor::new(self.layout.clone(), policy);
        let cpu = self.make_cpu(memory);
        Ok(Device::from_parts(
            cpu,
            Some(monitor),
            self.layout.clone(),
            self.config.clone(),
            Some(artifacts),
        ))
    }

    /// Builds a protected device around an *already instrumented* source —
    /// used by tests and attack demos that hand-craft malicious or edge-case
    /// programs while keeping the monitor and runtime in place.
    ///
    /// # Errors
    ///
    /// Returns [`EilidError`] if assembly or loading fails.
    pub fn build_monitored_raw(&self, source: &str) -> Result<Device, EilidError> {
        let runtime = Runtime::build(&self.config, &self.layout, &self.policy)?;
        let image = assemble(source)?;
        let mut memory = Memory::new();
        image.load_into(&mut memory)?;
        runtime.image().load_into(&mut memory)?;
        let policy = runtime.gated_policy(&self.policy);
        let monitor = CasuMonitor::new(self.layout.clone(), policy);
        let cpu = self.make_cpu(memory);
        Ok(Device::from_parts(
            cpu,
            Some(monitor),
            self.layout.clone(),
            self.config.clone(),
            None,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::RunOutcome;
    use eilid_casu::{CfiFault, Violation};

    const APP: &str = "    .org 0xe000
    .global main
    .equ SIM_CTL, 0x0100
    .equ SIM_OUT, 0x0102
    .equ DONE, 0x00ff
main:
    mov #0x0400, sp
    mov #7, r10
    call #double
    call #double
    mov r10, &SIM_OUT
    mov #DONE, &SIM_CTL
hang:
    jmp hang
double:
    add r10, r10
    ret
";

    #[test]
    fn baseline_and_eilid_devices_compute_the_same_result() {
        let builder = DeviceBuilder::new();
        let mut baseline = builder.build_baseline(APP).unwrap();
        let mut protected = builder.build_eilid(APP).unwrap();
        assert!(!baseline.is_protected());
        assert!(protected.is_protected());

        let base_outcome = baseline.run();
        let eilid_outcome = protected.run();
        match (&base_outcome, &eilid_outcome) {
            (RunOutcome::Completed { output: a, .. }, RunOutcome::Completed { output: b, .. }) => {
                assert_eq!(a, b, "instrumentation must not change results");
                assert_eq!(a, &vec![28]);
            }
            other => panic!("unexpected outcomes {other:?}"),
        }
        // EILID costs extra cycles but stays within a small factor.
        let base = base_outcome.cycles() as f64;
        let eilid = eilid_outcome.cycles() as f64;
        assert!(eilid > base);
        // The app is tiny, so the fixed per-call cost dominates; just sanity
        // check that the factor stays within an order of magnitude. The
        // realistic overheads are measured on the Table IV workloads.
        assert!(
            eilid / base < 20.0,
            "overhead factor {:.2} is implausibly high",
            eilid / base
        );
    }

    #[test]
    fn protected_device_reports_artifacts() {
        let device = DeviceBuilder::new().build_eilid(APP).unwrap();
        let artifacts = device
            .artifacts()
            .expect("protected devices carry artifacts");
        assert_eq!(artifacts.report.call_sites, 2);
        assert_eq!(artifacts.report.returns, 1);
        assert!(
            artifacts.metrics.instrumented_binary_bytes > artifacts.metrics.original_binary_bytes
        );
        assert!(DeviceBuilder::new()
            .build_baseline(APP)
            .unwrap()
            .artifacts()
            .is_none());
    }

    #[test]
    fn return_address_attack_is_detected_and_resets() {
        // The adversary overwrites the saved return address on the main
        // stack while `double` executes, redirecting the return into `hang`.
        let builder = DeviceBuilder::new();
        let mut device = builder.build_eilid(APP).unwrap();
        let hang = device
            .artifacts()
            .unwrap()
            .instrumented_image
            .symbol("hang")
            .unwrap();
        let double = device
            .artifacts()
            .unwrap()
            .instrumented_image
            .symbol("double")
            .unwrap();

        let outcome = device.run_with_hook(10_000_000, |cpu, trace| {
            // When execution reaches the body of `double`, smash the return
            // address that `call #double` pushed (now at the top of stack).
            if trace.pc == double {
                let sp = cpu.regs.sp();
                cpu.memory.write_word(sp, hang);
            }
        });
        match outcome {
            RunOutcome::Violation { violation, .. } => {
                assert_eq!(
                    violation,
                    Violation::Cfi {
                        fault: CfiFault::ReturnAddress
                    }
                );
            }
            other => panic!("attack was not detected: {other}"),
        }
        assert_eq!(device.resets(), 1);
    }

    #[test]
    fn baseline_device_misses_the_same_attack() {
        let builder = DeviceBuilder::new();
        let mut device = builder.build_baseline(APP).unwrap();
        let image = eilid_asm::assemble(APP).unwrap();
        let double = image.symbol("double").unwrap();
        let hang = image.symbol("hang").unwrap();
        let outcome = device.run_with_hook(200_000, |cpu, trace| {
            if trace.pc == double {
                let sp = cpu.regs.sp();
                cpu.memory.write_word(sp, hang);
            }
        });
        // Without EILID the hijacked return silently diverts execution; the
        // application never reaches its "done" write and times out.
        assert!(matches!(outcome, RunOutcome::Timeout { .. }));
    }

    #[test]
    fn monitored_raw_device_detects_code_injection() {
        // A malicious program copies a gadget into DMEM and jumps to it —
        // CASU's W^X rule catches the fetch from writable memory.
        let source = "    .org 0xe000
    .global main
main:
    mov #0x0400, sp
    mov #0x4303, &0x0300   ; write a nop into DMEM
    br #0x0300
";
        let mut device = DeviceBuilder::new().build_monitored_raw(source).unwrap();
        let outcome = device.run_for(10_000);
        assert!(matches!(
            outcome.violation(),
            Some(Violation::ExecutionFromWritableMemory { .. })
        ));
    }

    #[test]
    fn violating_pmem_write_is_vetoed_before_commit() {
        // The program stores into its own code region. On a monitored
        // device the store is vetoed at the bus (memory unchanged) *and*
        // punished with a violation reset; on a baseline device it
        // silently commits.
        let source = "    .org 0xe000
    .global main
main:
    mov #0x0400, sp
    mov #0x1234, &0xf000
hang:
    jmp hang
";
        let mut protected = DeviceBuilder::new().build_monitored_raw(source).unwrap();
        let before = protected.cpu().memory.read_word(0xF000);
        let outcome = protected.run_for(10_000);
        assert!(matches!(
            outcome.violation(),
            Some(Violation::PmemWrite { addr: 0xF000, .. })
        ));
        assert_eq!(
            protected.cpu().memory.read_word(0xF000),
            before,
            "the violating write must never commit"
        );
        assert_eq!(protected.cpu().vetoed_writes(), 1);

        let mut baseline = DeviceBuilder::new().build_baseline(source).unwrap();
        baseline.run_for(10_000);
        assert_eq!(
            baseline.cpu().memory.read_word(0xF000),
            0x1234,
            "an unmonitored core has no gate"
        );
    }

    #[test]
    fn authenticated_update_still_writes_through_the_gate() {
        // The gate must not break the authorised update path: the engine
        // opens a session on the monitor and writes the payload.
        use eilid_casu::{UpdateAuthority, UpdateEngine};
        let mut device = DeviceBuilder::new().build_eilid(APP).unwrap();
        let key = b"update-gate-test-key-0123456789a";
        let layout = device.layout().clone();
        let mut authority = UpdateAuthority::new(key);
        let mut engine = UpdateEngine::new(key, layout);
        let request = authority.authorize(0xF680, &[0xAB, 0xCD]);
        let (cpu, monitor) = device.cpu_and_monitor_mut();
        engine
            .apply(&request, &mut cpu.memory, monitor.unwrap())
            .unwrap();
        assert_eq!(device.cpu().memory.read_byte(0xF680), 0xAB);
        // And the device still runs clean afterwards.
        assert!(device.run().is_completed());
    }

    #[test]
    fn timeout_is_reported() {
        let source = "    .org 0xe000\n    .global main\nmain:\n    jmp main\n";
        let mut device = DeviceBuilder::new().build_baseline(source).unwrap();
        assert!(matches!(device.run_for(1_000), RunOutcome::Timeout { .. }));
    }

    #[test]
    fn builder_options_apply() {
        let device = DeviceBuilder::new()
            .initial_sp(0x0800)
            .adc_stimulus(AdcStimulus::Constant(42))
            .build_baseline("    .org 0xe000\n    .global main\nmain:\n    jmp main\n")
            .unwrap();
        assert_eq!(device.cpu().regs.sp(), 0x0800);
    }
}
