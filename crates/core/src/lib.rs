//! # eilid — Execution Integrity for Low-end IoT Devices
//!
//! A from-scratch reproduction of **EILID** (DATE 2025): a hybrid
//! hardware/software Root-of-Trust architecture that enforces *real-time*
//! control-flow integrity (CFI) on low-end, bare-metal microcontrollers.
//! EILID extends the CASU active RoT (software immutability + W⊕X +
//! authenticated updates) with:
//!
//! * **P1 — return-address integrity**: every call stores its return address
//!   on a shadow stack in secure data memory; every return is checked
//!   against it.
//! * **P2 — return-from-interrupt integrity**: the interrupt context (saved
//!   PC and SR) is captured at ISR entry and re-validated before `reti`.
//! * **P3 — indirect-call integrity** (function level): indirect call
//!   targets are validated against a table of legitimate function entry
//!   points.
//!
//! The three paper components map onto this crate as follows:
//!
//! | Paper | Here |
//! |---|---|
//! | `EILIDinst` (compile-time instrumenter) | [`instrument`] — analysis, rewriting (Figures 3–8) and the three-iteration build pipeline (Figure 2) |
//! | `EILIDsw` (trusted software in secure ROM) | [`sw`] — the dispatch ABI (Table III), shadow-stack/function-table models and the emitted MSP430 runtime (Figure 9) |
//! | `EILIDhw` (CASU hardware + secure-memory extension) | [`eilid_casu`] monitor, attached by the [`device`] layer |
//!
//! # Quick start
//!
//! ```
//! use eilid::{DeviceBuilder, EilidConfig};
//!
//! let app = "    .org 0xe000
//!     .global main
//! main:
//!     mov #0x0400, sp
//!     mov #21, r10
//!     call #double
//!     mov r10, &0x0102      ; debug output
//!     mov #0x00ff, &0x0100  ; done
//! hang:
//!     jmp hang
//! double:
//!     add r10, r10
//!     ret
//! ";
//!
//! // Original device (Table IV "Original" column).
//! let mut baseline = DeviceBuilder::new().build_baseline(app)?;
//! // EILID-protected device (instrumented + monitored).
//! let mut protected = DeviceBuilder::new()
//!     .config(EilidConfig::default())
//!     .build_eilid(app)?;
//!
//! let base = baseline.run();
//! let eilid = protected.run();
//! assert!(base.is_completed() && eilid.is_completed());
//! assert!(eilid.cycles() > base.cycles(), "CFI protection costs cycles");
//! # Ok::<(), eilid::EilidError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod device;
pub mod error;
pub mod instrument;
pub mod sw;

pub use config::{ConfigError, EilidConfig, DEFAULT_CLOCK_HZ};
pub use device::{Device, DeviceBuilder, RunOutcome};
pub use error::EilidError;
pub use instrument::{
    analyze, AppAnalysis, BuildArtifacts, BuildMetrics, InstrumentationReport, InstrumentedBuild,
    Platform, PlatformIsa, Warning,
};
pub use sw::{ReservedRegisters, Runtime, Selector, ShadowStack};
