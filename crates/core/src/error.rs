//! Unified error type for the EILID core crate.

use std::fmt;

use eilid_asm::AsmError;
use eilid_msp430::{LoadImageError, StepError};

use crate::config::ConfigError;

/// Any error produced while building or running an EILID-enabled device.
#[derive(Debug)]
pub enum EilidError {
    /// Assembling the application or the trusted-software runtime failed.
    Asm(AsmError),
    /// A memory image did not fit the 64 KiB address space.
    Load(LoadImageError),
    /// The simulated core hit an undecodable instruction outside of a
    /// monitored run (during loading or self-test).
    Step(StepError),
    /// The EILID configuration is inconsistent with the memory layout.
    Config(ConfigError),
    /// The device memory layout is internally inconsistent.
    Layout(eilid_casu::LayoutError),
    /// The application cannot be instrumented.
    Instrument(String),
    /// A required symbol is missing from an assembled image.
    MissingSymbol(String),
}

impl fmt::Display for EilidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EilidError::Asm(e) => write!(f, "assembly failed: {e}"),
            EilidError::Load(e) => write!(f, "image load failed: {e}"),
            EilidError::Step(e) => write!(f, "execution failed: {e}"),
            EilidError::Config(e) => write!(f, "{e}"),
            EilidError::Layout(e) => write!(f, "{e}"),
            EilidError::Instrument(msg) => write!(f, "instrumentation failed: {msg}"),
            EilidError::MissingSymbol(name) => {
                write!(f, "required symbol `{name}` missing from image")
            }
        }
    }
}

impl std::error::Error for EilidError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EilidError::Asm(e) => Some(e),
            EilidError::Load(e) => Some(e),
            EilidError::Step(e) => Some(e),
            EilidError::Config(e) => Some(e),
            EilidError::Layout(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AsmError> for EilidError {
    fn from(e: AsmError) -> Self {
        EilidError::Asm(e)
    }
}

impl From<LoadImageError> for EilidError {
    fn from(e: LoadImageError) -> Self {
        EilidError::Load(e)
    }
}

impl From<StepError> for EilidError {
    fn from(e: StepError) -> Self {
        EilidError::Step(e)
    }
}

impl From<ConfigError> for EilidError {
    fn from(e: ConfigError) -> Self {
        EilidError::Config(e)
    }
}

impl From<eilid_casu::LayoutError> for EilidError {
    fn from(e: eilid_casu::LayoutError) -> Self {
        EilidError::Layout(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_messages() {
        let asm_err: EilidError =
            eilid_asm::AsmError::new(2, eilid_asm::AsmErrorKind::UnknownMnemonic("frob".into()))
                .into();
        assert!(asm_err.to_string().contains("assembly failed"));
        assert!(std::error::Error::source(&asm_err).is_some());

        let missing = EilidError::MissingSymbol("S_EILID_entry".into());
        assert!(missing.to_string().contains("S_EILID_entry"));
        assert!(std::error::Error::source(&missing).is_none());

        let instr = EilidError::Instrument("no entry point".into());
        assert!(instr.to_string().contains("no entry point"));
    }
}
