//! EILID configuration.
//!
//! The paper's prototype reserves 256 bytes of secure DMEM for the shadow
//! stack ("it can store ≤128 return addresses and the interrupt context",
//! §V) and notes that the size is configurable. [`EilidConfig`] captures
//! those knobs plus the enforcement toggles used by the ablation
//! experiments.

use std::fmt;

use serde::{Deserialize, Serialize};

use eilid_casu::MemoryLayout;

/// Default simulated clock frequency (the paper evaluates at 100 MHz).
pub const DEFAULT_CLOCK_HZ: u64 = 100_000_000;

/// Configuration of an EILID-enabled device.
///
/// # Examples
///
/// ```
/// use eilid::EilidConfig;
///
/// let config = EilidConfig::default();
/// assert_eq!(config.shadow_stack_capacity, 112);
/// assert_eq!(config.secure_dmem_bytes(), 256);
/// config.validate(&eilid_casu::MemoryLayout::default())?;
/// # Ok::<(), eilid::EilidError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EilidConfig {
    /// Number of 16-bit entries the shadow stack can hold. Interrupt
    /// contexts occupy two entries (saved PC and saved SR).
    pub shadow_stack_capacity: u16,
    /// Number of entries in the legitimate-function table used for
    /// function-level forward-edge CFI (P3).
    pub function_table_capacity: u16,
    /// Enable backward-edge protection (P1: return-address integrity).
    pub protect_returns: bool,
    /// Enable return-from-interrupt protection (P2).
    pub protect_interrupts: bool,
    /// Enable function-level forward-edge protection (P3: indirect calls).
    pub protect_indirect_calls: bool,
    /// Keep the shadow-stack index in register `r5` (the paper's
    /// optimisation, §V-B). When `false`, the index lives in secure memory
    /// and every trusted-software invocation pays two extra memory accesses;
    /// the ablation benchmark quantifies the difference.
    pub index_in_register: bool,
    /// Simulated core clock in hertz (used to convert cycles to
    /// microseconds when reporting Table IV).
    pub clock_hz: u64,
    /// Cycle budget for a single run before it is declared hung.
    pub max_cycles: u64,
}

impl Default for EilidConfig {
    fn default() -> Self {
        EilidConfig {
            // 112 return-address slots + 16 function-table slots = 256 bytes
            // of secure DMEM, matching the paper's default allocation.
            shadow_stack_capacity: 112,
            function_table_capacity: 15,
            protect_returns: true,
            protect_interrupts: true,
            protect_indirect_calls: true,
            index_in_register: true,
            clock_hz: DEFAULT_CLOCK_HZ,
            max_cycles: 50_000_000,
        }
    }
}

/// Error returned when a configuration does not fit the memory layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid EILID configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

impl EilidConfig {
    /// Bytes of secure DMEM required by this configuration: the shadow
    /// stack, one count word for the function table, and the table itself.
    pub fn secure_dmem_bytes(&self) -> usize {
        2 * usize::from(self.shadow_stack_capacity)
            + 2
            + 2 * usize::from(self.function_table_capacity)
    }

    /// Address of the shadow stack base within `layout`.
    pub fn shadow_stack_base(&self, layout: &MemoryLayout) -> u16 {
        layout.shadow_stack_base()
    }

    /// Address of the function-table count word.
    pub fn function_count_addr(&self, layout: &MemoryLayout) -> u16 {
        layout
            .shadow_stack_base()
            .wrapping_add(2 * self.shadow_stack_capacity)
    }

    /// Address of the first function-table entry.
    pub fn function_table_base(&self, layout: &MemoryLayout) -> u16 {
        self.function_count_addr(layout).wrapping_add(2)
    }

    /// Address of the shadow-stack index word in secure memory, used only
    /// when [`EilidConfig::index_in_register`] is `false`.
    pub fn index_word_addr(&self, layout: &MemoryLayout) -> u16 {
        // Stored in the last word of the secure region.
        (*layout.secure_dmem.end()) & !1
    }

    /// Checks that the configuration fits within the secure data region of
    /// `layout`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] (wrapped in [`EilidError`](crate::EilidError))
    /// when the shadow stack plus function table exceed the secure region or
    /// a capacity is zero.
    pub fn validate(&self, layout: &MemoryLayout) -> Result<(), crate::EilidError> {
        if self.shadow_stack_capacity == 0 {
            return Err(ConfigError::new("shadow stack capacity must be non-zero").into());
        }
        if self.protect_indirect_calls && self.function_table_capacity == 0 {
            return Err(ConfigError::new(
                "function table capacity must be non-zero when indirect-call protection is on",
            )
            .into());
        }
        let available = layout.secure_dmem_size();
        let needed = self.secure_dmem_bytes() + if self.index_in_register { 0 } else { 2 };
        if needed > available {
            return Err(ConfigError::new(format!(
                "secure DMEM needs {needed} bytes but the layout provides {available}"
            ))
            .into());
        }
        if self.clock_hz == 0 {
            return Err(ConfigError::new("clock frequency must be non-zero").into());
        }
        Ok(())
    }

    /// Convenience constructor matching the paper's prototype parameters.
    pub fn paper_prototype() -> Self {
        EilidConfig::default()
    }

    /// Configuration with forward-edge (P3) protection disabled, used by the
    /// forward-edge ablation.
    pub fn backward_edge_only() -> Self {
        EilidConfig {
            protect_indirect_calls: false,
            ..EilidConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_allocation() {
        let config = EilidConfig::default();
        assert_eq!(config.secure_dmem_bytes(), 256);
        config.validate(&MemoryLayout::default()).unwrap();
    }

    #[test]
    fn secure_dmem_addresses_are_laid_out_in_order() {
        let config = EilidConfig::default();
        let layout = MemoryLayout::default();
        let base = config.shadow_stack_base(&layout);
        let count = config.function_count_addr(&layout);
        let table = config.function_table_base(&layout);
        assert_eq!(base, 0x1000);
        assert_eq!(count, base + 224);
        assert_eq!(table, count + 2);
        assert!(table + 2 * config.function_table_capacity - 1 <= *layout.secure_dmem.end() + 1);
    }

    #[test]
    fn oversized_configuration_is_rejected() {
        let config = EilidConfig {
            shadow_stack_capacity: 1024,
            ..EilidConfig::default()
        };
        let err = config.validate(&MemoryLayout::default()).unwrap_err();
        assert!(err.to_string().contains("secure DMEM"));
    }

    #[test]
    fn zero_capacities_are_rejected() {
        let config = EilidConfig {
            shadow_stack_capacity: 0,
            ..EilidConfig::default()
        };
        assert!(config.validate(&MemoryLayout::default()).is_err());

        let config = EilidConfig {
            function_table_capacity: 0,
            ..EilidConfig::default()
        };
        assert!(config.validate(&MemoryLayout::default()).is_err());

        // With P3 disabled an empty function table is fine.
        let config = EilidConfig {
            function_table_capacity: 0,
            protect_indirect_calls: false,
            shadow_stack_capacity: 64,
            ..EilidConfig::default()
        };
        assert!(config.validate(&MemoryLayout::default()).is_ok());
    }

    #[test]
    fn ablation_constructors() {
        assert!(!EilidConfig::backward_edge_only().protect_indirect_calls);
        assert!(EilidConfig::paper_prototype().protect_returns);
    }

    #[test]
    fn index_word_lives_at_top_of_secure_region() {
        let config = EilidConfig {
            index_in_register: false,
            shadow_stack_capacity: 64,
            ..EilidConfig::default()
        };
        let layout = MemoryLayout::default();
        assert_eq!(config.index_word_addr(&layout), 0x10FE);
        config.validate(&layout).unwrap();
    }
}
