//! `EILIDinst` — the compile-time instrumenter.
//!
//! The instrumenter analyses the application assembly ([`analysis`]),
//! rewrites it with the paper's instrumentation templates ([`rewrite`]),
//! and drives the iterated-build pipeline of Figure 2 ([`pipeline`]). The
//! [`platform`] module records the per-platform control-flow mnemonics of
//! Table II, and [`report`] collects statistics and the compile-time
//! warnings discussed in §V and §VII of the paper.

pub mod analysis;
pub mod pipeline;
pub mod platform;
pub mod report;
pub mod rewrite;

pub use analysis::{analyze, AppAnalysis, CallSite, CallTarget};
pub use pipeline::{BuildArtifacts, BuildMetrics, InstrumentedBuild};
pub use platform::{Platform, PlatformIsa};
pub use report::{InstrumentationReport, Warning};
pub use rewrite::{patch_return_addresses, rewrite, PatchPoint, RewrittenProgram};
