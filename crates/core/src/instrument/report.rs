//! Instrumentation report and warnings.
//!
//! The paper's instrumenter raises compile-time warnings for indirect jumps
//! outside `switch` lowering (§VII) and requires spill code when the
//! reserved registers are already in use (§V). The report carries those
//! warnings plus the per-site counts the evaluation section reports.

use std::fmt;

use serde::{Deserialize, Serialize};

use eilid_msp430::Reg;

/// A non-fatal condition detected during instrumentation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Warning {
    /// The application uses one of the EILID-reserved registers `r4`–`r7`
    /// (paper §V: two extra spill instructions would be required per use).
    ReservedRegisterUse {
        /// 1-based source line.
        line: usize,
        /// The reserved register.
        register: Reg,
    },
    /// The application contains an indirect jump, which EILID does not
    /// protect (paper §VII).
    IndirectJump {
        /// 1-based source line.
        line: usize,
    },
    /// The application contains recursion, which EILID does not handle
    /// (paper §VII); deep recursion can exhaust the shadow stack.
    Recursion {
        /// The recursive function's label.
        function: String,
    },
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Warning::ReservedRegisterUse { line, register } => write!(
                f,
                "line {line}: application uses EILID-reserved register {register}; spill code required"
            ),
            Warning::IndirectJump { line } => {
                write!(f, "line {line}: indirect jump is not protected by EILID")
            }
            Warning::Recursion { function } => write!(
                f,
                "function `{function}` is recursive; EILID does not bound recursion depth"
            ),
        }
    }
}

/// Summary of what the instrumenter did to an application.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InstrumentationReport {
    /// Direct call sites instrumented for P1 (store).
    pub call_sites: usize,
    /// `ret` instructions instrumented for P1 (check).
    pub returns: usize,
    /// ISR prologues instrumented for P2 (store).
    pub isr_entries: usize,
    /// `reti` instructions instrumented for P2 (check).
    pub isr_exits: usize,
    /// Indirect call sites instrumented for P3 (check).
    pub indirect_calls: usize,
    /// Function entry points registered in the forward-edge table.
    pub functions_registered: usize,
    /// Assembly lines inserted by the instrumenter.
    pub inserted_lines: usize,
    /// Non-fatal findings.
    pub warnings: Vec<Warning>,
}

impl InstrumentationReport {
    /// Total number of instrumented sites across P1, P2 and P3.
    pub fn total_sites(&self) -> usize {
        self.call_sites + self.returns + self.isr_entries + self.isr_exits + self.indirect_calls
    }

    /// `true` if the instrumenter made no changes (already-safe program or
    /// all protections disabled).
    pub fn is_empty(&self) -> bool {
        self.inserted_lines == 0
    }
}

impl fmt::Display for InstrumentationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "instrumented {} call sites, {} returns, {} ISR entries, {} ISR exits, {} indirect calls",
            self.call_sites, self.returns, self.isr_entries, self.isr_exits, self.indirect_calls
        )?;
        writeln!(
            f,
            "registered {} functions, inserted {} lines",
            self.functions_registered, self.inserted_lines
        )?;
        for warning in &self.warnings {
            writeln!(f, "warning: {warning}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_emptiness() {
        let report = InstrumentationReport {
            call_sites: 3,
            returns: 2,
            isr_entries: 1,
            isr_exits: 1,
            indirect_calls: 1,
            functions_registered: 4,
            inserted_lines: 16,
            warnings: vec![],
        };
        assert_eq!(report.total_sites(), 8);
        assert!(!report.is_empty());
        assert!(InstrumentationReport::default().is_empty());
    }

    #[test]
    fn warnings_render() {
        let warnings = vec![
            Warning::ReservedRegisterUse {
                line: 10,
                register: Reg::R4,
            },
            Warning::IndirectJump { line: 20 },
            Warning::Recursion {
                function: "fib".into(),
            },
        ];
        for w in &warnings {
            assert!(!w.to_string().is_empty());
        }
        let report = InstrumentationReport {
            warnings,
            ..Default::default()
        };
        let rendered = report.to_string();
        assert!(rendered.contains("r4"));
        assert!(rendered.contains("indirect jump"));
        assert!(rendered.contains("fib"));
    }
}
