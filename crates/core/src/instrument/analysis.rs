//! Static analysis of the application assembly.
//!
//! Before rewriting anything, `EILIDinst` needs to know where the
//! instrumentation sites are: direct and indirect call sites, `ret` and
//! `reti` instructions, ISR entry points, and the set of legitimate
//! function entry points for the forward-edge table. It also flags the
//! conditions the paper discusses in §V and §VII: use of the reserved
//! registers `r4`–`r7`, indirect jumps, and recursion.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use eilid_asm::{Directive, Expr, OperandSpec, Program, Statement};
use eilid_msp430::Reg;

/// A direct or indirect call site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallSite {
    /// Index of the line in the program.
    pub line_index: usize,
    /// Call target: a label for direct calls, a register for indirect ones.
    pub target: CallTarget,
    /// Label of the enclosing function, if known.
    pub caller: Option<String>,
}

/// The target of a call instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CallTarget {
    /// `call #label` or `call #0x....`.
    Direct(Expr),
    /// `call rN` — the paper's indirect-call case (Figure 8).
    Indirect(Reg),
}

impl CallTarget {
    /// `true` for indirect (register) calls.
    pub fn is_indirect(&self) -> bool {
        matches!(self, CallTarget::Indirect(_))
    }
}

/// Everything the rewriter needs to know about the application.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AppAnalysis {
    /// Every call site, in source order.
    pub call_sites: Vec<CallSite>,
    /// Line indices of every `ret`.
    pub returns: Vec<usize>,
    /// Line indices of every `reti`.
    pub interrupt_returns: Vec<usize>,
    /// ISR handler labels (from `.isr` directives) and their vectors.
    pub isr_handlers: BTreeMap<String, u16>,
    /// Program entry label (from `.global`).
    pub entry_label: Option<String>,
    /// Labels that are direct-call targets.
    pub called_functions: BTreeSet<String>,
    /// Labels whose address is taken in an immediate operand of a non-call
    /// instruction (potential indirect-call targets).
    pub address_taken: BTreeSet<String>,
    /// Lines that use one of the EILID-reserved registers `r4`–`r7`.
    pub reserved_register_uses: Vec<(usize, Reg)>,
    /// Lines containing indirect jumps (`br rN` / `mov rN, pc`).
    pub indirect_jumps: Vec<usize>,
    /// Functions that participate in a call-graph cycle (recursion).
    pub recursive_functions: BTreeSet<String>,
}

impl AppAnalysis {
    /// Labels that must be registered in the forward-edge function table:
    /// direct-call targets plus address-taken labels (excluding ISR
    /// handlers, which are never legal indirect-call targets).
    pub fn function_table_labels(&self) -> Vec<String> {
        let mut labels: BTreeSet<String> = self
            .called_functions
            .union(&self.address_taken)
            .cloned()
            .collect();
        for isr in self.isr_handlers.keys() {
            labels.remove(isr);
        }
        labels.into_iter().collect()
    }

    /// Number of indirect call sites.
    pub fn indirect_call_count(&self) -> usize {
        self.call_sites
            .iter()
            .filter(|c| c.target.is_indirect())
            .count()
    }
}

/// Analyses a parsed application program.
///
/// # Examples
///
/// ```
/// use eilid::instrument::analyze;
/// use eilid_asm::parse;
///
/// let program = parse("    .global main\nmain:\n    call #work\n    ret\nwork:\n    ret\n")?;
/// let analysis = analyze(&program);
/// assert_eq!(analysis.call_sites.len(), 1);
/// assert_eq!(analysis.returns.len(), 2);
/// assert!(analysis.called_functions.contains("work"));
/// # Ok::<(), eilid_asm::AsmError>(())
/// ```
pub fn analyze(program: &Program) -> AppAnalysis {
    let mut analysis = AppAnalysis::default();
    let labels: BTreeSet<String> = program.labels().iter().map(|s| (*s).to_string()).collect();

    // First pass: directives (entry, ISRs).
    for line in &program.lines {
        if let Statement::Directive(directive) = &line.statement {
            match directive {
                Directive::Global(name) => analysis.entry_label = Some(name.clone()),
                Directive::Isr { name, vector } => {
                    if let Expr::Number(v) = vector {
                        analysis.isr_handlers.insert(name.clone(), *v);
                    } else {
                        analysis.isr_handlers.insert(name.clone(), u16::MAX);
                    }
                }
                _ => {}
            }
        }
    }

    // Second pass: instructions.
    let mut current_function: Option<String> = None;
    let mut call_graph: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();

    for (index, line) in program.lines.iter().enumerate() {
        if let Some(label) = &line.label {
            current_function = Some(label.clone());
        }
        let Statement::Instruction { mnemonic, operands } = &line.statement else {
            continue;
        };
        let base = mnemonic
            .strip_suffix(".b")
            .or_else(|| mnemonic.strip_suffix(".w"))
            .unwrap_or(mnemonic);

        // Reserved-register usage (r4–r7) anywhere in the application.
        for operand in operands {
            for reg in operand_registers(operand) {
                if reg.is_eilid_reserved() {
                    analysis.reserved_register_uses.push((index, reg));
                }
            }
        }

        match base {
            "call" => {
                let target = match operands.first() {
                    Some(OperandSpec::Immediate(e)) => CallTarget::Direct(e.clone()),
                    Some(OperandSpec::Register(r)) => CallTarget::Indirect(*r),
                    Some(OperandSpec::Indirect(r)) | Some(OperandSpec::IndirectAutoInc(r)) => {
                        CallTarget::Indirect(*r)
                    }
                    _ => CallTarget::Direct(Expr::Number(0)),
                };
                if let CallTarget::Direct(Expr::Symbol(name)) = &target {
                    analysis.called_functions.insert(name.clone());
                    if let Some(caller) = &current_function {
                        call_graph
                            .entry(caller.clone())
                            .or_default()
                            .insert(name.clone());
                    }
                }
                analysis.call_sites.push(CallSite {
                    line_index: index,
                    target,
                    caller: current_function.clone(),
                });
            }
            "ret" => analysis.returns.push(index),
            "reti" => analysis.interrupt_returns.push(index),
            "br" => {
                if matches!(
                    operands.first(),
                    Some(OperandSpec::Register(_))
                        | Some(OperandSpec::Indirect(_))
                        | Some(OperandSpec::IndirectAutoInc(_))
                        | Some(OperandSpec::Indexed { .. })
                ) {
                    analysis.indirect_jumps.push(index);
                }
            }
            "mov"
                if operands.len() == 2
                    && operands[1] == OperandSpec::Register(Reg::PC)
                    && !matches!(operands[0], OperandSpec::Immediate(_)) =>
            {
                analysis.indirect_jumps.push(index);
            }
            _ => {}
        }

        // Address-taken labels: `#label` immediates outside call instructions.
        if base != "call" {
            for operand in operands {
                if let OperandSpec::Immediate(expr) = operand {
                    for symbol in expr.symbols() {
                        if labels.contains(symbol) {
                            analysis.address_taken.insert(symbol.to_string());
                        }
                    }
                }
            }
        }
    }

    analysis.recursive_functions = find_cycles(&call_graph);
    analysis
}

fn operand_registers(operand: &OperandSpec) -> Vec<Reg> {
    match operand {
        OperandSpec::Register(r)
        | OperandSpec::Indirect(r)
        | OperandSpec::IndirectAutoInc(r)
        | OperandSpec::Indexed { reg: r, .. } => vec![*r],
        _ => vec![],
    }
}

/// Returns every node that can reach itself in the call graph.
fn find_cycles(graph: &BTreeMap<String, BTreeSet<String>>) -> BTreeSet<String> {
    let mut recursive = BTreeSet::new();
    for start in graph.keys() {
        let mut stack: Vec<&String> = graph
            .get(start)
            .map(|s| s.iter().collect())
            .unwrap_or_default();
        let mut visited: BTreeSet<&String> = BTreeSet::new();
        while let Some(node) = stack.pop() {
            if node == start {
                recursive.insert(start.clone());
                break;
            }
            if visited.insert(node) {
                if let Some(next) = graph.get(node) {
                    stack.extend(next.iter());
                }
            }
        }
    }
    recursive
}

#[cfg(test)]
mod tests {
    use super::*;
    use eilid_asm::parse;

    fn analyze_source(source: &str) -> AppAnalysis {
        analyze(&parse(source).expect("test source parses"))
    }

    #[test]
    fn finds_call_sites_and_returns() {
        let analysis = analyze_source(
            "    .global main\nmain:\n    call #f\n    call #g\n    ret\nf:\n    ret\ng:\n    call #f\n    ret\n",
        );
        assert_eq!(analysis.call_sites.len(), 3);
        assert_eq!(analysis.returns.len(), 3);
        assert_eq!(analysis.entry_label.as_deref(), Some("main"));
        assert!(analysis.called_functions.contains("f"));
        assert!(analysis.called_functions.contains("g"));
        assert_eq!(analysis.call_sites[0].caller.as_deref(), Some("main"));
        assert_eq!(analysis.call_sites[2].caller.as_deref(), Some("g"));
        assert_eq!(analysis.indirect_call_count(), 0);
    }

    #[test]
    fn finds_indirect_calls_and_address_taken_labels() {
        let analysis = analyze_source(
            "main:\n    mov #handler, r13\n    call r13\n    ret\nhandler:\n    ret\n",
        );
        assert_eq!(analysis.indirect_call_count(), 1);
        assert!(analysis.address_taken.contains("handler"));
        assert_eq!(
            analysis.function_table_labels(),
            vec!["handler".to_string()]
        );
    }

    #[test]
    fn finds_isrs_and_interrupt_returns() {
        let analysis = analyze_source(
            "    .isr timer_isr, 8\nmain:\n    jmp main\ntimer_isr:\n    push r15\n    pop r15\n    reti\n",
        );
        assert_eq!(analysis.isr_handlers.get("timer_isr"), Some(&8));
        assert_eq!(analysis.interrupt_returns.len(), 1);
        // ISR handlers are not legal indirect-call targets.
        assert!(analysis.function_table_labels().is_empty());
    }

    #[test]
    fn flags_reserved_registers_and_indirect_jumps() {
        let analysis = analyze_source(
            "main:\n    mov #1, r4\n    mov r5, r10\n    br r12\n    mov r11, pc\n    ret\n",
        );
        let regs: Vec<Reg> = analysis
            .reserved_register_uses
            .iter()
            .map(|(_, r)| *r)
            .collect();
        assert!(regs.contains(&Reg::R4));
        assert!(regs.contains(&Reg::R5));
        assert_eq!(analysis.indirect_jumps.len(), 2);
    }

    #[test]
    fn detects_direct_and_mutual_recursion() {
        let analysis = analyze_source(
            "main:\n    call #a\n    ret\na:\n    call #a\n    ret\nb:\n    call #c\n    ret\nc:\n    call #b\n    ret\n",
        );
        assert!(analysis.recursive_functions.contains("a"));
        assert!(analysis.recursive_functions.contains("b"));
        assert!(analysis.recursive_functions.contains("c"));
        assert!(!analysis.recursive_functions.contains("main"));
    }

    #[test]
    fn non_recursive_graph_is_clean() {
        let analysis =
            analyze_source("main:\n    call #a\n    ret\na:\n    call #b\n    ret\nb:\n    ret\n");
        assert!(analysis.recursive_functions.is_empty());
    }

    #[test]
    fn numeric_call_targets_are_direct() {
        let analysis = analyze_source("main:\n    call #0xe100\n    ret\n");
        assert_eq!(analysis.call_sites.len(), 1);
        assert!(!analysis.call_sites[0].target.is_indirect());
        assert!(analysis.called_functions.is_empty());
    }
}
