//! The iterated instrumented-build pipeline (paper Figure 2).
//!
//! The paper builds each application three times:
//!
//! 1. the original source is built to obtain a listing (`app_1.lst`);
//! 2. the instrumenter inserts the EILID instrumentation and the result is
//!    built again — instruction addresses shift because of the inserted
//!    code, so the return addresses embedded by Figure 3 are still stale;
//! 3. the instrumentation is re-applied using the shifted listing and the
//!    final binary is built. Because the *set* of insertions is identical,
//!    the layout no longer moves and the embedded return addresses are
//!    correct.
//!
//! [`InstrumentedBuild::run`] reproduces that flow and records the
//! compile-time and binary-size metrics reported in Table IV.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use eilid_asm::{assemble_program, parse, Image, Program};

use crate::config::EilidConfig;
use crate::error::EilidError;
use crate::instrument::analysis::{analyze, AppAnalysis};
use crate::instrument::report::InstrumentationReport;
use crate::instrument::rewrite::{patch_return_addresses, rewrite};
use crate::sw::Runtime;

/// Compile-time and size metrics of one instrumented build.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BuildMetrics {
    /// Wall-clock time of the baseline (single-iteration) build.
    pub original_compile_time: Duration,
    /// Wall-clock time of the full EILID pipeline (analysis, rewriting and
    /// all build iterations).
    pub instrumented_compile_time: Duration,
    /// Number of build iterations performed (3, per Figure 2).
    pub iterations: usize,
    /// Application binary size without instrumentation, in bytes.
    pub original_binary_bytes: usize,
    /// Application binary size with instrumentation, in bytes.
    pub instrumented_binary_bytes: usize,
}

impl BuildMetrics {
    /// Compile-time overhead as a fraction (e.g. `0.30` for +30 %).
    pub fn compile_time_overhead(&self) -> f64 {
        let original = self.original_compile_time.as_secs_f64();
        if original == 0.0 {
            return 0.0;
        }
        self.instrumented_compile_time.as_secs_f64() / original - 1.0
    }

    /// Binary-size overhead as a fraction.
    pub fn binary_size_overhead(&self) -> f64 {
        if self.original_binary_bytes == 0 {
            return 0.0;
        }
        self.instrumented_binary_bytes as f64 / self.original_binary_bytes as f64 - 1.0
    }

    /// Binary growth in bytes.
    pub fn added_bytes(&self) -> usize {
        self.instrumented_binary_bytes
            .saturating_sub(self.original_binary_bytes)
    }
}

/// Everything produced by one run of the instrumented-build pipeline.
#[derive(Debug, Clone)]
pub struct BuildArtifacts {
    /// The original (uninstrumented) application image.
    pub original_image: Image,
    /// The final instrumented application image.
    pub instrumented_image: Image,
    /// The instrumented program (with patched return addresses).
    pub instrumented_program: Program,
    /// The instrumented assembly source.
    pub instrumented_source: String,
    /// Static analysis of the original application.
    pub analysis: AppAnalysis,
    /// What the instrumenter inserted, plus warnings.
    pub report: InstrumentationReport,
    /// Compile-time and size metrics (Table IV inputs).
    pub metrics: BuildMetrics,
}

/// The iterated instrumented-build pipeline.
#[derive(Debug, Clone)]
pub struct InstrumentedBuild {
    config: EilidConfig,
}

impl InstrumentedBuild {
    /// Creates a pipeline for the given configuration.
    pub fn new(config: EilidConfig) -> Self {
        InstrumentedBuild { config }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &EilidConfig {
        &self.config
    }

    /// Runs the full Figure 2 flow on `app_source`, linking the
    /// instrumentation against `runtime`.
    ///
    /// # Errors
    ///
    /// Returns [`EilidError`] if the application fails to parse or assemble,
    /// or if it cannot be instrumented (e.g. the function table is too
    /// small).
    pub fn run(&self, app_source: &str, runtime: &Runtime) -> Result<BuildArtifacts, EilidError> {
        // Baseline: one plain build of the original application.
        let original_start = Instant::now();
        let original_program = parse(app_source)?;
        let original_image = assemble_program(&original_program)?;
        let original_compile_time = original_start.elapsed();

        // EILID pipeline (three iterations, Figure 2).
        let instrumented_start = Instant::now();

        // Iteration 1: build the original source to obtain a listing. The
        // instrumenter only needs the source structure from this build; the
        // addresses it contains are superseded by iteration 2's listing.
        let program_iter1 = parse(app_source)?;
        let _listing_iter1 = assemble_program(&program_iter1)?;

        // Iteration 2: instrument and build; addresses shift.
        let analysis = analyze(&program_iter1);
        let mut rewritten = rewrite(
            &program_iter1,
            &analysis,
            &runtime.trampoline_symbols(),
            &self.config,
        )?;
        let image_iter2 = assemble_program(&rewritten.program)?;

        // Iteration 3: patch the shifted return addresses and rebuild.
        patch_return_addresses(
            &mut rewritten.program,
            &rewritten.patch_points,
            &image_iter2.listing,
        )?;
        let instrumented_image = assemble_program(&rewritten.program)?;
        debug_assert_eq!(
            instrumented_image.code_size(),
            image_iter2.code_size(),
            "instrumented layout must be stable between iterations 2 and 3"
        );
        let instrumented_compile_time = instrumented_start.elapsed();

        let metrics = BuildMetrics {
            original_compile_time,
            instrumented_compile_time,
            iterations: 3,
            original_binary_bytes: original_image.code_size(),
            instrumented_binary_bytes: instrumented_image.code_size(),
        };

        let instrumented_source = rewritten.program.to_source();
        Ok(BuildArtifacts {
            original_image,
            instrumented_image,
            instrumented_program: rewritten.program,
            instrumented_source,
            analysis,
            report: rewritten.report,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eilid_casu::{CasuPolicy, MemoryLayout};

    const APP: &str = "    .org 0xe000
    .global main
    .equ SIM_CTL, 0x0100
    .equ SIM_OUT, 0x0102
    .equ DONE, 0x00ff
main:
    mov #0x0400, sp
    mov #3, r10
    call #triple
    mov r10, &SIM_OUT
    mov #DONE, &SIM_CTL
hang:
    jmp hang
triple:
    mov r10, r11
    add r11, r10
    add r11, r10
    ret
";

    fn runtime() -> Runtime {
        Runtime::build(
            &EilidConfig::default(),
            &MemoryLayout::default(),
            &CasuPolicy::default(),
        )
        .unwrap()
    }

    #[test]
    fn pipeline_produces_consistent_artifacts() {
        let build = InstrumentedBuild::new(EilidConfig::default());
        let artifacts = build.run(APP, &runtime()).unwrap();
        assert_eq!(artifacts.metrics.iterations, 3);
        assert!(
            artifacts.metrics.instrumented_binary_bytes > artifacts.metrics.original_binary_bytes
        );
        assert!(artifacts.metrics.added_bytes() > 0);
        assert!(artifacts.metrics.binary_size_overhead() > 0.0);
        assert_eq!(artifacts.report.call_sites, 1);
        assert_eq!(artifacts.report.returns, 1);
        assert!(artifacts.instrumented_source.contains("NS_EILID_store_ra"));
        // The instrumented image still resolves the application symbols.
        assert!(artifacts.instrumented_image.symbol("triple").is_some());
        assert!(artifacts.instrumented_image.entry.is_some());
    }

    #[test]
    fn patched_return_address_points_after_the_call() {
        let build = InstrumentedBuild::new(EilidConfig::default());
        let artifacts = build.run(APP, &runtime()).unwrap();
        // Find the patched mov: its immediate must equal the address of the
        // instruction following `call #triple` in the final listing.
        let listing = &artifacts.instrumented_image.listing;
        let call_idx = artifacts
            .instrumented_program
            .lines
            .iter()
            .position(|l| match &l.statement {
                eilid_asm::Statement::Instruction { mnemonic, operands } => {
                    mnemonic == "call"
                        && operands
                            .first()
                            .map(|o| o.to_string() == "#triple")
                            .unwrap_or(false)
                }
                _ => false,
            })
            .expect("call #triple present");
        let expected_return = listing.entries[call_idx].end_address().unwrap();
        let mov_line = &artifacts.instrumented_program.lines[call_idx - 1];
        match &mov_line.statement {
            eilid_asm::Statement::Instruction { mnemonic, operands } => {
                assert_eq!(mnemonic, "call");
                // call #NS_EILID_store_ra sits directly before the call; the
                // patched mov is one line earlier.
                let _ = operands;
            }
            other => panic!("unexpected {other:?}"),
        }
        let mov_line = &artifacts.instrumented_program.lines[call_idx - 2];
        match &mov_line.statement {
            eilid_asm::Statement::Instruction { operands, .. } => {
                assert_eq!(
                    operands[0],
                    eilid_asm::OperandSpec::Immediate(eilid_asm::Expr::Number(expected_return))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn metrics_overheads_are_finite_and_positive() {
        let build = InstrumentedBuild::new(EilidConfig::default());
        let artifacts = build.run(APP, &runtime()).unwrap();
        let m = &artifacts.metrics;
        assert!(m.compile_time_overhead().is_finite());
        assert!(m.binary_size_overhead() > 0.0 && m.binary_size_overhead() < 2.0);
    }

    #[test]
    fn parse_errors_propagate() {
        let build = InstrumentedBuild::new(EilidConfig::default());
        assert!(build.run("    frobnicate r1\n", &runtime()).is_err());
    }
}
