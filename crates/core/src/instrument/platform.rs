//! Control-flow instruction sets of popular low-end platforms (paper
//! Table II).
//!
//! `EILIDinst` discovers instrumentation sites by their mnemonics; this
//! module records which mnemonics play the call / return /
//! return-from-interrupt / indirect-call roles on each supported platform.
//! The reproduction instruments the MSP430 dialect, but the table is kept
//! complete so the Table II harness can regenerate the paper's comparison.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A low-end MCU platform from Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// TI MSP430 (the platform of the paper's prototype and of this
    /// reproduction).
    Msp430,
    /// Atmel/Microchip AVR ATMega32.
    AvrAtmega32,
    /// Microchip PIC16.
    Pic16,
}

impl Platform {
    /// All platforms listed in Table II.
    pub const ALL: [Platform; 3] = [Platform::Msp430, Platform::AvrAtmega32, Platform::Pic16];

    /// Human-readable platform name as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Platform::Msp430 => "TI MSP430",
            Platform::AvrAtmega32 => "AVR ATMega32",
            Platform::Pic16 => "Microchip PIC16",
        }
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The control-flow instruction roles of one platform (one row of
/// Table II).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PlatformIsa {
    /// The platform.
    pub platform: Platform,
    /// Direct-call mnemonics.
    pub call: Vec<&'static str>,
    /// Function-return mnemonics.
    pub ret: Vec<&'static str>,
    /// Return-from-interrupt mnemonics.
    pub reti: Vec<&'static str>,
    /// Indirect-call mnemonics (register or pointer operands).
    pub indirect_call: Vec<&'static str>,
}

impl PlatformIsa {
    /// Returns the Table II row for `platform`.
    pub fn for_platform(platform: Platform) -> PlatformIsa {
        match platform {
            Platform::Msp430 => PlatformIsa {
                platform,
                call: vec!["call"],
                ret: vec!["ret"],
                reti: vec!["reti"],
                indirect_call: vec!["call"],
            },
            Platform::AvrAtmega32 => PlatformIsa {
                platform,
                call: vec!["call"],
                ret: vec!["ret"],
                reti: vec!["reti"],
                indirect_call: vec!["rcall", "icall"],
            },
            Platform::Pic16 => PlatformIsa {
                platform,
                call: vec!["call"],
                ret: vec!["return"],
                reti: vec!["retfie"],
                indirect_call: vec!["call", "rcall"],
            },
        }
    }

    /// All rows of Table II.
    pub fn table() -> Vec<PlatformIsa> {
        Platform::ALL
            .iter()
            .map(|&p| PlatformIsa::for_platform(p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper() {
        let rows = PlatformIsa::table();
        assert_eq!(rows.len(), 3);
        let msp = &rows[0];
        assert_eq!(msp.platform, Platform::Msp430);
        assert_eq!(msp.call, vec!["call"]);
        assert_eq!(msp.ret, vec!["ret"]);
        assert_eq!(msp.reti, vec!["reti"]);

        let avr = PlatformIsa::for_platform(Platform::AvrAtmega32);
        assert!(avr.indirect_call.contains(&"icall"));

        let pic = PlatformIsa::for_platform(Platform::Pic16);
        assert_eq!(pic.ret, vec!["return"]);
        assert_eq!(pic.reti, vec!["retfie"]);
    }

    #[test]
    fn platform_names() {
        assert_eq!(Platform::Msp430.to_string(), "TI MSP430");
        assert_eq!(Platform::ALL.len(), 3);
    }
}
