//! Assembly rewriting: inserting the EILID instrumentation.
//!
//! The rewriter reproduces the paper's instrumentation templates:
//!
//! * Figure 3 — before every call: load the call's return address into `r6`
//!   and call `NS_EILID_store_ra`;
//! * Figure 4 — before every `ret`: load the return address from the main
//!   stack into `r6` and call `NS_EILID_check_ra`;
//! * Figures 5/6 — at every ISR entry / before every `reti`: load the saved
//!   PC and SR into `r6`/`r7` and call `NS_EILID_store_rfi` /
//!   `NS_EILID_check_rfi`;
//! * Figure 7 — at the program entry point: register every legitimate
//!   function address via `NS_EILID_store_ind`;
//! * Figure 8 — before every indirect call: load the target into `r6` and
//!   call `NS_EILID_check_ind`.
//!
//! Return addresses depend on the final layout of the *instrumented* binary,
//! so the `mov #…, r6` of Figure 3 is emitted with a placeholder and patched
//! from the listing of the next build iteration (Figure 2's iterated
//! compilation), exactly like the paper's flow.

use std::collections::BTreeMap;

use eilid_asm::{Expr, Listing, OperandSpec, Program, SourceLine, Statement};
use eilid_msp430::Reg;

use crate::config::EilidConfig;
use crate::error::EilidError;
use crate::instrument::analysis::{AppAnalysis, CallTarget};
use crate::instrument::report::{InstrumentationReport, Warning};
use crate::sw::dispatch::Selector;

/// A `mov #…, r6` whose immediate must be patched to the call site's return
/// address once the instrumented layout is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchPoint {
    /// Index (into the instrumented program's lines) of the `mov` to patch.
    pub mov_line_index: usize,
    /// Index of the original call instruction whose end address is the
    /// return address to store.
    pub call_line_index: usize,
}

/// Output of the rewriting step.
#[derive(Debug, Clone)]
pub struct RewrittenProgram {
    /// The instrumented program (with placeholder return addresses).
    pub program: Program,
    /// Placeholders to patch after the next build iteration.
    pub patch_points: Vec<PatchPoint>,
    /// Instrumentation statistics and warnings.
    pub report: InstrumentationReport,
}

fn instruction(mnemonic: &str, operands: Vec<OperandSpec>) -> SourceLine {
    let statement = Statement::Instruction {
        mnemonic: mnemonic.to_string(),
        operands,
    };
    SourceLine::synthetic(statement, "")
}

fn call_trampoline(selector: Selector) -> SourceLine {
    instruction(
        "call",
        vec![OperandSpec::Immediate(Expr::Symbol(
            selector.trampoline_symbol().to_string(),
        ))],
    )
}

fn mov_imm_to_r6(expr: Expr) -> SourceLine {
    instruction(
        "mov",
        vec![OperandSpec::Immediate(expr), OperandSpec::Register(Reg::R6)],
    )
}

/// Splits a line that carries both a label and a statement into a label-only
/// line and a statement-only line, so instrumentation can be inserted
/// between them (jumps to the label must still pass through the inserted
/// code).
fn split_label(line: &SourceLine) -> (Option<SourceLine>, SourceLine) {
    if line.label.is_some() && line.statement != Statement::Empty {
        let label_line = SourceLine {
            number: line.number,
            label: line.label.clone(),
            statement: Statement::Empty,
            text: String::new(),
        };
        let statement_line = SourceLine {
            number: line.number,
            label: None,
            statement: line.statement.clone(),
            text: String::new(),
        };
        (Some(label_line), statement_line)
    } else {
        (None, line.clone())
    }
}

/// Rewrites `original` according to the analysis and configuration.
///
/// `trampolines` maps each `NS_EILID_*` symbol to its address in the
/// already-assembled runtime image; the rewriter injects them as `.equ`
/// definitions so the instrumented application links against the fixed ROM.
///
/// # Errors
///
/// Returns [`EilidError::Instrument`] when forward-edge protection is
/// enabled but the function table cannot hold all discovered functions, or
/// when an entry point is required but missing.
pub fn rewrite(
    original: &Program,
    analysis: &AppAnalysis,
    trampolines: &BTreeMap<String, u16>,
    config: &EilidConfig,
) -> Result<RewrittenProgram, EilidError> {
    let mut report = InstrumentationReport::default();
    collect_warnings(original, analysis, &mut report);

    let function_labels = analysis.function_table_labels();
    if config.protect_indirect_calls
        && function_labels.len() > usize::from(config.function_table_capacity)
    {
        return Err(EilidError::Instrument(format!(
            "{} functions exceed the function-table capacity of {}",
            function_labels.len(),
            config.function_table_capacity
        )));
    }
    let needs_registration = config.protect_indirect_calls && analysis.indirect_call_count() > 0;
    if needs_registration && analysis.entry_label.is_none() {
        return Err(EilidError::Instrument(
            "forward-edge protection needs a `.global` entry point to register functions".into(),
        ));
    }

    let mut lines: Vec<SourceLine> = Vec::with_capacity(original.lines.len() * 2);
    let mut patch_points = Vec::new();

    // Link against the runtime: one `.equ` per trampoline symbol.
    for (symbol, addr) in trampolines {
        lines.push(SourceLine::synthetic(
            Statement::Directive(eilid_asm::Directive::Equ {
                name: symbol.clone(),
                value: Expr::Number(*addr),
            }),
            format!("    .equ {symbol}, 0x{addr:04x}"),
        ));
        report.inserted_lines += 1;
    }

    let is_call_site: BTreeMap<usize, &CallTarget> = analysis
        .call_sites
        .iter()
        .map(|c| (c.line_index, &c.target))
        .collect();
    let is_return: std::collections::BTreeSet<usize> = analysis.returns.iter().copied().collect();
    let is_reti: std::collections::BTreeSet<usize> =
        analysis.interrupt_returns.iter().copied().collect();

    for (index, line) in original.lines.iter().enumerate() {
        let is_entry_line = analysis
            .entry_label
            .as_deref()
            .map(|entry| line.label.as_deref() == Some(entry))
            .unwrap_or(false);
        let is_isr_entry = line
            .label
            .as_deref()
            .map(|l| analysis.isr_handlers.contains_key(l))
            .unwrap_or(false);

        // --- instrumentation that goes right after a label ---
        if (is_entry_line && needs_registration) || (is_isr_entry && config.protect_interrupts) {
            let (label_line, mut statement_line) = split_label(line);
            if let Some(label_line) = label_line {
                lines.push(label_line);
            } else {
                // The line is label-only: emit it as-is and continue with an
                // empty statement so the label is not defined twice.
                lines.push(line.clone());
                statement_line = SourceLine::synthetic(Statement::Empty, "");
            }

            if is_entry_line && needs_registration {
                // Figure 7: register every legitimate function address.
                for function in &function_labels {
                    lines.push(mov_imm_to_r6(Expr::Symbol(function.clone())));
                    lines.push(call_trampoline(Selector::StoreIndirectTarget));
                    report.inserted_lines += 2;
                }
                report.functions_registered = function_labels.len();
            }
            if is_isr_entry && config.protect_interrupts {
                // Figure 5: capture the interrupt context before the ISR
                // body runs. Unlike the paper's simplified listing, the
                // EILID working registers r4/r6/r7 are saved first: the
                // interrupt may have preempted an instrumentation sequence
                // in non-secure code that still needs their values. With the
                // three words pushed, the saved PC sits at SP+8 and the
                // saved SR at SP+6.
                for reg in [Reg::R4, Reg::R6, Reg::R7] {
                    lines.push(instruction("push", vec![OperandSpec::Register(reg)]));
                }
                lines.push(instruction(
                    "mov",
                    vec![
                        OperandSpec::Indexed {
                            reg: Reg::SP,
                            offset: Expr::Number(8),
                        },
                        OperandSpec::Register(Reg::R6),
                    ],
                ));
                lines.push(instruction(
                    "mov",
                    vec![
                        OperandSpec::Indexed {
                            reg: Reg::SP,
                            offset: Expr::Number(6),
                        },
                        OperandSpec::Register(Reg::R7),
                    ],
                ));
                lines.push(call_trampoline(Selector::StoreInterruptContext));
                report.inserted_lines += 6;
                report.isr_entries += 1;
            }

            // Emit the statement part of the split line (if any) and continue
            // with per-statement instrumentation below by falling through to
            // the shared handling with `statement_line`.
            push_statement_with_site_instrumentation(
                &mut lines,
                &mut patch_points,
                &mut report,
                &statement_line,
                index,
                is_call_site.get(&index).copied(),
                is_return.contains(&index),
                is_reti.contains(&index),
                config,
            );
            continue;
        }

        push_statement_with_site_instrumentation(
            &mut lines,
            &mut patch_points,
            &mut report,
            line,
            index,
            is_call_site.get(&index).copied(),
            is_return.contains(&index),
            is_reti.contains(&index),
            config,
        );
    }

    Ok(RewrittenProgram {
        program: Program { lines },
        patch_points,
        report,
    })
}

#[allow(clippy::too_many_arguments)]
fn push_statement_with_site_instrumentation(
    lines: &mut Vec<SourceLine>,
    patch_points: &mut Vec<PatchPoint>,
    report: &mut InstrumentationReport,
    line: &SourceLine,
    _original_index: usize,
    call_target: Option<&CallTarget>,
    is_return: bool,
    is_reti: bool,
    config: &EilidConfig,
) {
    let needs_pre_instrumentation = (call_target.is_some()
        && (config.protect_returns || config.protect_indirect_calls))
        || (is_return && config.protect_returns)
        || (is_reti && config.protect_interrupts);

    // Keep any label ahead of the inserted code so branches to it are
    // protected too.
    let (label_line, statement_line) = if needs_pre_instrumentation {
        split_label(line)
    } else {
        (None, line.clone())
    };
    if let Some(label_line) = label_line {
        lines.push(label_line);
    }

    if let Some(target) = call_target {
        // Figure 8: validate the target of an indirect call.
        if config.protect_indirect_calls {
            if let CallTarget::Indirect(reg) = target {
                lines.push(instruction(
                    "mov",
                    vec![OperandSpec::Register(*reg), OperandSpec::Register(Reg::R6)],
                ));
                lines.push(call_trampoline(Selector::CheckIndirectTarget));
                report.inserted_lines += 2;
                report.indirect_calls += 1;
            }
        }
        // Figure 3: store the return address. The immediate is a placeholder
        // patched from the next iteration's listing. The placeholder must
        // not be representable by the constant generators, so that patching
        // in the real PMEM address never changes the instruction size
        // between build iterations.
        if config.protect_returns {
            let mov_index = lines.len();
            lines.push(mov_imm_to_r6(Expr::Number(0xAAAA)));
            lines.push(call_trampoline(Selector::StoreReturnAddress));
            report.inserted_lines += 2;
            report.call_sites += 1;
            // The call instruction will be pushed right below; its index is
            // the current length (after the two inserted lines).
            patch_points.push(PatchPoint {
                mov_line_index: mov_index,
                call_line_index: lines.len(),
            });
        }
    }

    if is_return && config.protect_returns {
        // Figure 4: check the return address sitting on top of the main
        // stack.
        lines.push(instruction(
            "mov",
            vec![
                OperandSpec::Indirect(Reg::SP),
                OperandSpec::Register(Reg::R6),
            ],
        ));
        lines.push(call_trampoline(Selector::CheckReturnAddress));
        report.inserted_lines += 2;
        report.returns += 1;
    }

    if is_reti && config.protect_interrupts {
        // Figure 6: re-check the interrupt context before returning, then
        // restore the saved working registers (pushed at the ISR entry) so
        // the interrupted code resumes with its r4/r6/r7 intact.
        lines.push(instruction(
            "mov",
            vec![
                OperandSpec::Indexed {
                    reg: Reg::SP,
                    offset: Expr::Number(8),
                },
                OperandSpec::Register(Reg::R6),
            ],
        ));
        lines.push(instruction(
            "mov",
            vec![
                OperandSpec::Indexed {
                    reg: Reg::SP,
                    offset: Expr::Number(6),
                },
                OperandSpec::Register(Reg::R7),
            ],
        ));
        lines.push(call_trampoline(Selector::CheckInterruptContext));
        for reg in [Reg::R7, Reg::R6, Reg::R4] {
            lines.push(instruction("pop", vec![OperandSpec::Register(reg)]));
        }
        report.inserted_lines += 6;
        report.isr_exits += 1;
    }

    lines.push(statement_line);
}

fn collect_warnings(
    _original: &Program,
    analysis: &AppAnalysis,
    report: &mut InstrumentationReport,
) {
    for (index, register) in &analysis.reserved_register_uses {
        report.warnings.push(Warning::ReservedRegisterUse {
            line: *index + 1,
            register: *register,
        });
    }
    for index in &analysis.indirect_jumps {
        report
            .warnings
            .push(Warning::IndirectJump { line: *index + 1 });
    }
    for function in &analysis.recursive_functions {
        report.warnings.push(Warning::Recursion {
            function: function.clone(),
        });
    }
}

/// Patches every [`PatchPoint`]'s `mov #…, r6` with the call's return
/// address as found in `listing` (the listing of the instrumented build,
/// whose entries correspond one-to-one with the rewritten program's lines).
///
/// # Errors
///
/// Returns [`EilidError::Instrument`] if a patch point refers to a line that
/// emitted no code (which would indicate an internal inconsistency).
pub fn patch_return_addresses(
    program: &mut Program,
    patch_points: &[PatchPoint],
    listing: &Listing,
) -> Result<(), EilidError> {
    for point in patch_points {
        let return_address = listing
            .entries
            .get(point.call_line_index)
            .and_then(|e| e.end_address())
            .ok_or_else(|| {
                EilidError::Instrument(format!(
                    "call site at rewritten line {} emitted no code",
                    point.call_line_index
                ))
            })?;
        let line = program.lines.get_mut(point.mov_line_index).ok_or_else(|| {
            EilidError::Instrument(format!("patch point {} out of range", point.mov_line_index))
        })?;
        match &mut line.statement {
            Statement::Instruction { mnemonic, operands }
                if mnemonic == "mov" && operands.len() == 2 =>
            {
                operands[0] = OperandSpec::Immediate(Expr::Number(return_address));
            }
            _ => {
                return Err(EilidError::Instrument(format!(
                    "patch point {} does not refer to a mov instruction",
                    point.mov_line_index
                )))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::analysis::analyze;
    use eilid_asm::parse;

    fn trampolines() -> BTreeMap<String, u16> {
        Selector::ALL
            .iter()
            .enumerate()
            .map(|(i, s)| (s.trampoline_symbol().to_string(), 0xF700 + 8 * i as u16))
            .collect()
    }

    fn rewrite_source(source: &str, config: &EilidConfig) -> RewrittenProgram {
        let program = parse(source).expect("parses");
        let analysis = analyze(&program);
        rewrite(&program, &analysis, &trampolines(), config).expect("rewrites")
    }

    #[test]
    fn call_and_ret_instrumentation_matches_figures_3_and_4() {
        let rewritten = rewrite_source(
            "    .global main\nmain:\n    call #foo\n    ret\nfoo:\n    ret\n",
            &EilidConfig::default(),
        );
        let source = rewritten.program.to_source();
        assert!(source.contains("call #NS_EILID_store_ra"));
        assert!(source.contains("call #NS_EILID_check_ra"));
        assert!(source.contains("mov @r1, r6"));
        assert_eq!(rewritten.report.call_sites, 1);
        assert_eq!(rewritten.report.returns, 2);
        assert_eq!(rewritten.patch_points.len(), 1);
        // The patch point's call line really is the original call.
        let call_line = &rewritten.program.lines[rewritten.patch_points[0].call_line_index];
        assert!(call_line.statement.is_instruction("call"));
    }

    #[test]
    fn isr_instrumentation_matches_figures_5_and_6() {
        let rewritten = rewrite_source(
            "    .isr timer_isr, 8\nmain:\n    jmp main\ntimer_isr:\n    push r15\n    pop r15\n    reti\n",
            &EilidConfig::default(),
        );
        let source = rewritten.program.to_source();
        assert!(source.contains("call #NS_EILID_store_rfi"));
        assert!(source.contains("call #NS_EILID_check_rfi"));
        assert!(source.contains("push r4"));
        assert!(source.contains("mov 8(r1), r6"));
        assert!(source.contains("mov 6(r1), r7"));
        assert!(source.contains("pop r4"));
        assert_eq!(rewritten.report.isr_entries, 1);
        assert_eq!(rewritten.report.isr_exits, 1);
        // The store must come after the label but before the ISR body.
        let isr_label_pos = rewritten
            .program
            .lines
            .iter()
            .position(|l| l.label.as_deref() == Some("timer_isr"))
            .unwrap();
        let store_pos = rewritten
            .program
            .lines
            .iter()
            .position(|l| l.text.is_empty() && matches!(&l.statement, Statement::Instruction { mnemonic, operands } if mnemonic == "call" && operands.first().map(|o| o.to_string().contains("store_rfi")).unwrap_or(false)))
            .unwrap();
        // The ISR body's own `push r15` must come after the inserted
        // context-capture sequence (the sequence itself pushes r4/r6/r7).
        let push_r15_pos = rewritten
            .program
            .lines
            .iter()
            .position(|l| matches!(&l.statement, Statement::Instruction { mnemonic, operands } if mnemonic == "push" && operands == &vec![OperandSpec::Register(Reg::R15)]))
            .unwrap();
        assert!(isr_label_pos < store_pos);
        assert!(store_pos < push_r15_pos);
    }

    #[test]
    fn indirect_call_and_registration_match_figures_7_and_8() {
        let rewritten = rewrite_source(
            "    .global main\nmain:\n    mov #handler, r13\n    call r13\n    ret\nhandler:\n    ret\n",
            &EilidConfig::default(),
        );
        let source = rewritten.program.to_source();
        assert!(source.contains("call #NS_EILID_store_ind"));
        assert!(source.contains("call #NS_EILID_check_ind"));
        assert!(source.contains("mov r13, r6"));
        assert!(source.contains("mov #handler, r6"));
        assert_eq!(rewritten.report.indirect_calls, 1);
        assert_eq!(rewritten.report.functions_registered, 1);
    }

    #[test]
    fn disabled_protections_insert_nothing_for_their_sites() {
        let config = EilidConfig {
            protect_returns: false,
            protect_interrupts: false,
            protect_indirect_calls: false,
            ..EilidConfig::default()
        };
        let rewritten = rewrite_source(
            "    .global main\nmain:\n    call #foo\n    ret\nfoo:\n    ret\n",
            &config,
        );
        let source = rewritten.program.to_source();
        // The `.equ` linkage lines still mention the trampoline symbols, but
        // no calls to them may be inserted.
        assert!(!source.contains("call #NS_EILID_store_ra"));
        assert!(!source.contains("call #NS_EILID_check_ra"));
        assert_eq!(rewritten.report.total_sites(), 0);
    }

    #[test]
    fn function_table_overflow_is_an_error() {
        let config = EilidConfig {
            function_table_capacity: 1,
            ..EilidConfig::default()
        };
        let program = parse(
            "    .global main\nmain:\n    mov #a, r13\n    mov #b, r12\n    call r13\n    ret\na:\n    ret\nb:\n    ret\n",
        )
        .unwrap();
        let analysis = analyze(&program);
        let err = rewrite(&program, &analysis, &trampolines(), &config).unwrap_err();
        assert!(err.to_string().contains("function-table capacity"));
    }

    #[test]
    fn labelled_sites_keep_their_labels_ahead_of_the_checks() {
        let rewritten = rewrite_source(
            "    .global main\nmain:\n    call #foo\n    ret\nfoo: ret\n",
            &EilidConfig::default(),
        );
        // `foo: ret` must become `foo:` / check instrumentation / `ret`.
        let foo_pos = rewritten
            .program
            .lines
            .iter()
            .position(|l| l.label.as_deref() == Some("foo"))
            .unwrap();
        assert_eq!(rewritten.program.lines[foo_pos].statement, Statement::Empty);
        let ret_after: Vec<&SourceLine> = rewritten.program.lines[foo_pos..]
            .iter()
            .filter(|l| l.statement.is_instruction("ret"))
            .collect();
        assert!(!ret_after.is_empty());
        let check_pos = rewritten.program.lines[foo_pos..]
            .iter()
            .position(|l| matches!(&l.statement, Statement::Instruction { mnemonic, operands } if mnemonic == "call" && operands.first().map(|o| o.to_string().contains("check_ra")).unwrap_or(false)))
            .unwrap();
        let ret_pos = rewritten.program.lines[foo_pos..]
            .iter()
            .position(|l| l.statement.is_instruction("ret"))
            .unwrap();
        assert!(check_pos < ret_pos);
    }

    #[test]
    fn warnings_are_propagated() {
        let rewritten = rewrite_source(
            "    .global main\nmain:\n    mov #1, r4\n    br r12\n    call #rec\n    ret\nrec:\n    call #rec\n    ret\n",
            &EilidConfig::default(),
        );
        let warnings = &rewritten.report.warnings;
        assert!(warnings
            .iter()
            .any(|w| matches!(w, Warning::ReservedRegisterUse { .. })));
        assert!(warnings
            .iter()
            .any(|w| matches!(w, Warning::IndirectJump { .. })));
        assert!(warnings
            .iter()
            .any(|w| matches!(w, Warning::Recursion { .. })));
    }

    #[test]
    fn patching_fills_in_return_addresses() {
        let original =
            parse("    .global main\nmain:\n    call #foo\n    ret\nfoo:\n    ret\n").unwrap();
        let analysis = analyze(&original);
        let mut rewritten = rewrite(
            &original,
            &analysis,
            &trampolines(),
            &EilidConfig::default(),
        )
        .unwrap();
        let image = eilid_asm::assemble_program(&rewritten.program).unwrap();
        patch_return_addresses(
            &mut rewritten.program,
            &rewritten.patch_points,
            &image.listing,
        )
        .unwrap();
        // The patched immediate equals the address right after the call.
        let call_index = rewritten.patch_points[0].call_line_index;
        let expected = image.listing.entries[call_index].end_address().unwrap();
        let mov_line = &rewritten.program.lines[rewritten.patch_points[0].mov_line_index];
        match &mov_line.statement {
            Statement::Instruction { operands, .. } => {
                assert_eq!(operands[0], OperandSpec::Immediate(Expr::Number(expected)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Re-assembling after the patch succeeds and keeps the same layout.
        let patched_image = eilid_asm::assemble_program(&rewritten.program).unwrap();
        assert_eq!(patched_image.code_size(), image.code_size());
    }
}
