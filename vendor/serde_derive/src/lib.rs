//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! The derive macros here parse just enough of the item declaration to
//! find the type name and emit inert `Serialize`/`Deserialize` impls.
//! `#[serde(...)]` helper attributes are accepted and ignored. Generic
//! type parameters are not supported (no type in this workspace derives
//! serde on a generic type); lifetimes are not supported either.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the identifier that names the derived `struct`/`enum`.
fn type_name(input: TokenStream) -> String {
    let mut saw_keyword = false;
    // Non-ident trees (attribute contents, visibility groups, …) are
    // skipped.
    for tree in input {
        if let TokenTree::Ident(ident) = tree {
            let text = ident.to_string();
            if saw_keyword {
                return text;
            }
            if text == "struct" || text == "enum" {
                saw_keyword = true;
            }
        }
    }
    panic!("serde stub derive: could not find a struct/enum name in the input");
}

/// Inert stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {{\n\
         serializer.serialize_unit()\n\
         }}\n\
         }}"
    )
    .parse()
    .expect("stub Serialize impl parses")
}

/// Inert stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<D: serde::Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {{\n\
         Err(<D::Error as serde::de::Error>::custom(\"stub serde cannot deserialize\"))\n\
         }}\n\
         }}"
    )
    .parse()
    .expect("stub Deserialize impl parses")
}
