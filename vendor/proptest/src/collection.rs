//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::rng::TestRng;
use crate::strategy::Strategy;
use rand::Rng as _;

/// Strategy producing vectors of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose length is drawn from `size` (half-open).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
