//! The [`Strategy`] trait and combinators (no shrinking).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;
use rand::Rng as _;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategies {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Object-safe strategy wrapper used by [`crate::prop_oneof!`].
pub struct BoxedStrategy<T> {
    generate: Box<dyn Fn(&mut TestRng) -> T>,
    _marker: PhantomData<T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// Boxes a strategy, erasing its concrete type.
pub fn boxed<S>(strategy: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    BoxedStrategy {
        generate: Box::new(move |rng| strategy.generate(rng)),
        _marker: PhantomData,
    }
}

/// Uniform choice between several strategies with the same value type.
pub struct Union<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `choices` (must be non-empty).
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Union { choices }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.gen_range(0..self.choices.len());
        self.choices[index].generate(rng)
    }
}
