//! Test-runner configuration (`ProptestConfig`).

/// Configuration for a [`crate::proptest!`] block.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` iterations per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}
