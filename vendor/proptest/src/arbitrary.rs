//! `any::<T>()` support for primitive types.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use rand::RngCore as _;
use std::marker::PhantomData;

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Generates one value covering the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
