//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert*`, the [`Strategy`]
//! trait with `prop_map`, [`prop_oneof!`], `Just`, `any::<T>()`, integer
//! range strategies, tuple strategies and `collection::vec`. Generation is
//! deterministic (seeded per test from the test name) and there is no
//! shrinking: a failing case reports the raw inputs via the panic message
//! of the underlying assertion.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Deterministic generator state used by strategies.
pub mod rng {
    pub use rand::rngs::StdRng as TestRng;
    pub use rand::{Rng, RngCore, SeedableRng};

    /// Derives a stable 64-bit seed from a test name.
    pub fn seed_from_name(name: &str) -> u64 {
        // FNV-1a, good enough to decorrelate per-test streams.
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

/// Runs `cases` iterations of a property body. Used by [`proptest!`].
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::rng::SeedableRng as _;
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::rng::TestRng::seed_from_u64(
                    $crate::rng::seed_from_name(concat!(module_path!(), "::", stringify!($name))),
                );
                for case in 0..config.cases {
                    let ($($arg,)*) = (
                        $($crate::strategy::Strategy::generate(&($strategy), &mut rng),)*
                    );
                    let run = || -> () { $body };
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest stub: case {case}/{} of {} failed",
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Picks uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}
