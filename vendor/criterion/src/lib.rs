//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the benchmark-definition API this workspace's benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `BenchmarkId`,
//! `Bencher::iter`) with simple wall-clock timing: each benchmark runs a
//! short warm-up followed by `sample_size` timed samples and prints the
//! mean per-iteration time. No statistics, plots or baselines.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier re-exported from `std::hint`.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up; also sizes the per-sample iteration count so that very
        // fast closures get averaged over more than one call.
        let warmup_start = Instant::now();
        black_box(f());
        let once = warmup_start.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 1000) as usize;

        let mut total = Duration::ZERO;
        let mut iterations = 0usize;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            total += start.elapsed();
            iterations += iters_per_sample;
        }
        self.mean = total / iterations.max(1) as u32;
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size.max(1),
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        println!("{}/{id}: mean {:?} per iteration", self.name, bencher.mean);
        self.criterion.benchmarks_run += 1;
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.run_one(&id, f);
        self
    }

    /// Benchmarks `f` with an input value under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.to_string();
        self.run_one(&id, |b| f(b, input));
        self
    }

    /// Finishes the group (no-op in the stub).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function("bench", f);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
