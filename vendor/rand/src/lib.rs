//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the slice of the rand 0.8 API this workspace uses —
//! `StdRng`, `SeedableRng::seed_from_u64` and `Rng::gen_range` over
//! integer ranges — on top of a deterministic SplitMix64 generator.

use std::ops::{Range, RangeInclusive};

/// Core trait producing raw random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types that can be drawn uniformly from a range.
pub trait UniformInt: Copy + PartialOrd {
    /// Draws a value in `[low, high)` (half-open).
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// The next representable value above `self`, saturating.
    fn saturating_next(self) -> Self;
}

macro_rules! uniform_int {
    ($($ty:ty),* $(,)?) => {
        $(
            impl UniformInt for $ty {
                fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range called with an empty range");
                    let span = (high as i128 - low as i128) as u128;
                    let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    ((low as i128) + draw as i128) as $ty
                }
                fn saturating_next(self) -> Self {
                    self.checked_add(1).unwrap_or(self)
                }
            }
        )*
    };
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from (mirrors `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_half_open(rng, start, end.saturating_next())
    }
}

/// User-facing random-value methods (blanket-implemented for every core rng).
pub trait Rng: RngCore {
    /// Draws a uniform value from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public-domain reference constants).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_sequences_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: u16 = rng.gen_range(0xE000..0xF700);
            assert!((0xE000..0xF700).contains(&v));
            let w: i16 = rng.gen_range(-512i16..=511);
            assert!((-512..=511).contains(&w));
            let u: usize = rng.gen_range(1..40);
            assert!((1..40).contains(&u));
        }
    }
}
