//! Offline stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! Provides the `Serialize`/`Deserialize` trait vocabulary plus derive
//! macros that emit inert implementations. Nothing in this workspace
//! serializes data yet, so the stub keeps type annotations meaningful
//! (and the real serde drop-in compatible) without pulling in a registry
//! dependency.

pub use serde_derive::{Deserialize, Serialize};

/// Serialization error vocabulary.
pub mod ser {
    /// Trait for serializer error types.
    pub trait Error: Sized + std::fmt::Debug {
        /// Builds an error from a display-able message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization error vocabulary.
pub mod de {
    /// Trait for deserializer error types.
    pub trait Error: Sized + std::fmt::Debug {
        /// Builds an error from a display-able message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// A data format that can serialize values.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: ser::Error;

    /// Serializes a unit value (the stub derive lowers every value to this).
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;

    /// Serializes a byte slice.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error> {
        let _ = v;
        self.serialize_unit()
    }
}

/// A data format that can deserialize values.
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error: de::Error;
}

/// A value that can be serialized.
pub trait Serialize {
    /// Serializes `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A value that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value with the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

macro_rules! stub_impls {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.serialize_unit()
                }
            }
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(_: D) -> Result<Self, D::Error> {
                    Err(<D::Error as de::Error>::custom("stub serde cannot deserialize"))
                }
            }
        )*
    };
}

stub_impls!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, char, String);

impl<T> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de, T> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(_: D) -> Result<Self, D::Error> {
        Err(<D::Error as de::Error>::custom(
            "stub serde cannot deserialize",
        ))
    }
}

impl<T> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de, T> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(_: D) -> Result<Self, D::Error> {
        Err(<D::Error as de::Error>::custom(
            "stub serde cannot deserialize",
        ))
    }
}

impl<T, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de, T, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(_: D) -> Result<Self, D::Error> {
        Err(<D::Error as de::Error>::custom(
            "stub serde cannot deserialize",
        ))
    }
}
