#!/bin/sh
# Telemetry end-to-end smoke: serve a gateway in the background, sweep
# 64 devices through it, scrape the live snapshot over the wire with
# `fleet metrics`, and check the scraped counters saw every report.
# A second sweep lets the server reach --expect-reports and exit
# cleanly; every failure path kills the background server so it never
# holds the port for the next run.
set -u

CLI=./target/release/eilid-cli
ADDR=127.0.0.1:4811
SNAPSHOT=/tmp/obs_smoke.prom

"$CLI" fleet serve --addr "$ADDR" --devices 64 --threads 4 --expect-reports 128 &
SERVE=$!
trap 'kill $SERVE 2>/dev/null' EXIT

ok=1
for attempt in 1 2 3 4 5 6 7 8 9 10; do
    sleep 1
    if "$CLI" fleet connect --addr "$ADDR" --devices 64 --clients 4; then
        ok=0
        break
    fi
done
if [ "$ok" -ne 0 ]; then
    echo "obs-smoke: connect never succeeded" >&2
    exit 1
fi

"$CLI" fleet metrics --gateway "$ADDR" > "$SNAPSHOT" || {
    echo "obs-smoke: metrics scrape failed" >&2
    exit 1
}
if ! grep -q "^eilid_service_reports_verified_total 64$" "$SNAPSHOT" ||
    ! grep -q "^eilid_gateway_pass_us_count" "$SNAPSHOT"; then
    echo "obs-smoke: scraped snapshot missing expected metrics" >&2
    cat "$SNAPSHOT" >&2
    exit 1
fi
echo "obs-smoke: scraped $(wc -l < "$SNAPSHOT") metric lines"

"$CLI" fleet connect --addr "$ADDR" --devices 64 --clients 4 || {
    echo "obs-smoke: second sweep failed" >&2
    exit 1
}
trap - EXIT
wait "$SERVE"
