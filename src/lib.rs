//! Umbrella crate of the EILID reproduction workspace.
//!
//! This crate exists to host the workspace-level examples (`examples/`) and
//! integration tests (`tests/`); the actual functionality lives in the
//! member crates, re-exported here for convenience:
//!
//! * [`eilid`] — the core library (instrumenter, trusted software, device);
//! * [`eilid_msp430`] — the MSP430 instruction-set simulator substrate;
//! * [`eilid_asm`] — the assembler/toolchain substrate;
//! * [`eilid_casu`] — the CASU active Root-of-Trust (hardware monitor,
//!   authenticated updates);
//! * [`eilid_workloads`] — the paper's seven evaluation applications and the
//!   run-time attack injectors;
//! * [`eilid_fleet`] — fleet-scale orchestration: concurrent device
//!   simulation, batched attestation sweeps and staged OTA campaigns;
//! * [`eilid_hwcost`] — the hardware-cost model and prior-work comparison;
//! * [`eilid_bench`] — the harness that regenerates every table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use eilid;
pub use eilid_asm;
pub use eilid_bench;
pub use eilid_casu;
pub use eilid_fleet;
pub use eilid_hwcost;
pub use eilid_msp430;
pub use eilid_workloads;
