//! `eilid-cli` — command-line front end for the EILID reproduction.
//!
//! ```text
//! eilid-cli instrument <app.s>             print the instrumented assembly + report
//! eilid-cli run <app.s> [--protect] [--max-cycles N]
//!                                          assemble (and optionally protect) then simulate
//! eilid-cli disasm <app.s>                 assemble and disassemble the image
//! eilid-cli workloads                      list the paper's evaluation applications
//! eilid-cli attack <workload> <attack>     inject a threat-model attack on a protected device
//! eilid-cli fleet run [--devices N] [--threads N] [--cycles N]
//!                                          simulate a fleet slice and print health counts
//! eilid-cli fleet attest [--devices N] [--threads N] [--flat] [--sweeps N]
//!                        [--aggregated] [--gateway ADDR | --gateways A,B,..]
//!                                          attestation sweep + throughput (in-process,
//!                                          gateway-driven over TCP, or fanned out over a
//!                                          multi-gateway cluster); `--aggregated` sweeps
//!                                          via per-shard aggregate evidence roots — the
//!                                          operator verifies O(shards) MACs, not O(devices)
//! eilid-cli fleet campaign [--devices N] [--threads N] [--inject-bad]
//!                          [--gateway ADDR | --gateways A,B,..]
//!                                          staged OTA campaign (canary → full), in-process
//!                                          or wire-driven through one gateway's — or a
//!                                          cluster's — operator plane
//! eilid-cli fleet serve [--addr A] [--devices N] [--threads N] [--expect-reports N]
//!                       [--poller epoll|scan] [--batch N]
//!                                          run the networked attestation gateway
//! eilid-cli fleet connect --addr A [--devices N] [--threads N] [--clients N]
//!                         [--pipeline N]
//!                                          drive the fleet's devices against a gateway
//! eilid-cli fleet metrics --gateway ADDR | --gateways A,B,.. [--watch]
//!                                          scrape telemetry (Prometheus text) from a live
//!                                          gateway, or merged across a cluster
//! ```
//!
//! Fleet subcommands default to the incremental Merkle measurement
//! scheme; `--flat` selects the legacy full-range SHA-256 per challenge
//! (the bench baseline).
//!
//! `serve` and `connect` demonstrate the full networked trust boundary:
//! both sides derive the same demo fleet (same root key, so the gateway
//! holds the right goldens), the gateway serves challenges/verdicts over
//! TCP, and `connect` drives every device as a transport client. Run
//! them in two terminals — or two machines.
//!
//! `fleet attest`/`fleet campaign` run through the unified operator
//! plane (`eilid_fleet::ops::FleetOps`): the same scenario code drives
//! the in-process backend by default and, with `--gateway ADDR`, a
//! remote gateway's campaign engine over TCP (this process hosts the
//! device agents; run `fleet serve` with the same fleet shape in the
//! other terminal). With `--gateways A,B,..` the scenario instead fans
//! out over a whole cluster: devices are placed shard-wise across the
//! listed gateways (run one `fleet serve` per address, same fleet
//! shape) and the per-gateway results merge back into the
//! single-gateway shapes.

use std::process::ExitCode;
use std::time::Instant;

use eilid::{DeviceBuilder, EilidConfig, InstrumentedBuild, Runtime};
use eilid_casu::{CasuPolicy, DeviceKey, MeasurementScheme, MemoryLayout};
use eilid_fleet::{
    CampaignConfig, CampaignOutcome, CampaignReport, Fleet, FleetBuilder, FleetOps, LocalOps,
    SweepSummary, Verifier,
};
use eilid_msp430::render_disassembly;
use eilid_workloads::{CfiAttack, WorkloadId};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("instrument") => cmd_instrument(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        Some("workloads") => cmd_workloads(),
        Some("attack") => cmd_attack(&args[1..]),
        Some("fleet") => cmd_fleet(&args[1..]),
        Some("help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `eilid-cli help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "eilid-cli — EILID (DATE 2025) reproduction\n\n\
         USAGE:\n  eilid-cli instrument <app.s>\n  eilid-cli run <app.s> [--protect] [--max-cycles N]\n  eilid-cli disasm <app.s>\n  eilid-cli workloads\n  eilid-cli attack <workload> <attack>\n  eilid-cli fleet run [--devices N] [--threads N] [--cycles N]\n  eilid-cli fleet attest [--devices N] [--threads N] [--flat] [--sweeps N]\n                         [--aggregated] [--gateway ADDR | --gateways A,B,..]\n  eilid-cli fleet campaign [--devices N] [--threads N] [--inject-bad]\n                           [--gateway ADDR | --gateways A,B,..]\n  eilid-cli fleet serve [--addr A] [--devices N] [--threads N] [--expect-reports N]\n                        [--poller epoll|scan] [--batch N]\n  eilid-cli fleet connect --addr A [--devices N] [--threads N] [--clients N] [--pipeline N]\n  eilid-cli fleet metrics --gateway ADDR | --gateways A,B,.. [--watch]\n\n\
         Attacks: return-address, isr-context, indirect-call, code-injection"
    );
}

fn read_source(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn cmd_instrument(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: eilid-cli instrument <app.s>")?;
    let source = read_source(path)?;
    let config = EilidConfig::default();
    let runtime = Runtime::build(&config, &MemoryLayout::default(), &CasuPolicy::default())
        .map_err(|e| e.to_string())?;
    let artifacts = InstrumentedBuild::new(config)
        .run(&source, &runtime)
        .map_err(|e| e.to_string())?;
    println!("{}", artifacts.instrumented_source);
    eprintln!("{}", artifacts.report);
    eprintln!(
        "binary size: {} -> {} bytes ({:+.1}%), {} build iterations",
        artifacts.metrics.original_binary_bytes,
        artifacts.metrics.instrumented_binary_bytes,
        artifacts.metrics.binary_size_overhead() * 100.0,
        artifacts.metrics.iterations
    );
    Ok(())
}

fn parse_max_cycles(args: &[String]) -> Result<u64, String> {
    match args.iter().position(|a| a == "--max-cycles") {
        Some(i) => args
            .get(i + 1)
            .ok_or("--max-cycles needs a value")?
            .parse::<u64>()
            .map_err(|e| format!("invalid --max-cycles value: {e}")),
        None => Ok(50_000_000),
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let path = args
        .first()
        .ok_or("usage: eilid-cli run <app.s> [--protect] [--max-cycles N]")?;
    let source = read_source(path)?;
    let protect = args.iter().any(|a| a == "--protect");
    let max_cycles = parse_max_cycles(args)?;

    let builder = DeviceBuilder::new();
    let mut device = if protect {
        builder.build_eilid(&source).map_err(|e| e.to_string())?
    } else {
        builder.build_baseline(&source).map_err(|e| e.to_string())?
    };
    let outcome = device.run_for(max_cycles);
    println!(
        "{} device: {outcome}",
        if protect { "EILID" } else { "baseline" }
    );
    println!("debug output: {:?}", device.cpu().peripherals.sim_output());
    if !device.cpu().peripherals.uart_output().is_empty() {
        println!(
            "uart output : {}",
            String::from_utf8_lossy(device.cpu().peripherals.uart_output())
        );
    }
    Ok(())
}

fn cmd_disasm(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("usage: eilid-cli disasm <app.s>")?;
    let source = read_source(path)?;
    let image = eilid_asm::assemble(&source).map_err(|e| e.to_string())?;
    let memory = image.to_memory().map_err(|e| e.to_string())?;
    for segment in &image.segments {
        println!(
            "; segment {:#06x} ({} bytes)",
            segment.base,
            segment.bytes.len()
        );
        println!(
            "{}",
            render_disassembly(
                &memory,
                segment.base,
                segment.base.wrapping_add(segment.bytes.len() as u16)
            )
        );
    }
    Ok(())
}

fn cmd_workloads() -> Result<(), String> {
    println!("{:<18} {:<5} {:<9} description", "name", "ISR", "indirect");
    for workload in eilid_workloads::all() {
        println!(
            "{:<18} {:<5} {:<9} {}",
            workload.name,
            if workload.uses_interrupts { "yes" } else { "-" },
            if workload.uses_indirect_calls {
                "yes"
            } else {
                "-"
            },
            workload.description
        );
    }
    Ok(())
}

fn parse_workload(name: &str) -> Result<WorkloadId, String> {
    WorkloadId::ALL
        .into_iter()
        .find(|id| id.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown workload `{name}` (see `eilid-cli workloads`)"))
}

fn parse_attack(name: &str) -> Result<CfiAttack, String> {
    match name.to_ascii_lowercase().as_str() {
        "return-address" | "ra" => Ok(CfiAttack::ReturnAddressOverwrite),
        "isr-context" | "rfi" => Ok(CfiAttack::IsrContextTamper),
        "indirect-call" | "ind" => Ok(CfiAttack::IndirectCallHijack),
        "code-injection" | "inject" => Ok(CfiAttack::CodeInjectionJump),
        other => Err(format!(
            "unknown attack `{other}` (return-address, isr-context, indirect-call, code-injection)"
        )),
    }
}

fn cmd_attack(args: &[String]) -> Result<(), String> {
    let workload = parse_workload(
        args.first()
            .ok_or("usage: eilid-cli attack <workload> <attack>")?,
    )?;
    let attack = parse_attack(
        args.get(1)
            .ok_or("usage: eilid-cli attack <workload> <attack>")?,
    )?;
    let source = workload.workload().source;

    let mut device = DeviceBuilder::new()
        .build_eilid(&source)
        .map_err(|e| e.to_string())?;
    let result =
        eilid_workloads::inject(&mut device, attack, 60_000_000).map_err(|e| e.to_string())?;
    println!("{workload} under {attack}: {}", result.outcome);
    if result.detected() {
        println!(
            "detected{}",
            if result.detected_as_expected() {
                " with the expected fault class"
            } else {
                " (unexpected fault class)"
            }
        );
    } else {
        println!("NOT detected — this should not happen on a protected device");
    }
    Ok(())
}

// --- fleet subcommands ---------------------------------------------------

/// Demo-only root key; a real deployment provisions this out of band.
const FLEET_DEMO_ROOT: &[u8] = b"eilid-cli-demo-fleet-root-key-01";

fn parse_flag_value(args: &[String], flag: &str, default: u64) -> Result<u64, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse::<u64>()
            .map_err(|e| format!("invalid {flag} value: {e}")),
        None => Ok(default),
    }
}

fn build_fleet(args: &[String]) -> Result<(Fleet, Verifier), String> {
    let devices = parse_flag_value(args, "--devices", 64)? as usize;
    let threads = parse_flag_value(args, "--threads", 4)? as usize;
    let scheme = if args.iter().any(|a| a == "--flat") {
        MeasurementScheme::FlatSha256
    } else {
        MeasurementScheme::Merkle
    };
    let root = DeviceKey::new(FLEET_DEMO_ROOT).map_err(|e| e.to_string())?;
    FleetBuilder::new(root)
        .devices(devices)
        .threads(threads)
        .measurement(scheme)
        .build()
        .map_err(|e| e.to_string())
}

fn cmd_fleet(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("run") => cmd_fleet_run(&args[1..]),
        Some("attest") => cmd_fleet_attest(&args[1..]),
        Some("campaign") => cmd_fleet_campaign(&args[1..]),
        Some("serve") => cmd_fleet_serve(&args[1..]),
        Some("connect") => cmd_fleet_connect(&args[1..]),
        Some("metrics") => cmd_fleet_metrics(&args[1..]),
        _ => Err(
            "usage: eilid-cli fleet run|attest|campaign|serve|connect|metrics \
             [--devices N] [--threads N]"
                .into(),
        ),
    }
}

/// Scrapes a live gateway (or a whole cluster) over the operator
/// plane and prints the telemetry snapshot in Prometheus text format.
/// With `--gateways`, the merged cluster snapshot is printed followed
/// by a compact per-gateway table; `--watch` re-scrapes every 2s.
fn cmd_fleet_metrics(args: &[String]) -> Result<(), String> {
    let gateway = parse_gateway(args)?;
    let cluster = parse_gateways(args)?;
    let watch = args.iter().any(|a| a == "--watch");
    if gateway.is_some() && cluster.is_some() {
        return Err("--gateway and --gateways are mutually exclusive".to_string());
    }
    if gateway.is_none() && cluster.is_none() {
        return Err(
            "usage: eilid-cli fleet metrics --gateway HOST:PORT | --gateways A,B,.. [--watch]"
                .into(),
        );
    }
    loop {
        if let Some(addr) = gateway {
            let mut console = eilid_net::RemoteOps::connect(addr).map_err(|e| e.to_string())?;
            let snapshot = console.metrics().map_err(|e| e.to_string())?;
            print!("{}", snapshot.to_prometheus());
        } else if let Some(addrs) = &cluster {
            let mut ops = eilid_net::ClusterOps::connect(addrs).map_err(|e| e.to_string())?;
            let (merged, parts) = ops.metrics().map_err(|e| e.to_string())?;
            print!("{}", merged.to_prometheus());
            println!("# per-gateway (accepted / frames received / reports verified):");
            for (index, (addr, part)) in addrs.iter().zip(&parts).enumerate() {
                let get = |name: &str| part.counters.get(name).copied().unwrap_or(0);
                println!(
                    "#   gateway {index} {addr}: {} / {} / {}",
                    get("eilid_gateway_accepted_total"),
                    get("eilid_gateway_frames_received_total"),
                    get("eilid_service_reports_verified_total"),
                );
            }
        }
        if !watch {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs(2));
        println!();
    }
}

fn parse_flag_string(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => args
            .get(i + 1)
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{flag} needs a value")),
        None => Ok(None),
    }
}

fn cmd_fleet_serve(args: &[String]) -> Result<(), String> {
    let addr = parse_flag_string(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:4810".to_string());
    let (fleet, mut verifier) = build_fleet(args)?;
    let expect = parse_flag_value(args, "--expect-reports", fleet.len() as u64)?;
    let threads = parse_flag_value(args, "--threads", 4)? as usize;
    let batch = parse_flag_value(args, "--batch", 64)?.max(1) as usize;
    let poller = match parse_flag_string(args, "--poller")?.as_deref() {
        None => eilid_net::PollerChoice::Auto,
        Some("epoll") => eilid_net::PollerChoice::Epoll,
        Some("scan") => eilid_net::PollerChoice::Scan,
        Some(other) => return Err(format!("invalid --poller `{other}` (epoll or scan)")),
    };

    // A generous nonce block: networked challenges can never collide
    // with this process's in-process sweeps.
    let service = std::sync::Arc::new(eilid_net::AttestationService::new(
        verifier.service_snapshot(1 << 32),
    ));
    let gateway = eilid_net::Gateway::bind(
        addr.as_str(),
        std::sync::Arc::clone(&service),
        eilid_net::GatewayConfig {
            workers: threads,
            poller,
            batch_max: batch,
            ..eilid_net::GatewayConfig::default()
        },
    )
    .map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
    let backend = gateway.poller_backend();
    let handle = gateway.spawn();
    println!(
        "gateway listening on {} ({} cohorts, {} verification workers, {} reactor, \
         batch ceiling {batch}); waiting for {expect} reports",
        handle.addr(),
        fleet.cohort_ids().len(),
        threads,
        backend.name(),
    );

    let load =
        |counter: &std::sync::atomic::AtomicU64| counter.load(std::sync::atomic::Ordering::Relaxed);
    // While serving, surface the reactor's health counters (the same
    // figures an operator console sees in `OpHealthResult`) every ~2s
    // when they moved. When they have NOT moved the gateway is either
    // idle or wedged — indistinguishable from silence — so every quiet
    // tick records an explicit heartbeat in the trace ring (scrapeable
    // via `fleet metrics`) and every ~30s one heartbeat line is
    // printed, so the log never goes fully dark.
    let mut last_logged = (u64::MAX, u64::MAX, u64::MAX);
    let mut next_log = std::time::Instant::now();
    let mut idle_ticks: u64 = 0;
    while service.stats().reports_verified() < expect {
        if std::time::Instant::now() >= next_log {
            let snapshot = (
                load(&handle.counters().live_connections),
                load(&handle.counters().batches_submitted),
                service.stats().reports_verified(),
            );
            if snapshot != last_logged {
                println!(
                    "reactor: {} live sessions, {} batches submitted, {}/{expect} reports verified",
                    snapshot.0, snapshot.1, snapshot.2,
                );
                last_logged = snapshot;
                idle_ticks = 0;
            } else {
                idle_ticks += 1;
                handle.metrics().trace().record(
                    eilid_net::TRACE_CAT_SERVE,
                    eilid_net::TRACE_SERVE_IDLE,
                    idle_ticks,
                    snapshot.0,
                );
                if idle_ticks.is_multiple_of(15) {
                    println!(
                        "reactor idle for {}s: {} live sessions, {}/{expect} reports verified \
                         (heartbeat; scrape `fleet metrics` for detail)",
                        idle_ticks * 2,
                        snapshot.0,
                        snapshot.2,
                    );
                }
            }
            next_log += std::time::Duration::from_secs(2);
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let gateway = handle.shutdown().map_err(|e| e.to_string())?;
    let stats = service.stats();
    println!(
        "served {} reports over {} connections ({} batches): \
         {} attested, {} stale, {} tampered, {} unverified",
        stats.reports_verified(),
        load(&gateway.counters().accepted),
        load(&gateway.counters().batches_submitted),
        load(&stats.attested),
        load(&stats.stale),
        load(&stats.tampered),
        load(&stats.unverified),
    );
    Ok(())
}

fn cmd_fleet_connect(args: &[String]) -> Result<(), String> {
    let addr = parse_flag_string(args, "--addr")?
        .ok_or("usage: eilid-cli fleet connect --addr HOST:PORT [--devices N] [--clients N]")?;
    let addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|e| format!("invalid --addr `{addr}`: {e}"))?;
    let (mut fleet, _verifier) = build_fleet(args)?;
    let clients = parse_flag_value(args, "--clients", 4)?.max(1) as usize;
    let window = parse_flag_value(
        args,
        "--pipeline",
        eilid_net::DEFAULT_PIPELINE_WINDOW as u64,
    )?
    .max(1) as usize;

    println!(
        "driving {} devices against {addr} over {clients} connections (pipeline window {window})",
        fleet.len()
    );
    let report = eilid_net::sweep_fleet_tcp_windowed(&mut fleet, clients, window, addr)
        .map_err(|e| e.to_string())?;
    println!(
        "networked sweep: {} devices in {:.3}s over {} connections ({:.0} devices/s)",
        report.devices,
        report.elapsed.as_secs_f64(),
        report.clients,
        report.devices_per_second()
    );
    println!(
        "  attested   {}\n  stale      {}\n  tampered   {}\n  unverified {}",
        report.count(eilid_fleet::HealthClass::Attested),
        report.count(eilid_fleet::HealthClass::Stale),
        report.count(eilid_fleet::HealthClass::Tampered),
        report.count(eilid_fleet::HealthClass::Unverified),
    );
    if !report.flagged.is_empty() {
        println!("  flagged: {:?}", report.flagged);
    }
    Ok(())
}

fn cmd_fleet_run(args: &[String]) -> Result<(), String> {
    let cycles = parse_flag_value(args, "--cycles", 5_000_000)?;
    let (mut fleet, _verifier) = build_fleet(args)?;
    println!(
        "fleet of {} devices across {} firmware cohorts",
        fleet.len(),
        fleet.cohort_ids().len()
    );
    let report = fleet.run_slice(cycles);
    println!(
        "run slice ({cycles} cycles): {} completed, {} running, {} violation resets, {} faults",
        report.completed, report.running, report.violations, report.faults
    );
    Ok(())
}

/// Parses `--gateway ADDR` into a socket address, if present.
fn parse_gateway(args: &[String]) -> Result<Option<std::net::SocketAddr>, String> {
    match parse_flag_string(args, "--gateway")? {
        Some(addr) => addr
            .parse()
            .map(Some)
            .map_err(|e| format!("invalid --gateway `{addr}`: {e}")),
        None => Ok(None),
    }
}

/// Parses `--gateways A,B,..` into a cluster address list, if present.
fn parse_gateways(args: &[String]) -> Result<Option<Vec<std::net::SocketAddr>>, String> {
    let Some(list) = parse_flag_string(args, "--gateways")? else {
        return Ok(None);
    };
    let addrs = list
        .split(',')
        .map(str::trim)
        .filter(|part| !part.is_empty())
        .map(|part| {
            part.parse()
                .map_err(|e| format!("invalid --gateways entry `{part}`: {e}"))
        })
        .collect::<Result<Vec<std::net::SocketAddr>, String>>()?;
    if addrs.is_empty() {
        return Err("--gateways needs at least one HOST:PORT".to_string());
    }
    Ok(Some(addrs))
}

/// Runs `scenario` against the requested operator-plane backend: the
/// in-process `LocalOps` by default; with `--gateway ADDR` a
/// `RemoteOps` console against that gateway; with `--gateways A,B,..`
/// a fan-out `ClusterOps` console over every listed gateway, with this
/// process's fleet devices placed shard-wise across them. This is the
/// whole point of the unified `FleetOps` surface: the scenario code
/// cannot tell the backends apart.
fn with_fleet_ops<R: Send>(
    args: &[String],
    scenario: impl Fn(&mut dyn FleetOps) -> Result<R, String> + Sync,
) -> Result<R, String> {
    let gateway = parse_gateway(args)?;
    let cluster = parse_gateways(args)?;
    if gateway.is_some() && cluster.is_some() {
        return Err("--gateway and --gateways are mutually exclusive".to_string());
    }
    let (mut fleet, mut verifier) = build_fleet(args)?;
    if let Some(addrs) = cluster {
        let agents = parse_flag_value(args, "--clients", 4)?.max(1) as usize;
        println!(
            "driving the operator plane of a {}-gateway cluster ({} local devices placed \
             shard-wise, {agents} agent connections per gateway)",
            addrs.len(),
            fleet.len(),
        );
        return eilid_net::cluster::with_placed_fleet(&mut fleet, &addrs, agents, || {
            let mut ops = eilid_net::ClusterOps::connect(&addrs).map_err(|e| e.to_string())?;
            // The demo root key is shared knowledge, so the console can
            // always verify aggregate roots (`fleet attest --aggregated`).
            ops.set_agg_root_key(FLEET_DEMO_ROOT);
            scenario(&mut ops)
        })
        .map_err(|e| format!("device agents failed: {e}"))?;
    }
    match gateway {
        None => scenario(&mut LocalOps::new(&mut fleet, &mut verifier)),
        Some(addr) => {
            let agents = parse_flag_value(args, "--clients", 4)?.max(1) as usize;
            println!(
                "driving the operator plane of {addr} ({} local devices attached over {agents} agent connections)",
                fleet.len()
            );
            eilid_net::with_attached_fleet(&mut fleet, agents, addr, || {
                let mut ops = eilid_net::RemoteOps::connect(addr).map_err(|e| e.to_string())?;
                ops.set_agg_root_key(FLEET_DEMO_ROOT);
                scenario(&mut ops)
            })
            .map_err(|e| format!("device agents failed: {e}"))?
        }
    }
}

fn print_sweep(summary: &SweepSummary, elapsed: std::time::Duration) {
    use eilid_fleet::HealthClass;
    println!(
        "attestation sweep: {} devices in {:.3}s ({:.0} devices/s)",
        summary.devices,
        elapsed.as_secs_f64(),
        summary.devices as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    for class in [
        HealthClass::Attested,
        HealthClass::Stale,
        HealthClass::Tampered,
        HealthClass::Unverified,
    ] {
        let count = summary.count(class);
        if count > 0 {
            println!("  {class:<10} {count}");
        }
    }
    if !summary.flagged.is_empty() {
        println!("  flagged: {:?}", summary.flagged);
    }
}

fn cmd_fleet_attest(args: &[String]) -> Result<(), String> {
    let sweeps = parse_flag_value(args, "--sweeps", 1)?.max(1);
    let aggregated = args.iter().any(|a| a == "--aggregated");
    with_fleet_ops(args, |ops| {
        // With `--sweeps N` the later sweeps show the steady-state cost:
        // warm verifier key caches and (on the merkle scheme)
        // cache-served device roots.
        if aggregated {
            let mut last = None;
            for _ in 0..sweeps {
                let start = Instant::now();
                let agg = ops.sweep_aggregated().map_err(|e| e.to_string())?;
                last = Some((agg, start.elapsed()));
            }
            let (agg, elapsed) = last.expect("at least one sweep ran");
            print_sweep(&agg.summary, elapsed);
            println!(
                "  aggregated: {} shard roots verified (cap {}), {}/{} verdicts \
                 short-circuited, epoch {}",
                agg.roots_verified,
                eilid_fleet::SHARD_COUNT,
                agg.short_circuited,
                agg.summary.devices,
                agg.epoch,
            );
            let hex: String = agg.fleet_root.iter().map(|b| format!("{b:02x}")).collect();
            println!("  fleet root: {hex}");
        } else {
            let mut last = None;
            for _ in 0..sweeps {
                let start = Instant::now();
                let summary = ops.sweep().map_err(|e| e.to_string())?;
                last = Some((summary, start.elapsed()));
            }
            let (summary, elapsed) = last.expect("at least one sweep ran");
            print_sweep(&summary, elapsed);
        }
        if sweeps > 1 {
            println!("  (sweep {sweeps} of {sweeps}; verifier key caches warm)");
        }
        Ok(())
    })
}

fn print_campaign(report: &CampaignReport) {
    for wave in &report.waves {
        println!(
            "wave {} ({} devices): {} updated, {} failed post-update probes",
            wave.wave, wave.size, wave.updated, wave.failures
        );
    }
    match report.outcome {
        CampaignOutcome::Completed { updated } => {
            println!("campaign completed: {updated} devices on the new firmware");
        }
        CampaignOutcome::HaltedAndRolledBack {
            wave,
            failure_rate,
            rolled_back,
        } => {
            println!(
                "campaign HALTED at wave {wave} (failure rate {:.0}%); {rolled_back} devices rolled back",
                failure_rate * 100.0
            );
        }
    }
    if !report.quarantined.is_empty() {
        println!(
            "quarantined (probe failed, rolled back): {:?}",
            report.quarantined
        );
    }
    if !report.rollback_incomplete.is_empty() {
        println!(
            "ROLLBACK INCOMPLETE — operator attention needed: {:?}",
            report.rollback_incomplete
        );
    }
}

fn cmd_fleet_campaign(args: &[String]) -> Result<(), String> {
    let inject_bad = args.iter().any(|a| a == "--inject-bad");

    let cohort = WorkloadId::LightSensor;
    let (target, payload): (u16, Vec<u8>) = if inject_bad {
        // A patch whose first instruction writes PMEM: the canary wave's
        // monitors catch it and the campaign rolls back.
        (
            eilid_fleet::fixtures::BRICKING_PATCH_TARGET,
            eilid_fleet::fixtures::bricking_patch(),
        )
    } else {
        // A benign data patch in the unused PMEM gap below the trampolines.
        (
            eilid_fleet::fixtures::BENIGN_PATCH_TARGET,
            eilid_fleet::fixtures::benign_patch(),
        )
    };

    println!(
        "staged campaign for {cohort}: {} bytes at {target:#06x}{}",
        payload.len(),
        if inject_bad {
            " (deliberately bad)"
        } else {
            ""
        }
    );
    let config = CampaignConfig::new(cohort, target, payload);
    with_fleet_ops(args, |ops| {
        let report = ops.run_campaign(&config).map_err(|e| e.to_string())?;
        print_campaign(&report);
        let start = Instant::now();
        let sweep = ops.sweep().map_err(|e| e.to_string())?;
        println!("post-campaign:");
        print_sweep(&sweep, start.elapsed());
        Ok(())
    })
}
