//! Quickstart: protect a small sensor application with EILID and compare it
//! against the unprotected original.
//!
//! Run with: `cargo run --example quickstart`

use eilid::{DeviceBuilder, EilidConfig, RunOutcome};

const APP: &str = "    .org 0xe000
    .global main
    .equ SIM_CTL, 0x0100
    .equ SIM_OUT, 0x0102
    .equ ADC_CTL, 0x0110
    .equ ADC_DATA, 0x0112
    .equ DONE, 0x00ff
main:
    mov #0x0400, sp
    clr r9
    mov #8, r8
loop:
    call #read_sensor
    add r15, r9
    mov #220, r14             ; sensor settling time (busy wait)
settle:
    dec r14
    jnz settle
    dec r8
    jnz loop
    mov r9, &SIM_OUT
    mov #DONE, &SIM_CTL
hang:
    jmp hang
read_sensor:
    mov #1, &ADC_CTL
    mov &ADC_DATA, r15
    ret
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== EILID quickstart ==\n");
    let config = EilidConfig::default();
    let builder = DeviceBuilder::new().config(config.clone());

    // 1. The original application on an unprotected device.
    let mut baseline = builder.build_baseline(APP)?;
    let base = baseline.run();
    println!("original device : {base}");

    // 2. The same application, instrumented (Figure 2 pipeline) and run on an
    //    EILID-protected device.
    let mut protected = builder.build_eilid(APP)?;
    let artifacts = protected
        .artifacts()
        .expect("protected build has artifacts")
        .clone();
    println!(
        "instrumentation : {} call sites, {} returns, {} lines inserted",
        artifacts.report.call_sites, artifacts.report.returns, artifacts.report.inserted_lines
    );
    println!(
        "binary size     : {} -> {} bytes ({:+.1}%)",
        artifacts.metrics.original_binary_bytes,
        artifacts.metrics.instrumented_binary_bytes,
        artifacts.metrics.binary_size_overhead() * 100.0
    );
    println!(
        "build pipeline  : {} iterations (paper Figure 2), {:.2?} vs {:.2?} baseline",
        artifacts.metrics.iterations,
        artifacts.metrics.instrumented_compile_time,
        artifacts.metrics.original_compile_time
    );

    let eilid = protected.run();
    println!("EILID device    : {eilid}");

    match (&base, &eilid) {
        (RunOutcome::Completed { output: a, .. }, RunOutcome::Completed { output: b, .. }) => {
            assert_eq!(a, b, "protection must not change program results");
            let overhead = eilid.cycles() as f64 / base.cycles() as f64 - 1.0;
            println!(
                "\nsame output ({a:?}), run-time overhead {:.1}% at {} MHz",
                overhead * 100.0,
                config.clock_hz / 1_000_000
            );
        }
        other => panic!("unexpected outcomes: {other:?}"),
    }

    // 3. Peek at the instrumented assembly (Figures 3 and 4 templates).
    println!("\nfirst instrumented lines:");
    for line in artifacts
        .instrumented_source
        .lines()
        .filter(|l| l.contains("NS_EILID"))
        .take(4)
    {
        println!("    {line}");
    }
    Ok(())
}
