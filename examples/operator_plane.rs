//! Operator-plane demo: the same `FleetOps` scenario — a staged OTA
//! campaign plus a post-campaign attestation sweep — driven first
//! through the in-process backend, then over real loopback TCP through
//! an attestation gateway's campaign engine, with the two reports
//! compared at the end.
//!
//! Run with `cargo run --example operator_plane`.

use std::sync::Arc;

use eilid_casu::DeviceKey;
use eilid_fleet::fixtures::{benign_patch, BENIGN_PATCH_TARGET};
use eilid_fleet::{
    CampaignConfig, CampaignReport, FleetBuilder, FleetOps, LocalOps, OpsError, SweepSummary,
};
use eilid_net::{with_attached_fleet, AttestationService, Gateway, GatewayConfig, RemoteOps};
use eilid_workloads::WorkloadId;

/// The scenario is written once, against the trait: neither the
/// campaign nor the sweep can tell which backend is underneath.
fn scenario(ops: &mut dyn FleetOps) -> Result<(CampaignReport, SweepSummary), OpsError> {
    let config = CampaignConfig::new(WorkloadId::LightSensor, BENIGN_PATCH_TARGET, benign_patch());
    let report = ops.run_campaign(&config)?;
    let sweep = ops.sweep()?;
    Ok((report, sweep))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = DeviceKey::new(b"operator-plane-demo-root-key-012")?;
    let build = || {
        FleetBuilder::new(root.clone())
            .devices(24)
            .threads(4)
            .workloads(&[WorkloadId::LightSensor])
            .build()
    };

    // 1. In-process backend.
    let (mut fleet, mut verifier) = build()?;
    let (local_report, local_sweep) = scenario(&mut LocalOps::new(&mut fleet, &mut verifier))?;
    println!(
        "in-process backend: {:?}, {} waves, sweep {} attested",
        local_report.outcome,
        local_report.waves.len(),
        local_sweep.devices,
    );

    // 2. Wire backend: gateway + device agents over loopback TCP, the
    //    operator console a `RemoteOps` speaking campaign frames.
    let (mut fleet, mut verifier) = build()?;
    let service = Arc::new(AttestationService::new(verifier.service_snapshot(1 << 24)));
    let handle = Gateway::bind(("127.0.0.1", 0), service, GatewayConfig::default())?.spawn();
    let addr = handle.addr();
    let (remote_report, remote_sweep) = with_attached_fleet(&mut fleet, 3, addr, || {
        let mut ops = RemoteOps::connect(addr).map_err(|e| OpsError::Backend(e.to_string()))?;
        scenario(&mut ops)
    })??;
    handle.shutdown()?;
    println!(
        "wire backend:       {:?}, {} waves, sweep {} attested (over TCP)",
        remote_report.outcome,
        remote_report.waves.len(),
        remote_sweep.devices,
    );

    // 3. The whole point of the unified surface:
    assert_eq!(remote_report, local_report);
    assert_eq!(remote_sweep, local_sweep);
    println!("backends agree wave-for-wave: one operator plane, two transports");
    Ok(())
}
