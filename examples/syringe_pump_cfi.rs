//! Safety-critical scenario: the syringe pump from the paper's motivation.
//!
//! A syringe pump is exactly the kind of safety-critical, time-critical
//! device for which after-the-fact control-flow *attestation* is too late:
//! by the time a verifier notices the hijack, the wrong dose has been
//! delivered. This example runs the pump workload under EILID, shows that
//! the timer-driven step counting still works (P2), and demonstrates that a
//! hijacked interrupt context is stopped in real time.
//!
//! Run with: `cargo run --example syringe_pump_cfi`

use eilid::DeviceBuilder;
use eilid_workloads::{inject, CfiAttack, WorkloadId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Syringe pump under EILID ==\n");
    let workload = WorkloadId::SyringePump.workload();

    // Normal operation on the protected device.
    let mut device = DeviceBuilder::new().build_eilid(&workload.source)?;
    let report = device.artifacts().expect("artifacts").report.clone();
    println!(
        "instrumentation: {} call sites, {} returns, ISR entry/exit {}/{}",
        report.call_sites, report.returns, report.isr_entries, report.isr_exits
    );
    let outcome = device.run();
    println!("normal dose delivery: {outcome}");
    assert!(outcome.is_completed(), "pump must work under protection");

    // The same pump with an adversary tampering with the interrupt context.
    let mut victim = DeviceBuilder::new().build_eilid(&workload.source)?;
    let attack = inject(&mut victim, CfiAttack::IsrContextTamper, 60_000_000)?;
    println!("under ISR-context attack: {}", attack.outcome);
    assert!(
        attack.detected_as_expected(),
        "the tampered interrupt context must be caught by P2"
    );
    println!("\nEILID stopped the hijacked interrupt return before any further dosing.");

    // The unprotected pump silently mis-executes instead.
    let mut unprotected = DeviceBuilder::new().build_baseline(&workload.source)?;
    let attack = inject(&mut unprotected, CfiAttack::IsrContextTamper, 10_000_000)?;
    println!("unprotected pump under the same attack: {}", attack.outcome);
    assert!(!attack.detected());
    Ok(())
}
