//! Overhead report: a quick version of the paper's full evaluation.
//!
//! Prints Table IV (with 3 compile iterations instead of 50), the §VI
//! micro-costs, and the Figure 10 hardware comparison in one go. For the
//! full-fidelity run use the `eilid-bench` binaries.
//!
//! Run with: `cargo run --release --example overhead_report`

use eilid_bench::{
    measure_all, measure_micro_costs, render_figure10a, render_figure10b, Table4Options,
};

fn main() {
    println!("== EILID overhead report (quick settings) ==\n");

    println!("--- Table IV: software overhead ---");
    let table = measure_all(&Table4Options::quick());
    println!("{}", table.render());

    println!("--- SS VI micro-costs ---");
    let micro = measure_micro_costs(&eilid::EilidConfig::default());
    println!("{}", micro.render());

    println!("--- Figure 10: hardware overhead ---");
    println!("{}", render_figure10a());
    println!("{}", render_figure10b());
}
