//! Attack demo: launch every run-time attack of the paper's threat model
//! against both an unprotected device and an EILID-protected device, and
//! show which ones are detected.
//!
//! Run with: `cargo run --example attack_demo`

use eilid::DeviceBuilder;
use eilid_workloads::{inject, CfiAttack, WorkloadId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== EILID attack coverage demo ==\n");

    let scenarios = [
        (WorkloadId::LightSensor, CfiAttack::ReturnAddressOverwrite),
        (WorkloadId::SyringePump, CfiAttack::IsrContextTamper),
        (WorkloadId::Charlieplexing, CfiAttack::IndirectCallHijack),
        (WorkloadId::LightSensor, CfiAttack::CodeInjectionJump),
    ];

    println!(
        "{:<18} {:<28} {:<28} EILID device",
        "workload", "attack", "unprotected device"
    );
    for (workload, attack) in scenarios {
        let source = workload.workload().source;

        let mut baseline = DeviceBuilder::new().build_baseline(&source)?;
        let unprotected = inject(&mut baseline, attack, 30_000_000)?;

        let mut protected = DeviceBuilder::new().build_eilid(&source)?;
        let shielded = inject(&mut protected, attack, 60_000_000)?;

        let describe = |detected: bool, outcome: &eilid::RunOutcome| {
            if detected {
                format!("DETECTED ({})", outcome.violation().expect("detected"))
            } else if outcome.is_completed() {
                "missed (completed, possibly corrupted)".to_string()
            } else {
                "missed (hijacked / hung)".to_string()
            }
        };

        println!(
            "{:<18} {:<28} {:<28} {}",
            workload.name(),
            attack.to_string(),
            describe(unprotected.detected(), &unprotected.outcome),
            describe(shielded.detected(), &shielded.outcome),
        );

        assert!(
            shielded.detected(),
            "EILID must detect the {attack} on {workload}"
        );
    }

    // CASU-level attacks expressed as malicious programs.
    println!("\nCASU substrate attacks:");
    let mut device =
        DeviceBuilder::new().build_monitored_raw(&eilid_workloads::pmem_overwrite_source())?;
    println!("  PMEM overwrite    : {}", device.run_for(100_000));
    let mut device =
        DeviceBuilder::new().build_monitored_raw(&eilid_workloads::dmem_execution_source())?;
    println!("  DMEM execution    : {}", device.run_for(100_000));

    println!("\nAll attacks against the EILID device were detected and the device reset.");
    Ok(())
}
