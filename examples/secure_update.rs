//! CASU secure update: the only legitimate way to change program memory.
//!
//! EILID inherits CASU's software-immutability guarantee: PMEM can only
//! change through an authenticated update. This example walks through the
//! update protocol — authorising an update, applying it, rejecting forgeries
//! and replays — and shows the PMEM measurement changing accordingly.
//!
//! Run with: `cargo run --example secure_update`

use eilid_casu::{CasuMonitor, CasuPolicy, MemoryLayout, UpdateAuthority, UpdateEngine};
use eilid_msp430::{Cpu, Memory};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== CASU authenticated software update ==\n");

    let layout = MemoryLayout::default();
    let key = b"device-unique-key-0001";
    let mut authority = UpdateAuthority::new(key);
    let mut engine = UpdateEngine::new(key, layout.clone());
    let mut monitor = CasuMonitor::new(layout, CasuPolicy::default());
    let mut memory = Memory::new();

    // Version 1 of the firmware: writes 1 to the debug output and finishes.
    let v1 = eilid_asm::assemble(
        "    .org 0xe000\n    .global main\nmain:\n    mov #0x0400, sp\n    mov #1, &0x0102\n    mov #0x00ff, &0x0100\nhang:\n    jmp hang\n",
    )?;
    v1.load_into(&mut memory)?;
    println!(
        "v1 measurement: {:02x?}...",
        &engine.measure_pmem(&memory)[..8]
    );

    let mut cpu = Cpu::new(memory.clone());
    cpu.reset();
    cpu.run(100_000)?;
    println!("v1 output: {:?}", cpu.peripherals.sim_output());

    // Version 2: the authority authorises a patch that reports 2 instead.
    let v2 = eilid_asm::assemble(
        "    .org 0xe000\n    .global main\nmain:\n    mov #0x0400, sp\n    mov #2, &0x0102\n    mov #0x00ff, &0x0100\nhang:\n    jmp hang\n",
    )?;
    let payload = &v2.segments[0].bytes;
    let request = authority.authorize(v2.segments[0].base, payload);
    engine.apply(&request, &mut memory, &mut monitor)?;
    println!("\nupdate applied (nonce {})", request.nonce);
    println!(
        "v2 measurement: {:02x?}...",
        &engine.measure_pmem(&memory)[..8]
    );

    let mut cpu = Cpu::new(memory.clone());
    cpu.reset();
    cpu.run(100_000)?;
    println!("v2 output: {:?}", cpu.peripherals.sim_output());

    // A forged update (wrong key) is rejected.
    let mut rogue = UpdateAuthority::new(b"attacker-key");
    let forged = rogue.authorize(0xE000, &[0xFF, 0xFF]);
    println!(
        "\nforged update  : {:?}",
        engine.apply(&forged, &mut memory, &mut monitor)
    );

    // Replaying the legitimate update is rejected too.
    println!(
        "replayed update: {:?}",
        engine.apply(&request, &mut memory, &mut monitor)
    );

    println!("\nPMEM can only change through fresh, authenticated updates — the CASU property EILID builds on.");
    Ok(())
}
