//! Fleet demo: spin up a heterogeneous device fleet, sweep it with
//! batched attestation, catch a physically tampered device, then run two
//! staged OTA campaigns — one deliberately bad (halted by the canary
//! wave and rolled back) and one good (completes, becomes the new golden
//! firmware).
//!
//! Run with `cargo run --example fleet_demo`.

use eilid_casu::DeviceKey;
use eilid_fleet::fixtures::{
    benign_patch, bricking_patch, BENIGN_PATCH_TARGET, BRICKING_PATCH_TARGET,
};
use eilid_fleet::{CampaignConfig, CampaignOutcome, FleetBuilder, FleetOps, HealthClass, LocalOps};
use eilid_workloads::WorkloadId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = DeviceKey::new(b"fleet-demo-root-key-0123456789ab")?;
    let (mut fleet, mut verifier) = FleetBuilder::new(root).devices(64).threads(4).build()?;
    println!(
        "fleet: {} devices, {} firmware cohorts, per-device keys derived from one root\n",
        fleet.len(),
        fleet.cohort_ids().len()
    );

    // 1. Run every device concurrently for a slice of simulated time.
    let slice = fleet.run_slice(5_000_000);
    println!(
        "run slice: {} completed, {} still running, {} violations\n",
        slice.completed, slice.running, slice.violations
    );

    // 2. Batched attestation sweep: all healthy.
    let sweep = verifier.sweep(&mut fleet);
    println!("baseline {sweep}");

    // 3. A physical attacker flips a byte of one device's firmware; the
    //    next sweep flags exactly that device.
    {
        let victim = &mut fleet.devices_mut()[13];
        let memory = &mut victim.device_mut().cpu_mut().memory;
        let original = memory.read_byte(0xE014);
        memory.write_byte(0xE014, original ^ 0x40);
    }
    let sweep = verifier.sweep(&mut fleet);
    println!(
        "after tampering with device 13: tampered = {:?}\n",
        sweep.devices_in(HealthClass::Tampered)
    );

    // 4. A bad OTA campaign, driven through the unified operator plane
    //    (the same `FleetOps` calls drive a remote gateway in
    //    `examples/operator_plane.rs`): the patch bricks its first
    //    instruction. The canary wave catches it; the campaign halts
    //    and rolls back.
    let report = LocalOps::new(&mut fleet, &mut verifier).run_campaign(&CampaignConfig::new(
        WorkloadId::LightSensor,
        BRICKING_PATCH_TARGET,
        bricking_patch(),
    ))?;
    match report.outcome {
        CampaignOutcome::HaltedAndRolledBack {
            wave,
            failure_rate,
            rolled_back,
        } => println!(
            "bad campaign: HALTED at wave {wave} ({:.0}% failures), {rolled_back} device(s) rolled back\n",
            failure_rate * 100.0
        ),
        ref other => println!("bad campaign unexpectedly ended as {other:?}\n"),
    }

    // 5. A good campaign: a benign data patch below the trampolines rolls
    //    out canary-first and completes; the new image becomes golden.
    let report = LocalOps::new(&mut fleet, &mut verifier).run_campaign(&CampaignConfig::new(
        WorkloadId::LightSensor,
        BENIGN_PATCH_TARGET,
        benign_patch(),
    ))?;
    println!(
        "good campaign: {:?} across {} wave(s)\n",
        report.outcome,
        report.waves.len()
    );

    // 6. Final sweep: the updated cohort attests against the *new* golden
    //    measurement; the tampered device is still flagged.
    let sweep = verifier.sweep(&mut fleet);
    print!("final {sweep}");
    println!(
        "ledger recorded {} events, {} violation resets",
        fleet.ledger().events().len(),
        fleet.ledger().total_violation_resets()
    );
    Ok(())
}
