# Same recipes as the Makefile, for `just` users.

build:
    cargo build --release

# Tier-1 verification: release build + the root package test suite.
test:
    cargo build --release
    cargo test -q

test-workspace:
    cargo test -q --workspace

# One fast pass over every criterion bench (stub timing, no statistics).
bench-smoke:
    cargo bench -p eilid_bench

# Small fleet end-to-end: slice run, attestation sweep, staged campaigns.
fleet-smoke:
    cargo run --release --bin eilid-cli -- fleet run --devices 64 --threads 4
    cargo run --release --bin eilid-cli -- fleet attest --devices 64 --threads 4
    cargo run --release --bin eilid-cli -- fleet campaign --devices 64 --threads 4
    cargo run --release --bin eilid-cli -- fleet campaign --devices 64 --threads 4 --inject-bad

# The 1 000-device release-mode scale test.
fleet-scale:
    cargo test --release -p eilid_fleet -- --include-ignored thousand

# Flat-vs-incremental sweep throughput at 1 000 devices; writes
# BENCH_fleet.json (the recorded perf baseline) and fails below the
# accepted 3x incremental speedup.
fleet-bench:
    cargo run --release -p eilid_bench --bin fleet -- --min-speedup 3

# CI-sized head-to-head only (no matrix), still release mode, gating on
# the same 3x speedup floor.
fleet-bench-smoke:
    cargo run --release -p eilid_bench --bin fleet -- --quick --json /tmp/BENCH_fleet.json --min-speedup 3

# The 1 000-device networked sweep over loopback TCP (release mode) —
# epoll reactor and scan fallback both.
net-scale:
    cargo test --release -p eilid_net -- --include-ignored thousand

# The 10 000-connection reactor scale test (Linux/epoll, release mode,
# 60 s budget).
net-scale-10k:
    cargo test --release -p eilid_net --test net_scale_10k -- --include-ignored scale_10k

# The 1 000-device staged OTA campaign over loopback TCP (release mode,
# 60 s budget), report pinned equal to the in-process backend's.
net-campaign:
    cargo test --release -p eilid_net --test net_campaign_scale -- --include-ignored campaign --nocapture

# The supervised multi-process cluster drill (release mode, 120 s
# budget): four gateway processes, one SIGKILLed mid-campaign and
# restarted, campaign resumed from the wave checkpoint, report pinned
# equal to an uninterrupted single-process run.
net-cluster:
    cargo test --release -p eilid_net --test cluster_scale -- --exact supervised_cluster_campaign_survives_gateway_kill --nocapture

# Telemetry end-to-end smoke: background gateway, one sweep, a live
# `fleet metrics` wire scrape checked for the expected counters, then
# a second sweep so the server exits cleanly (same shape as the
# Makefile target).
obs-smoke: build
    ./scripts/obs_smoke.sh

# Collective-attestation smoke (release mode, so the 1 000-device scale
# test un-ignores): aggregated sweeps over loopback TCP plus the
# aggregated-vs-per-device equivalence oracle.
agg-smoke:
    cargo test --release -p eilid_net --test agg_smoke -- --include-ignored
    cargo test --release -p eilid_net --test agg_equivalence

# Persistent-pool vs scoped-thread sweeps and in-memory vs loopback
# transports at 1 000 devices; writes BENCH_net.json (the recorded perf
# baseline) and gates three ways: pool ratio ≥ 0.85, in-memory ≥ 70k
# devices/s, loopback TCP ≥ 40k devices/s (≥ 2x the PR 3 baseline),
# 4-gateway cluster sweeps ≥ 0.5x the single-gateway rate, observed
# loopback sweep ≥ 0.85x the bare one (telemetry is nearly free),
# aggregated collective-attestation sweep ≥ 1.2x the per-device
# client-driven loopback sweep. The pool/cluster/obs floors were
# recalibrated when the SHA-NI path roughly doubled absolute sweep
# throughput: fixed coordination/telemetry costs are no longer masked
# by scalar-crypto time on a single-core box (see Makefile).
net-bench:
    cargo run --release -p eilid_bench --bin net -- --min-pool-ratio 0.85 --min-in-memory 70000 --min-loopback 40000 --min-cluster-ratio 0.5 --min-obs-ratio 0.85 --min-agg-ratio 1.2

# CI-sized smoke (smaller fleet, still release mode); gates loosened
# (pool ratio 0.85, no absolute floors) to tolerate shared-runner noise.
net-bench-smoke:
    cargo run --release -p eilid_bench --bin net -- --quick --json /tmp/BENCH_net.json --min-pool-ratio 0.85

fmt:
    cargo fmt --all --check

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

ci: fmt clippy test test-workspace
