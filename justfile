# Same recipes as the Makefile, for `just` users.

build:
    cargo build --release

# Tier-1 verification: release build + the root package test suite.
test:
    cargo build --release
    cargo test -q

test-workspace:
    cargo test -q --workspace

# One fast pass over every criterion bench (stub timing, no statistics).
bench-smoke:
    cargo bench -p eilid_bench

# Small fleet end-to-end: slice run, attestation sweep, staged campaigns.
fleet-smoke:
    cargo run --release --bin eilid-cli -- fleet run --devices 64 --threads 4
    cargo run --release --bin eilid-cli -- fleet attest --devices 64 --threads 4
    cargo run --release --bin eilid-cli -- fleet campaign --devices 64 --threads 4
    cargo run --release --bin eilid-cli -- fleet campaign --devices 64 --threads 4 --inject-bad

# The 1 000-device release-mode scale test.
fleet-scale:
    cargo test --release -p eilid_fleet -- --include-ignored thousand

# Flat-vs-incremental sweep throughput at 1 000 devices; writes
# BENCH_fleet.json (the recorded perf baseline) and fails below the
# accepted 3x incremental speedup.
fleet-bench:
    cargo run --release -p eilid_bench --bin fleet -- --min-speedup 3

# CI-sized head-to-head only (no matrix), still release mode, gating on
# the same 3x speedup floor.
fleet-bench-smoke:
    cargo run --release -p eilid_bench --bin fleet -- --quick --json /tmp/BENCH_fleet.json --min-speedup 3

# The 1 000-device networked sweep over loopback TCP (release mode).
net-scale:
    cargo test --release -p eilid_net -- --include-ignored thousand

# Persistent-pool vs scoped-thread sweeps and in-memory vs loopback
# transports at 1 000 devices; writes BENCH_net.json (the recorded perf
# baseline) and fails if the pool regresses below the scoped baseline.
# The gate carries a 5% noise margin: best-of-5 runs land at 0.99-1.07x
# on a single-core box, where the two schedulers are equivalent by
# construction and only spawn overhead separates them.
net-bench:
    cargo run --release -p eilid_bench --bin net -- --min-pool-ratio 0.95

# CI-sized smoke (smaller fleet, still release mode); the pool-ratio
# gate is loosened to 0.85 to tolerate shared-runner noise.
net-bench-smoke:
    cargo run --release -p eilid_bench --bin net -- --quick --json /tmp/BENCH_net.json --min-pool-ratio 0.85

fmt:
    cargo fmt --all --check

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

ci: fmt clippy test test-workspace
