# Same recipes as the Makefile, for `just` users.

build:
    cargo build --release

# Tier-1 verification: release build + the root package test suite.
test:
    cargo build --release
    cargo test -q

test-workspace:
    cargo test -q --workspace

# One fast pass over every criterion bench (stub timing, no statistics).
bench-smoke:
    cargo bench -p eilid_bench

# Small fleet end-to-end: slice run, attestation sweep, staged campaigns.
fleet-smoke:
    cargo run --release --bin eilid-cli -- fleet run --devices 64 --threads 4
    cargo run --release --bin eilid-cli -- fleet attest --devices 64 --threads 4
    cargo run --release --bin eilid-cli -- fleet campaign --devices 64 --threads 4
    cargo run --release --bin eilid-cli -- fleet campaign --devices 64 --threads 4 --inject-bad

# The 1 000-device release-mode scale test.
fleet-scale:
    cargo test --release -p eilid_fleet -- --include-ignored thousand

fmt:
    cargo fmt --all --check

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

ci: fmt clippy test test-workspace
