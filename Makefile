# Convenience targets; `just` users get the same recipes from ./justfile.

.PHONY: build test test-workspace bench-smoke fleet-smoke fleet-scale fleet-bench fleet-bench-smoke net-scale net-scale-10k net-campaign net-cluster net-smoke net-bench net-bench-smoke obs-smoke agg-smoke fmt clippy ci

build:
	cargo build --release

# Tier-1 verification: release build + the root package test suite.
test:
	cargo build --release
	cargo test -q

test-workspace:
	cargo test -q --workspace

# One fast pass over every criterion bench (stub timing, no statistics).
bench-smoke:
	cargo bench -p eilid_bench

# Small fleet end-to-end: slice run, attestation sweep, staged campaigns.
fleet-smoke:
	cargo run --release --bin eilid-cli -- fleet run --devices 64 --threads 4
	cargo run --release --bin eilid-cli -- fleet attest --devices 64 --threads 4
	cargo run --release --bin eilid-cli -- fleet campaign --devices 64 --threads 4
	cargo run --release --bin eilid-cli -- fleet campaign --devices 64 --threads 4 --inject-bad

# The 1 000-device release-mode scale test.
fleet-scale:
	cargo test --release -p eilid_fleet -- --include-ignored thousand

# Flat-vs-incremental sweep throughput at 1 000 devices; writes
# BENCH_fleet.json (the recorded perf baseline) and fails below the
# accepted 3x incremental speedup.
fleet-bench:
	cargo run --release -p eilid_bench --bin fleet -- --min-speedup 3

# CI-sized head-to-head only (no matrix), still release mode, gating on
# the same 3x speedup floor.
fleet-bench-smoke:
	cargo run --release -p eilid_bench --bin fleet -- --quick --json /tmp/BENCH_fleet.json --min-speedup 3

# The 1 000-device networked sweep over loopback TCP (release mode) —
# epoll reactor and scan fallback both.
net-scale:
	cargo test --release -p eilid_net -- --include-ignored thousand

# The 10 000-connection reactor scale test (Linux/epoll, release mode,
# 60 s budget): 9 996 idle negotiated sessions held by two child
# processes while a 1 000-device pipelined sweep runs through four more
# connections. The PR 3 scan loop cannot serve this shape in budget —
# every pass cost a read() per connection.
net-scale-10k:
	cargo test --release -p eilid_net --test net_scale_10k -- --include-ignored scale_10k

# The 1 000-device staged OTA campaign over loopback TCP (release mode,
# 60 s budget): RemoteOps console → gateway campaign engine → 8 device
# agents, with the report pinned equal to the in-process backend's.
net-campaign:
	cargo test --release -p eilid_net --test net_campaign_scale -- --include-ignored campaign --nocapture

# The supervised multi-process cluster drill (release mode, 120 s
# budget): a 128-device fleet placed across four gateway *processes*,
# swept and taken through a staged campaign, with one gateway
# SIGKILLed mid-campaign, restarted by the supervisor, and the
# campaign resumed from the operator's wave checkpoint — the final
# report pinned equal to an uninterrupted single-process run.
net-cluster:
	cargo test --release -p eilid_net --test cluster_scale -- --exact supervised_cluster_campaign_survives_gateway_kill --nocapture

# Two-terminal demo collapsed into one: serve a gateway in the
# background and drive the fleet against it. Connect retries while the
# server comes up; a failed run kills the background server instead of
# orphaning it (which would hold the port for the next run).
net-smoke: build
	@./target/release/eilid-cli fleet serve --addr 127.0.0.1:4810 --devices 64 --threads 4 & \
	SERVE=$$!; ok=1; \
	for attempt in 1 2 3 4 5 6 7 8 9 10; do \
		sleep 1; \
		if ./target/release/eilid-cli fleet connect --addr 127.0.0.1:4810 --devices 64 --clients 4; then ok=0; break; fi; \
	done; \
	if [ $$ok -eq 0 ]; then wait $$SERVE; else kill $$SERVE 2>/dev/null; echo "net-smoke: connect never succeeded"; exit 1; fi

# Telemetry end-to-end smoke: serve a gateway in the background, sweep
# 64 devices through it, scrape the live snapshot over the wire with
# `fleet metrics` (checking the verification counter saw every
# report), then sweep again so the server reaches --expect-reports and
# exits cleanly.
obs-smoke: build
	./scripts/obs_smoke.sh

# Collective-attestation smoke (release mode, so the 1 000-device scale
# test un-ignores): all-clean and ~1%-tampered aggregated sweeps over
# loopback TCP, the operator verifying at most SHARD_COUNT aggregate
# roots — counter-asserted on both sides of the wire — plus the
# equivalence oracle pinning aggregated verdicts to per-device sweeps.
agg-smoke:
	cargo test --release -p eilid_net --test agg_smoke -- --include-ignored
	cargo test --release -p eilid_net --test agg_equivalence

# Persistent-pool vs scoped-thread sweeps and in-memory vs loopback
# transports at 1 000 devices; writes BENCH_net.json (the recorded perf
# baseline) and gates three ways: the pool must stay within noise of
# the scoped baseline, the in-memory path must hold the PR 3 floor
# (70k devices/s), and loopback TCP must hold ≥ 2x the PR 3 baseline
# of ~19k devices/s (the reactor + batching acceptance gate). The
# cluster gate holds fan-out sweeps across four gateway processes
# against the single-gateway run; the obs gate holds the
# latency-observed loopback sweep against the bare one — telemetry
# must be (nearly) free. The three ratio floors were recalibrated
# (pool 0.95 → 0.85, cluster 0.9 → 0.5, obs 0.95 → 0.85) when the
# SHA-NI compression path landed: it roughly doubled absolute
# throughput everywhere (4-gateway cluster 132k → 220k+ devices/s),
# so the fixed per-exchange costs — pool queueing, four reactor
# threads sharing one core, a telemetry record per exchange — are no
# longer masked by scalar-crypto time, and the honest ratio ranges on
# a single-core box widened to 0.95-1.08 (pool), 0.60-0.96 (cluster)
# and 0.86-1.07 (obs). The floors sit below those ranges; the
# absolute throughput floors above are what catch real code
# regressions. The
# campaign gate (11 100 devices/s) holds the streamed wave engine +
# memoized probes + delta updates at ≥ 20x the phase-barrier
# baseline's recorded 556 devices/s. The agg gate (1.2) holds the
# aggregated collective-attestation sweep at ≥ 1.2x the per-device
# client-driven loopback sweep — folding evidence into per-shard roots
# must beat shipping per-device verdicts.
net-bench:
	cargo run --release -p eilid_bench --bin net -- --min-pool-ratio 0.85 --min-in-memory 70000 --min-loopback 40000 --min-campaign 11100 --min-cluster-ratio 0.5 --min-obs-ratio 0.85 --min-agg-ratio 1.2

# CI-sized smoke (smaller fleet, still release mode); gates loosened
# (pool ratio 0.85, no absolute floors) to tolerate shared-runner noise.
net-bench-smoke:
	cargo run --release -p eilid_bench --bin net -- --quick --json /tmp/BENCH_net.json --min-pool-ratio 0.85

fmt:
	cargo fmt --all --check

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

ci: fmt clippy test test-workspace
